"""Docs lint: dead relative links and phantom metric names.

Two checks, both cheap enough for every CI run:

* every relative markdown link in the repository's ``*.md`` files must
  point at a file or directory that exists (anchors are stripped;
  external ``http(s)``/``mailto`` links are not checked);
* every ``repro_*`` metric name mentioned in ``docs/OBSERVABILITY.md``
  must be registered somewhere under ``src/`` — the catalog documents
  the code, so a name with no producer is either a typo or a stale row
  left behind by a refactor.  Prometheus exposition suffixes
  (``_bucket``/``_sum``/``_count``) resolve to their histogram's base
  name.

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — excludes images by allowing them (same syntax)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

METRIC_RE = re.compile(r"\brepro(?:_[a-z][a-z0-9]*)+\b")

#: exposition-only suffixes a histogram grows in scrape output
DERIVED_SUFFIXES = ("_bucket", "_sum", "_count")


def markdown_files(root: Path) -> list[Path]:
    return sorted(
        path
        for path in root.rglob("*.md")
        if ".git" not in path.parts and ".venv" not in path.parts
    )


def check_links(root: Path) -> list[str]:
    problems = []
    for path in markdown_files(root):
        text = path.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: dead link -> {target}"
                )
    return problems


def source_metric_text(root: Path) -> str:
    chunks = []
    for path in sorted((root / "src").rglob("*.py")):
        chunks.append(path.read_text(encoding="utf-8"))
    return "\n".join(chunks)


def check_metrics(root: Path) -> list[str]:
    catalog = root / "docs" / "OBSERVABILITY.md"
    if not catalog.exists():
        return [f"{catalog.relative_to(root)}: missing"]
    source = source_metric_text(root)
    problems = []
    for name in sorted(set(METRIC_RE.findall(catalog.read_text()))):
        candidates = [name] + [
            name[: -len(suffix)]
            for suffix in DERIVED_SUFFIXES
            if name.endswith(suffix)
        ]
        if not any(candidate in source for candidate in candidates):
            problems.append(
                f"docs/OBSERVABILITY.md: metric {name!r} is not "
                "registered anywhere under src/"
            )
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    problems = check_links(root) + check_metrics(root)
    for problem in problems:
        print(f"DOCS LINT: {problem}")
    if problems:
        return 1
    files = len(markdown_files(root))
    print(f"docs lint ok ({files} markdown files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
