"""Validate observability artifacts: a span JSONL trace + metrics JSON.

Stdlib-only checker used by the CI "observability" job after
``benchmarks/trace_workload.py`` produced its artifacts::

    python scripts/check_trace.py TRACE_textbook.jsonl METRICS_textbook.json

Span schema (one JSON object per line, the contract of
:class:`repro.obs.JsonlExporter` / ``Span.to_dict``, documented in
``docs/OBSERVABILITY.md``):

* ``name`` — non-empty string;
* ``trace_id`` / ``span_id`` — positive ints, ``span_id`` unique
  across the file;
* ``parent_id`` — int or null; when the parent span appears in the
  file it must share the child's ``trace_id``;
* ``start`` / ``end`` / ``duration`` — numbers with ``end >= start``
  and ``duration == end - start`` (to exporter rounding);
* ``status`` — ``"ok"`` or ``"error"``;
* ``attributes`` — object; ``events`` — list of
  ``{"name", "time", "attributes"}`` with times inside the span.

Metrics schema (``MetricsRegistry.snapshot()``): a name →
``{"kind", "help", "values"}`` object where names match
``repro_<area>_<name>[_<unit>]``, kind is counter/gauge/histogram,
and histogram values carry ``buckets``/``inf``/``sum``/``count``.

Exits 0 when everything validates, 1 with one line per problem
otherwise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

STATUSES = ("ok", "error")
METRIC_KINDS = ("counter", "gauge", "histogram")
METRIC_NAME = re.compile(r"^repro(_[a-z][a-z0-9]*)+$")
#: spans the textbook workload must have produced at least once
EXPECTED_SPANS = ("service.request", "translate", "parse", "map", "compose")


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_span_record(record, lineno: int, errors: list[str]) -> None:
    where = f"line {lineno}"
    if not isinstance(record, dict):
        errors.append(f"{where}: span record is not an object")
        return
    name = record.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: 'name' must be a non-empty string")
    for field in ("trace_id", "span_id"):
        value = record.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            errors.append(f"{where}: {field!r} must be a positive int")
    parent = record.get("parent_id")
    if parent is not None and (
        not isinstance(parent, int) or isinstance(parent, bool)
    ):
        errors.append(f"{where}: 'parent_id' must be an int or null")
    start, end, duration = (
        record.get("start"),
        record.get("end"),
        record.get("duration"),
    )
    for field, value in (("start", start), ("end", end), ("duration", duration)):
        if not _is_number(value):
            errors.append(f"{where}: {field!r} must be a number")
    if _is_number(start) and _is_number(end):
        if end < start:
            errors.append(f"{where}: end ({end}) precedes start ({start})")
        elif _is_number(duration) and abs((end - start) - duration) > 1e-4:
            errors.append(
                f"{where}: duration {duration} != end - start {end - start}"
            )
    if record.get("status") not in STATUSES:
        errors.append(
            f"{where}: status {record.get('status')!r} not in {STATUSES}"
        )
    if not isinstance(record.get("attributes"), dict):
        errors.append(f"{where}: 'attributes' must be an object")
    events = record.get("events")
    if not isinstance(events, list):
        errors.append(f"{where}: 'events' must be a list")
        return
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"{where}: event #{index} is not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where}: event #{index} has no name")
        if not _is_number(event.get("time")):
            errors.append(f"{where}: event #{index} has no numeric time")
        elif _is_number(start) and _is_number(end):
            if not (start - 1e-6 <= event["time"] <= end + 1e-6):
                errors.append(
                    f"{where}: event #{index} time {event['time']} "
                    f"outside span [{start}, {end}]"
                )
        if not isinstance(event.get("attributes"), dict):
            errors.append(f"{where}: event #{index} attributes not an object")


def check_trace(path: str, errors: list[str]) -> None:
    spans: dict[int, dict] = {}
    names: set[str] = set()
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        errors.append(f"{path}: cannot read: {exc}")
        return
    if not lines:
        errors.append(f"{path}: trace file is empty")
        return
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON: {exc}")
            continue
        check_span_record(record, lineno, errors)
        if isinstance(record, dict):
            span_id = record.get("span_id")
            if isinstance(span_id, int):
                if span_id in spans:
                    errors.append(
                        f"line {lineno}: duplicate span_id {span_id}"
                    )
                spans[span_id] = record
            if isinstance(record.get("name"), str):
                names.add(record["name"])
    # parent linkage: a child exported after its parent must agree on
    # the trace; parents outside the ring/file are fine (None parent)
    for record in spans.values():
        parent = spans.get(record.get("parent_id"))
        if parent is not None and parent.get("trace_id") != record.get(
            "trace_id"
        ):
            errors.append(
                f"span {record['span_id']}: trace_id "
                f"{record.get('trace_id')} != parent's "
                f"{parent.get('trace_id')}"
            )
    for expected in EXPECTED_SPANS:
        if expected not in names:
            errors.append(f"{path}: no {expected!r} span in trace")
    print(f"{path}: {len(spans)} spans, {len(names)} distinct names")


def check_histogram_value(name: str, labels: str, value, errors: list[str]) -> None:
    where = f"{name}{{{labels}}}" if labels else name
    if not isinstance(value, dict):
        errors.append(f"{where}: histogram value is not an object")
        return
    for field in ("buckets", "inf", "sum", "count"):
        if field not in value:
            errors.append(f"{where}: histogram value missing {field!r}")
    buckets = value.get("buckets")
    if not isinstance(buckets, dict):
        errors.append(f"{where}: 'buckets' must be an object")
        return
    observed = sum(v for v in buckets.values() if _is_number(v))
    inf = value.get("inf", 0)
    count = value.get("count", 0)
    if _is_number(inf) and _is_number(count) and observed + inf != count:
        errors.append(
            f"{where}: bucket counts {observed} + inf {inf} != count {count}"
        )


def check_metrics(path: str, errors: list[str]) -> None:
    try:
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{path}: cannot load: {exc}")
        return
    if not isinstance(snapshot, dict) or not snapshot:
        errors.append(f"{path}: snapshot must be a non-empty object")
        return
    for name, metric in snapshot.items():
        if not METRIC_NAME.match(name):
            errors.append(f"{name}: does not match {METRIC_NAME.pattern}")
        if not isinstance(metric, dict):
            errors.append(f"{name}: metric entry is not an object")
            continue
        kind = metric.get("kind")
        if kind not in METRIC_KINDS:
            errors.append(f"{name}: kind {kind!r} not in {METRIC_KINDS}")
        if not isinstance(metric.get("help"), str) or not metric.get("help"):
            errors.append(f"{name}: missing help text")
        values = metric.get("values")
        if not isinstance(values, dict):
            errors.append(f"{name}: 'values' must be an object")
            continue
        for labels, value in values.items():
            if kind == "histogram":
                check_histogram_value(name, labels, value, errors)
            elif not _is_number(value):
                errors.append(
                    f"{name}{{{labels}}}: value {value!r} is not a number"
                )
    for required in (
        "repro_translate_queries_total",
        "repro_service_requests_total",
    ):
        if required not in snapshot:
            errors.append(f"{path}: required metric {required} missing")
    print(f"{path}: {len(snapshot)} metrics")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="span JSONL file to validate")
    parser.add_argument(
        "metrics", nargs="?", help="metrics JSON snapshot to validate"
    )
    args = parser.parse_args(argv)
    errors: list[str] = []
    check_trace(args.trace, errors)
    if args.metrics:
        check_metrics(args.metrics, errors)
    for error in errors:
        print(f"INVALID: {error}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} problem(s) found", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
