"""CI entry point for the serving-layer chaos harness.

Six phases, one report (``SERVER_report.json``), all driven against
*real* worker processes supervised on a deterministic virtual clock
(``auto_watchdog=False`` + manual ticks, so timeout and backoff
decisions never race wall time):

* **parity** — the full 95-query workload served through the
  supervised process pool must produce *byte-identical* SQL (and
  identical typed-error classes) to the in-process
  :class:`~repro.service.QueryService` baseline — process isolation
  may cost nothing when nothing fails;
* **cached** — the workload served twice so the second pass hits the
  workers' translation result cache (docs/CACHING.md): cached answers
  must stay byte-identical, the supervisor's ``repro_cache_*`` mirror
  counters must move, and after a ``kill -9`` the replacement worker
  must start with a *cold* cache — fresh translations, never a stale
  cached answer — while remaining byte-identical;
* **crash** — a worker is ``kill -9``-ed mid-request: the in-flight
  request must fail with a typed
  :class:`~repro.server.errors.WorkerCrashed` mapping to CLI exit
  code 8, the worker must restart within its backoff budget, and the
  full workload must then rerun byte-identically on the replacement;
* **hang** — a busy-hung worker (wedged mid-request) must be killed by
  the watchdog at the request timeout with a typed
  :class:`~repro.server.errors.WorkerTimeout`, and a deaf idle worker
  (answers nothing) must be killed via the heartbeat path;
* **drain** — a drain started while requests are queued and in flight
  must complete every admitted request (zero loss), refuse new work
  with a typed :class:`~repro.server.errors.ServerDraining`, and
  produce a final snapshot;
* **artifact** — with an artifact directory configured, the supervisor
  must publish exactly one translation-context artifact per shard
  (docs/ARTIFACTS.md) that *every* worker attaches — including the
  replacement spawned after a ``kill -9``, which must report the shared
  artifact in its ready frame and serve the workload byte-identically.

Run from the repository root::

    PYTHONPATH=src python scripts/run_server_chaos.py
    PYTHONPATH=src python scripts/run_server_chaos.py --phases parity crash
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time

from repro.cli import DATASETS, EXIT_WORKER, exit_code_for
from repro.server import (
    DatabaseSpec,
    ServerDraining,
    Supervisor,
    SupervisorConfig,
    WorkerCrashed,
    WorkerTimeout,
)
from repro.service import QueryService, ServiceConfig
from repro.testing import VirtualClock, workload_pairs
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
)

#: workload name -> (shard/dataset name, workload queries)
WORKLOADS = {
    "textbook": ("movies", TEXTBOOK_QUERIES),
    "sophisticated": ("movies", SOPHISTICATED_QUERIES),
    "courses48": ("courses", COURSE_QUERIES),
}

SHARDS = {
    "movies": DatabaseSpec(kind="dataset", target="movies"),
    "courses": DatabaseSpec(kind="dataset", target="courses"),
}


def all_pairs() -> list[tuple[str, str, str]]:
    """Flatten the workloads to (qid, shard, sf_sql) triples."""
    triples = []
    for name, (shard, queries) in WORKLOADS.items():
        for qid, sf_sql in workload_pairs(queries):
            triples.append((f"{name}:{qid}", shard, sf_sql))
    return triples


def make_supervisor(metrics=None, **overrides):
    defaults = dict(
        workers_per_shard=1,
        chaos_hooks=True,
        auto_watchdog=False,
        queue_limit=256,
        restart_backoff_base=0.05,
        restart_backoff_cap=0.2,
        request_timeout=5.0,
        heartbeat_interval=1.0,
        heartbeat_timeout=5.0,
    )
    defaults.update(overrides)
    clock = VirtualClock(origin=None)
    supervisor = Supervisor(
        SHARDS, SupervisorConfig(**defaults), clock=clock, metrics=metrics
    )
    return supervisor, clock


def serve_workload(supervisor) -> list[tuple[str, str, str]]:
    """Every workload pair through the supervisor: (qid, sql, error)."""
    results = []
    for qid, shard, sf_sql in all_pairs():
        response = supervisor.submit(sf_sql, database=shard).result(
            timeout=120
        )
        results.append(
            (
                qid,
                response.sql or "",
                type(response.error).__name__ if response.error else "",
            )
        )
    return results


def wait_ready(supervisor, shard, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if supervisor.readiness()["shards"][shard]["workers"]["live"] >= 1:
            return True
        time.sleep(0.02)
    return False


def restart_and_wait(supervisor, clock, shard) -> bool:
    clock.advance(1.0)
    supervisor.tick()
    return wait_ready(supervisor, shard)


# ---------------------------------------------------------------------------
# phase 1: fault-free parity against the in-process baseline
# ---------------------------------------------------------------------------


def run_parity() -> dict:
    baseline: dict[str, tuple[str, str]] = {}
    for name, (shard, queries) in WORKLOADS.items():
        with QueryService(
            DATASETS[shard](), ServiceConfig(workers=1)
        ) as service:
            for qid, sf_sql in workload_pairs(queries):
                response = service.submit(sf_sql).result()
                baseline[f"{name}:{qid}"] = (
                    response.sql or "",
                    type(response.error).__name__ if response.error else "",
                )
    supervisor, _ = make_supervisor()
    with supervisor:
        served = serve_workload(supervisor)
        snapshot = supervisor.snapshot()
    mismatches = [
        {"qid": qid, "served": [sql, err], "baseline": list(baseline[qid])}
        for qid, sql, err in served
        if (sql, err) != baseline[qid]
    ]
    ok = not mismatches and snapshot["stats"]["crashed"] == 0
    print(
        f"parity: {len(served)} queries, {len(mismatches)} mismatches "
        f"vs in-process baseline"
    )
    return {
        "ok": ok,
        "queries": len(served),
        "mismatches": mismatches,
        "stats": snapshot["stats"],
    }


# ---------------------------------------------------------------------------
# phase 1b: cached parity across a worker kill/restart
# ---------------------------------------------------------------------------


def run_cached() -> dict:
    """The translation result cache (docs/CACHING.md) under crash
    chaos: repeats must be served from the cache byte-identically, and
    a killed worker's replacement must start cold — correct bytes,
    never a stale cached answer."""
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    checks: dict[str, bool] = {}
    probe_query = "SELECT title? WHERE director_name? = 'James Cameron'"
    supervisor, clock = make_supervisor(metrics=registry)
    with supervisor:
        before = serve_workload(supervisor)
        second = serve_workload(supervisor)
        checks["repeat_pass_byte_identical"] = second == before
        first = supervisor.submit(probe_query, database="movies").result(
            timeout=60
        )
        repeat = supervisor.submit(probe_query, database="movies").result(
            timeout=60
        )
        checks["repeat_marked_cached"] = repeat.cached
        checks["cached_bytes_identical"] = repeat.sql == first.sql
        hits_before_kill = registry.counter(
            "repro_cache_hits_total"
        ).value(shard="movies")
        checks["supervisor_counts_hits"] = hits_before_kill > 0

        victim = supervisor.worker_pids("movies")[0]
        inflight = supervisor.submit("%sleep:30", database="movies")
        os.kill(victim, signal.SIGKILL)
        inflight.result(timeout=60)
        checks["restarted_within_budget"] = restart_and_wait(
            supervisor, clock, "movies"
        )
        # the replacement rebuilt its shard from the spec: its cache is
        # cold, so the first post-restart answer must be a fresh
        # translation (cached would mean stale state survived the kill)
        post = supervisor.submit(probe_query, database="movies").result(
            timeout=60
        )
        checks["replacement_starts_cold"] = not post.cached
        checks["replacement_bytes_identical"] = post.sql == first.sql
        after = serve_workload(supervisor)
        checks["byte_identical_after_restart"] = after == before
        stats = supervisor.snapshot()["stats"]
    cache_stats = {
        "hits": registry.counter("repro_cache_hits_total").value(
            shard="movies"
        )
        + registry.counter("repro_cache_hits_total").value(shard="courses"),
        "misses": registry.counter("repro_cache_misses_total").value(
            shard="movies"
        )
        + registry.counter("repro_cache_misses_total").value(
            shard="courses"
        ),
    }
    ok = all(checks.values())
    print(f"cached: {json.dumps(checks)}")
    return {"ok": ok, "checks": checks, "cache": cache_stats, "stats": stats}


# ---------------------------------------------------------------------------
# phase 2: kill -9 mid-request
# ---------------------------------------------------------------------------


def run_crash() -> dict:
    supervisor, clock = make_supervisor()
    checks: dict[str, bool] = {}
    with supervisor:
        before = serve_workload(supervisor)
        victim = supervisor.worker_pids("movies")[0]
        inflight = supervisor.submit("%sleep:30", database="movies")
        os.kill(victim, signal.SIGKILL)
        failed = inflight.result(timeout=60)
        checks["typed_worker_crashed"] = isinstance(
            failed.error, WorkerCrashed
        )
        checks["exit_code_8"] = exit_code_for(failed.error) == EXIT_WORKER
        checks["crash_event_recorded"] = (
            "crash",
            "movies",
            victim,
        ) in supervisor.events
        checks["restart_scheduled_with_backoff"] = any(
            e[0] == "restart-scheduled" and e[3] <= 0.2
            for e in supervisor.events
        )
        checks["restarted_within_budget"] = restart_and_wait(
            supervisor, clock, "movies"
        )
        checks["new_pid"] = supervisor.worker_pids("movies")[0] != victim
        after = serve_workload(supervisor)
        checks["byte_identical_after_restart"] = after == before
        stats = supervisor.snapshot()["stats"]
    ok = all(checks.values())
    print(f"crash: {json.dumps(checks)}")
    return {"ok": ok, "checks": checks, "stats": stats}


# ---------------------------------------------------------------------------
# phase 3: hung and deaf workers under the watchdog
# ---------------------------------------------------------------------------


def run_hang() -> dict:
    checks: dict[str, bool] = {}
    supervisor, clock = make_supervisor(request_timeout=5.0)
    with supervisor:
        wedged = supervisor.submit("%hang", database="movies")
        clock.advance(4.9)
        supervisor.tick()
        checks["not_killed_inside_timeout"] = not wedged.done()
        clock.advance(0.2)
        supervisor.tick()
        failed = wedged.result(timeout=60)
        checks["typed_worker_timeout"] = isinstance(
            failed.error, WorkerTimeout
        )
        checks["hang_exit_code_8"] = exit_code_for(failed.error) == EXIT_WORKER
        checks["hang_restart"] = restart_and_wait(supervisor, clock, "movies")

        # deaf: answers its request, then never reads another frame —
        # only the idle heartbeat path can catch it
        deaf_ok = supervisor.submit("%deaf", database="movies").result(
            timeout=60
        )
        checks["deaf_request_served"] = deaf_ok.ok
        clock.advance(1.1)
        supervisor.tick()  # ping goes out, into a deaf ear
        clock.advance(5.1)
        supervisor.tick()  # no pong inside heartbeat_timeout: killed
        checks["deaf_killed_by_heartbeat"] = supervisor.stats.timed_out == 2
        checks["deaf_restart"] = restart_and_wait(supervisor, clock, "movies")
        served = supervisor.submit(
            "SELECT name? WHERE director_name? = 'James Cameron'",
            database="movies",
        ).result(timeout=60)
        checks["serves_after_recoveries"] = served.ok
        stats = supervisor.snapshot()["stats"]
    ok = all(checks.values())
    print(f"hang: {json.dumps(checks)}")
    return {"ok": ok, "checks": checks, "stats": stats}


# ---------------------------------------------------------------------------
# phase 4: graceful drain under load
# ---------------------------------------------------------------------------


def run_drain() -> dict:
    checks: dict[str, bool] = {}
    supervisor, _ = make_supervisor(queue_limit=256)
    snapshot: dict = {}
    with supervisor:
        admitted = [supervisor.submit("%sleep:0.3", database="movies")]
        admitted += [
            supervisor.submit(sf_sql, database=shard)
            for _, shard, sf_sql in all_pairs()[:20]
        ]
        drainer = threading.Thread(
            target=lambda: snapshot.update(supervisor.drain())
        )
        drainer.start()
        while not supervisor.draining:
            time.sleep(0.005)
        refused = supervisor.submit(
            "SELECT name?", database="movies"
        ).result(timeout=10)
        checks["refusal_typed"] = isinstance(refused.error, ServerDraining)
        drainer.join(timeout=120)
        checks["drain_finished"] = not drainer.is_alive()
        resolved = [f.result(timeout=1) for f in admitted]
        checks["zero_admitted_lost"] = all(
            r.ok or not isinstance(r.error, (WorkerCrashed, WorkerTimeout))
            for r in resolved
        )
        checks["all_admitted_served"] = all(r.ok for r in resolved)
        checks["final_snapshot"] = "drain_seconds" in snapshot
        checks["refused_counted"] = snapshot["stats"]["refused"] == 1
    ok = all(checks.values())
    print(f"drain: {json.dumps(checks)}")
    return {"ok": ok, "checks": checks, "stats": snapshot.get("stats", {})}


def run_artifact() -> dict:
    """Phase 6: one artifact build serves the whole worker fleet.

    The supervisor publishes (or finds) one artifact per shard before
    spawning workers; every worker — first generation and the
    replacement after a ``kill -9`` alike — must attach it (reported in
    its ready frame and the snapshot) and serve byte-identically."""
    import tempfile

    from repro.artifacts import ArtifactStore

    checks: dict[str, bool] = {}
    with tempfile.TemporaryDirectory(prefix="repro-server-art-") as tmp:
        supervisor, clock = make_supervisor(
            workers_per_shard=2, artifact_dir=tmp
        )
        with supervisor:
            checks["one_artifact_per_shard"] = len(
                ArtifactStore(tmp).list()
            ) == len(SHARDS)
            checks["no_build_failures"] = not [
                event
                for event in supervisor.events
                if event[0] == "artifact-failed"
            ]
            snapshot = supervisor.snapshot()
            checks["every_worker_attached"] = all(
                worker["artifacts"] == [name]
                for name, shard in snapshot["shards"].items()
                for worker in shard["workers"]
            )
            before = serve_workload(supervisor)
            victim = supervisor.worker_pids("movies")[0]
            os.kill(victim, signal.SIGKILL)
            # tick until the death is noticed AND a second-generation
            # worker reports ready — only then is the fleet whole again
            deadline = time.monotonic() + 60.0
            replacements: list[dict] = []
            while time.monotonic() < deadline:
                clock.advance(0.5)
                supervisor.tick()
                workers = supervisor.snapshot()["shards"]["movies"][
                    "workers"
                ]
                replacements = [
                    worker
                    for worker in workers
                    if worker["generation"] > 0
                    and worker["state"] == "ready"
                ]
                if replacements:
                    break
                time.sleep(0.02)
            checks["restarted_within_budget"] = bool(replacements)
            checks["replacement_starts_from_artifact"] = bool(
                replacements
            ) and all(
                worker["artifacts"] == ["movies"] for worker in replacements
            )
            after = serve_workload(supervisor)
            checks["byte_identical_after_restart"] = after == before
    ok = all(checks.values())
    print(f"artifact: {json.dumps(checks)}")
    return {"ok": ok, "checks": checks}


PHASES = {
    "parity": run_parity,
    "cached": run_cached,
    "crash": run_crash,
    "hang": run_hang,
    "drain": run_drain,
    "artifact": run_artifact,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--phases",
        nargs="+",
        choices=sorted(PHASES),
        default=sorted(PHASES),
        help="which phases to run (default: all)",
    )
    parser.add_argument(
        "--out",
        default="SERVER_report.json",
        help="where to write the JSON server-chaos report",
    )
    args = parser.parse_args(argv)

    report: dict = {}
    for name in sorted(args.phases):
        report[name] = PHASES[name]()
    ok = all(phase["ok"] for phase in report.values())
    payload = {"ok": ok, **report}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"server chaos report written to {args.out}")
    if not ok:
        print("SERVER CHAOS FAILURE: a phase reported a violation")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
