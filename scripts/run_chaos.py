"""CI entry point for the fault-tolerance chaos harness.

Four phases, one report (``CHAOS_report.json``):

* **parity** — with no faults injected, ``ResilientBackend(SqliteBackend)``
  must translate every workload query to *byte-identical* SQL as the bare
  backend (the armor may cost nothing when nothing fails);
* **matrix** — every (backend operation x fault kind) cell is injected
  into a Resilient/Faulty stack on a virtual clock and driven; every cell
  must end in a typed outcome (ok / retried / degraded / backend-error —
  never an unhandled crash) and the verdict must not depend on the retry
  jitter seed.  Seeded multi-fault schedules then run whole translations
  end-to-end under the same rule;
* **evolution** — each workload replays across the standard schema
  mutations (rename table/column, split, merge, drop FK) and the report
  carries a per-mutation-class translation-stability score.  Stability
  below 1.0 is a measurement, not a failure; a query with no verdict is;
* **artifacts** — a published translation-context artifact is mutated
  every way a disk can betray it (truncations at several depths, seeded
  byte flips, a future format version) and each mutant must surface as
  a typed :class:`~repro.artifacts.ArtifactError` whose fallback
  context translates the workload byte-identically to a fresh build —
  a wrong answer or an unhandled exception fails the phase.

Run from the repository root::

    PYTHONPATH=src python scripts/run_chaos.py
    PYTHONPATH=src python scripts/run_chaos.py --phases parity matrix
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Callable

from repro import Database
from repro.backends import MemoryBackend, ResilientBackend, SqliteBackend
from repro.backends.errors import BackendError
from repro.cli import exit_code_for
from repro.core import SchemaFreeTranslator
from repro.datasets import make_course_database, make_movie_database
from repro.engine.io import export_to_sqlite
from repro.errors import ReproError
from repro.testing import (
    BACKEND_OPS,
    EvolutionHarness,
    FaultInjector,
    FaultyBackend,
    standard_mutations,
    workload_pairs,
)
from repro.testing.faults import _KINDS_BY_OP
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
    WorkloadQuery,
)

WORKLOADS: dict[str, tuple[Callable[[], Database], list[WorkloadQuery]]] = {
    "textbook": (make_movie_database, TEXTBOOK_QUERIES),
    "sophisticated": (make_movie_database, SOPHISTICATED_QUERIES),
    "courses48": (make_course_database, COURSE_QUERIES),
}

JITTER_SEEDS = (0, 17, 4242)
SCHEDULE_SEEDS = range(8)


# ---------------------------------------------------------------------------
# phase 1: fault-free parity
# ---------------------------------------------------------------------------


def run_parity(sqlite_dir: Path) -> dict:
    """Byte-identical SQL from the armored and bare backends."""
    entries = {}
    total = mismatches = 0
    for name, (factory, queries) in WORKLOADS.items():
        database = factory()
        path = sqlite_dir / f"{name}.sqlite"
        export_to_sqlite(database, path).close()
        bare = SqliteBackend(path)
        armored = ResilientBackend(SqliteBackend(path))
        t_bare = SchemaFreeTranslator(bare)
        t_armored = SchemaFreeTranslator(armored)
        pairs = workload_pairs(queries)
        divergent = []
        for qid, sql in pairs:
            total += 1
            try:
                sql_bare = t_bare.translate_best(sql).sql
            except ReproError as exc:
                sql_bare = f"<{type(exc).__name__}>"
            try:
                sql_armored = t_armored.translate_best(sql).sql
            except ReproError as exc:
                sql_armored = f"<{type(exc).__name__}>"
            if sql_bare != sql_armored:
                mismatches += 1
                divergent.append(
                    {"qid": qid, "bare": sql_bare, "resilient": sql_armored}
                )
        entries[name] = {
            "pairs": len(pairs),
            "divergent": divergent,
            "degraded": armored.health.degraded,
        }
        status = "ok" if not divergent else "DIVERGE"
        print(f"parity {name:>14}: {len(pairs):>2} pairs  {status}")
    return {"ok": mismatches == 0, "total": total, "workloads": entries}


# ---------------------------------------------------------------------------
# phase 2: the fault matrix
# ---------------------------------------------------------------------------


def _drive(backend: ResilientBackend, op: str):
    if op == "reflect":
        return backend.catalog
    if op == "sample":
        return backend.column_values("movie", "title")
    if op == "execute":
        return backend.execute("SELECT title FROM movie")
    if op == "count":
        return backend.count("movie")
    if op == "version":
        return backend.data_version
    raise AssertionError(f"unknown op {op}")


def _run_cell(database: Database, op: str, kind: str, request_id: int):
    injector = FaultInjector()
    faulty = FaultyBackend(MemoryBackend(database), injector)
    armored = ResilientBackend(
        faulty,
        clock=injector.clock,
        sleep=injector.advance,
        request_id=request_id,
    )
    if kind == "error":
        faulty.inject_error(op, repeat=True)
    elif kind == "hang":
        faulty.inject_hang(op, seconds=3600.0, repeat=True)
    elif kind == "torn":
        faulty.inject_torn(op, repeat=True)
    elif kind == "partial-reflect":
        faulty.inject_partial_reflect(drop=1)
    try:
        _drive(armored, op)
    except BackendError as exc:
        return "backend-error", exit_code_for(exc)
    except Exception as exc:  # the matrix exists to catch exactly this — recorded so the run survives
        return f"unhandled:{type(exc).__name__}", exit_code_for(exc)
    if armored.health.degraded:
        return "degraded", 0
    if armored.health.retries:
        return "retried", 0
    return "ok", 0


def run_matrix() -> dict:
    database = make_movie_database()
    cells = {}
    ok = True
    for op in BACKEND_OPS:
        for kind in _KINDS_BY_OP[op]:
            outcomes = {
                _run_cell(database, op, kind, seed) for seed in JITTER_SEEDS
            }
            verdict, code = next(iter(outcomes))
            typed = not verdict.startswith("unhandled")
            stable = len(outcomes) == 1
            cell_ok = typed and stable
            ok = ok and cell_ok
            cells[f"{op}/{kind}"] = {
                "verdict": verdict,
                "exit_code": code,
                "seed_stable": stable,
                "ok": cell_ok,
            }
            flag = "ok" if cell_ok else "FAIL"
            print(f"matrix {op:>8}/{kind:<16} {verdict:<14} {flag}")
    schedules = {}
    for seed in SCHEDULE_SEEDS:
        injector = FaultInjector()
        faulty = FaultyBackend(MemoryBackend(database), injector)
        faulty.schedule_from_seed(seed)
        armored = ResilientBackend(
            faulty, clock=injector.clock, sleep=injector.advance
        )
        try:
            translator = SchemaFreeTranslator(armored)
            result = translator.translate_best(
                "SELECT title? WHERE year? > 1995"
            )
            armored.execute(result.query)
            outcome = "degraded" if armored.health.degraded else "ok"
            code = 0
        except ReproError as exc:
            outcome = f"typed-error:{type(exc).__name__}"
            code = exit_code_for(exc)
        except Exception as exc:  # an unhandled schedule is the failure being hunted — recorded so the run survives
            outcome = f"unhandled:{type(exc).__name__}"
            code = -1
            ok = False
        schedules[str(seed)] = {"outcome": outcome, "exit_code": code}
        print(f"matrix schedule seed={seed}: {outcome}")
    return {"ok": ok, "cells": cells, "schedules": schedules}


# ---------------------------------------------------------------------------
# phase 3: schema-evolution sweep
# ---------------------------------------------------------------------------


def run_evolution() -> dict:
    entries = {}
    ok = True
    for name, (factory, queries) in WORKLOADS.items():
        database = factory()
        harness = EvolutionHarness(database, queries)
        report = harness.run(standard_mutations(database.catalog))
        ok = ok and report.ok
        entries[name] = report.as_dict()
        scores = ", ".join(
            f"{kind}={score}" for kind, score in report.by_class().items()
        )
        print(f"evolution {name:>12}: {scores}")
    return {"ok": ok, "workloads": entries}


def run_artifacts(artifact_dir: Path) -> dict:
    """Phase 4: artifact corruption never changes an answer.

    Every mutant of a published artifact must either load (the pristine
    copy) or surface as a typed :class:`ArtifactError` whose fallback
    context translates byte-identically to a fresh build."""
    import random
    import struct

    from repro.artifacts import (
        ArtifactError,
        ArtifactStore,
        build_artifact,
        load_or_build_context,
    )

    factory, workload = WORKLOADS["textbook"]
    queries = [q.sf_sql or q.gold_sql for q in workload][:6]
    store = ArtifactStore(str(artifact_dir))
    path = build_artifact(factory(), store, warmup=queries)
    image = Path(path).read_bytes()
    baseline = [
        SchemaFreeTranslator(factory()).translate_best(query).sql
        for query in queries
    ]

    mutants: dict[str, bytes] = {"pristine": image}
    for fraction in (0.0, 0.05, 0.3, 0.7, 0.98):
        mutants[f"truncate-{fraction}"] = image[: int(len(image) * fraction)]
    rng = random.Random(0xA27)  # seeded: the same flips every run
    for position in sorted(rng.sample(range(len(image)), 12)):
        flipped = bytearray(image)
        flipped[position] ^= 0x55
        mutants[f"flip-{position}"] = bytes(flipped)
    skewed = bytearray(image)
    struct.pack_into("<H", skewed, 8, 0xFFFF)  # a future format version
    mutants["version-skew"] = bytes(skewed)

    entries = {}
    ok = True
    for label, data in mutants.items():
        target = artifact_dir / f"mutant-{label}.rpra"
        target.write_bytes(data)
        database = factory()
        try:
            context, error = load_or_build_context(database, str(target))
            translator = SchemaFreeTranslator(database, context=context)
            answers = [
                translator.translate_best(query).sql for query in queries
            ]
        except Exception as exc:  # an unhandled mutant is the failure being hunted — recorded so the run survives
            entries[label] = {"verdict": f"unhandled:{type(exc).__name__}"}
            ok = False
            print(f"artifacts {label:>16}: UNHANDLED {type(exc).__name__}")
            continue
        identical = answers == baseline
        verdict = (
            "loaded"
            if error is None
            else f"fallback:{type(error).__name__}"
        )
        if label == "pristine" and error is not None:
            ok = False  # the untouched file must load
        if error is not None and not isinstance(error, ArtifactError):
            ok = False  # fallback must be *typed*
        if not identical:
            ok = False
            verdict += ":WRONG-ANSWER"
        entries[label] = {"verdict": verdict, "identical": identical}
        flag = "ok" if identical else "FAIL"
        print(f"artifacts {label:>16}: {verdict:<28} {flag}")
    return {"ok": ok, "mutants": entries}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--phases",
        nargs="+",
        choices=["parity", "matrix", "evolution", "artifacts"],
        default=["parity", "matrix", "evolution", "artifacts"],
        help="phases to run (default: all)",
    )
    parser.add_argument(
        "--output",
        default="CHAOS_report.json",
        help="where to write the JSON chaos report",
    )
    args = parser.parse_args(argv)

    report: dict = {}
    if "parity" in args.phases:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            report["parity"] = run_parity(Path(tmp))
    if "matrix" in args.phases:
        report["matrix"] = run_matrix()
    if "evolution" in args.phases:
        report["evolution"] = run_evolution()
    if "artifacts" in args.phases:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-art-") as tmp:
            report["artifacts"] = run_artifacts(Path(tmp))

    ok = all(phase["ok"] for phase in report.values())
    payload = {"ok": ok, **report}
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    if not ok:
        print("CHAOS FAILURE: a phase reported a violation (see report)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
