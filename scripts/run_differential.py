"""CI entry point for the cross-backend differential harness.

Builds each shipped dataset, exports it to a real SQLite file, and runs
the full workload end-to-end (SF-SQL → translate → execute) on both the
in-memory engine and the SQLite backend, comparing row multisets per
query (repro.testing.differential).  The per-query agreement report is
written to ``DIFF_report.json`` and the exit status is non-zero when
any query disagrees — including stale expectations.

Run from the repository root::

    PYTHONPATH=src python scripts/run_differential.py
    PYTHONPATH=src python scripts/run_differential.py \
        --workloads textbook --output /tmp/diff.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Callable

from repro import Database
from repro.backends import MemoryBackend, SqliteBackend
from repro.datasets import make_course_database, make_movie_database
from repro.engine.io import export_to_sqlite
from repro.testing import DifferentialHarness
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
    WorkloadQuery,
)

#: workload name -> (database factory, query list)
WORKLOADS: dict[str, tuple[Callable[[], Database], list[WorkloadQuery]]] = {
    "textbook": (make_movie_database, TEXTBOOK_QUERIES),
    "sophisticated": (make_movie_database, SOPHISTICATED_QUERIES),
    "courses48": (make_course_database, COURSE_QUERIES),
}

#: known, documented semantic divergences (DESIGN.md §12) — none today.
#: Declared divergences that stop diverging fail the run (stale-expectation).
EXPECTATIONS: dict[str, dict[str, str]] = {
    "textbook": {},
    "sophisticated": {},
    "courses48": {},
}


def run_workload(name: str, sqlite_dir: Path) -> dict:
    factory, queries = WORKLOADS[name]
    database = factory()
    sqlite_path = sqlite_dir / f"{name}.sqlite"
    export_to_sqlite(database, sqlite_path).close()
    harness = DifferentialHarness(
        MemoryBackend(database),
        SqliteBackend(sqlite_path),
        expectations=EXPECTATIONS.get(name),
    )
    report = harness.run(queries)
    summary = ", ".join(f"{k}={v}" for k, v in sorted(report.summary().items()))
    status = "ok" if report.ok else "DISAGREE"
    print(f"{name:>14}: {len(report.records):>2} pairs  {status}  ({summary})")
    for record in report.disagreements:
        print(f"    {record.qid}: {record.status} — {record.detail}")
    return report.as_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        default=["textbook", "sophisticated", "courses48"],
        help="workloads to check (default: all)",
    )
    parser.add_argument(
        "--output",
        default="DIFF_report.json",
        help="where to write the JSON agreement report",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-diff-") as tmp:
        report = {
            name: run_workload(name, Path(tmp)) for name in args.workloads
        }
    ok = all(entry["ok"] for entry in report.values())
    payload = {"ok": ok, "workloads": report}
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    if not ok:
        print("DIFFERENTIAL FAILURE: backends disagree (see report)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
