"""The ``Backend`` protocol — what translation and execution need from
a database, stated once.

The schema-free pipeline touches its substrate in exactly four ways:

* **catalog** — relations, attributes, FK adjacency (the view graph);
* **statistics** — column value samples for similarity scoring and
  condition-probe sampling (:class:`repro.core.context.TranslationContext`);
* **execution** — run a composed standard-SQL query and get a
  :class:`repro.engine.Result`;
* **freshness** — a monotone ``data_version`` so derived caches know
  when to invalidate.

Anything providing those four surfaces can sit under the translator.
:class:`repro.engine.Database` satisfies the protocol structurally
(minus the ``kind``/``close`` bookkeeping — wrap it with
:func:`repro.backends.as_backend`), and :class:`~repro.backends.sqlite.
SqliteBackend` provides them over a real SQLite file, reflecting the
catalog instead of hand-building it.

The statistics contract, which makes translation deterministic across
backends (DESIGN.md §12):

* ``column_values`` returns the column in **storage (insertion) order**
  with values decoded to engine types (``bool``/``datetime.date``, not
  SQLite's ``0/1``/ISO text) — the context dedupes and stride-samples
  on top, so identical contents yield identical samples and therefore
  identical similarity scores on every backend;
* ``count`` is the exact row count;
* ``data_version`` moves whenever either could change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, Union, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog import Catalog
    from ..engine.executor import Result
    from ..sqlkit import ast


@runtime_checkable
class Backend(Protocol):
    """Query execution and schema/statistics access behind one interface."""

    #: Short implementation tag (``"memory"``, ``"sqlite"``) used as the
    #: ``backend`` label on ``repro_backend_*`` metrics and span attributes.
    kind: str

    @property
    def catalog(self) -> "Catalog":
        """The schema this backend serves (reflected or hand-built)."""
        ...

    @property
    def data_version(self) -> int:
        """Monotone counter; moves when table contents may have changed."""
        ...

    def count(self, relation_name: str) -> int:
        """Exact row count of one relation."""
        ...

    def column_values(self, relation_name: str, attribute_name: str) -> list:
        """One column's values, storage order, decoded to engine types."""
        ...

    def execute(self, query: Union[str, "ast.Node"]) -> "Result":
        """Execute standard SQL (text or AST) and return engine-shaped rows."""
        ...

    def close(self) -> None:
        """Release underlying resources; further calls are undefined."""
        ...
