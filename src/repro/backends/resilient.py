"""ResilientBackend — retry, timeout, degradation and breaker armor
around any :class:`~repro.backends.base.Backend` (DESIGN.md §13).

PR 5 put a pluggable backend on the translation critical path; this
wrapper keeps a flaky one from aborting translation outright.  Each
operation (``reflect`` / ``sample`` / ``execute`` / ``count`` /
``version``) runs inside a guard that composes four behaviours:

* **retry** — transient failures (:class:`~repro.backends.errors.
  TransientBackendError`, injected faults) retry with the service's
  :class:`~repro.service.retry.RetryPolicy`: exponential backoff with
  deterministic per-request jitter, slept on an injectable sleeper so
  the fault injector's virtual clock makes whole retry storms testable
  in microseconds;
* **timeouts as sliced budgets** — every attempt gets a per-operation
  :class:`~repro.core.resilience.Budget` (sliced under ``self.budget``
  when one is attached, so backend time is *noted* against the request
  budget).  The check is cooperative: a hang that advanced the clock
  past the deadline is detected when the call returns and treated as a
  transient timeout;
* **graceful degradation** — when retries are exhausted the guard does
  not always give up: failed *sampling* returns an empty column (the
  translator proceeds with name-similarity-only statistics), partial
  *reflection* (:class:`~repro.backends.errors.BackendDegraded`) keeps
  the partial catalog, and a failed *version* probe serves the last
  known version.  Every degradation appends a structured
  :class:`~repro.errors.Diagnostic` to :attr:`ResilientBackend.health`
  and demotes :attr:`recommended_start_rung`, which the translator folds
  into its degradation ladder;
* **circuit breaking** — a per-backend :class:`~repro.service.breaker.
  CircuitBreaker` counts terminal failures; once tripped it pins the
  backend's databases to its ``pinned_rung`` until a half-open probe
  recovers.  Semantic errors (bad SQL, division by zero) abstain — they
  say nothing about backend health and propagate unchanged.

Observability: each retry emits a ``backend.retry`` span and bumps
``repro_backend_retry_total{backend,op}``; each degradation emits
``backend.degrade`` and ``repro_backend_degraded_total{backend,op}``
(docs/OBSERVABILITY.md).

With no faults the wrapper is pass-through: same catalog object, same
samples, same rows — byte-identical translations to the bare backend
(enforced by ``benchmarks/bench_translate.py`` at < 2 % overhead and by
the parity phase of ``scripts/run_chaos.py`` over all 95 workload
queries).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Union

from ..core.resilience import LADDER, Budget
from ..errors import Diagnostic, ReproError
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from .base import Backend
from .errors import (
    BackendDegraded,
    BackendError,
    BackendUnavailable,
    TransientBackendError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog import Catalog
    from ..engine.executor import Result
    from ..service.breaker import BreakerConfig, CircuitBreaker
    from ..service.retry import RetryPolicy
    from ..sqlkit import ast

__all__ = ["BackendHealth", "DEFAULT_TIMEOUTS", "ResilientBackend"]

#: Per-operation attempt deadlines in seconds (on the wrapper's clock).
DEFAULT_TIMEOUTS: Mapping[str, float] = {
    "reflect": 10.0,
    "sample": 5.0,
    "execute": 30.0,
    "count": 5.0,
    "version": 2.0,
}

#: How many degradation diagnostics :class:`BackendHealth` retains.
_HEALTH_DIAGNOSTIC_CAP = 32


def _weaker_rung(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """The lower (weaker) of two ladder rungs; None means no opinion."""
    if a is None:
        return b
    if b is None:
        return a
    return a if LADDER.index(a) >= LADDER.index(b) else b


@dataclass
class BackendHealth:
    """What the wrapper currently knows about its backend's fitness.

    The translator reads this (via ``database.health``) to attach the
    accumulated diagnostics to degraded translations; flags are sticky
    until :meth:`reset` because a backend that lost its statistics once
    should stay demoted until an operator (or a breaker probe cycle)
    says otherwise.
    """

    stats_degraded: bool = False
    catalog_partial: bool = False
    version_stale: bool = False
    retries: int = 0
    degradations: int = 0
    diagnostics: list = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.stats_degraded or self.catalog_partial or self.version_stale

    def note(self, diagnostic: Diagnostic) -> None:
        self.degradations += 1
        if len(self.diagnostics) < _HEALTH_DIAGNOSTIC_CAP:
            self.diagnostics.append(diagnostic)

    def reset(self) -> None:
        self.stats_degraded = False
        self.catalog_partial = False
        self.version_stale = False
        self.diagnostics.clear()

    def snapshot(self) -> dict:
        return {
            "degraded": self.degraded,
            "stats_degraded": self.stats_degraded,
            "catalog_partial": self.catalog_partial,
            "version_stale": self.version_stale,
            "retries": self.retries,
            "degradations": self.degradations,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class ResilientBackend:
    """Wrap a backend with retries, timeouts, degradation and a breaker."""

    def __init__(
        self,
        inner: Backend,
        *,
        retry: Optional["RetryPolicy"] = None,
        timeouts: Optional[Mapping[str, float]] = None,
        breaker: Union["CircuitBreaker", "BreakerConfig", None] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        request_id: int = 0,
    ) -> None:
        """Armor *inner*.

        *retry* defaults to the service's standard policy (2 retries);
        *timeouts* maps op name → per-attempt deadline seconds (missing
        ops run undeadlined); *breaker* accepts a ready
        ``CircuitBreaker``, a ``BreakerConfig``, or None for defaults;
        *clock* and *sleep* are injectable for deterministic tests —
        pass ``FaultInjector.clock`` / ``FaultInjector.advance`` and no
        wall-clock time passes.  When *sleep* is omitted it is
        ``time.sleep`` on the real clock and a no-op on any other
        (virtual) clock.  *request_id* seeds the deterministic retry
        jitter.
        """
        # Imported here, not at module level: repro.service imports
        # repro.testing (for InjectedFault) which imports this package —
        # construction time is after all modules finish loading.
        from ..service.breaker import BreakerConfig, CircuitBreaker
        from ..service.retry import RetryPolicy

        self._inner = inner
        self.kind = f"resilient[{inner.kind}]"
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeouts = dict(
            DEFAULT_TIMEOUTS if timeouts is None else timeouts
        )
        self._clock = clock
        if sleep is None:
            sleep = time.sleep if clock is time.monotonic else (lambda _s: None)
        self._sleep = sleep
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.request_id = request_id
        #: optional request budget; per-op budgets slice under it so
        #: backend time is noted against the request's counters
        self.budget: Optional[Budget] = None
        if isinstance(breaker, CircuitBreaker):
            self.breaker = breaker
        else:
            config = breaker if isinstance(breaker, BreakerConfig) else BreakerConfig()
            self.breaker = CircuitBreaker(
                config, clock=clock, name=f"backend:{inner.kind}"
            )
        self.health = BackendHealth()
        self._catalog_cache: Optional["Catalog"] = None
        self._last_version: Optional[int] = None
        if metrics is None:
            self._retry_total = self._degraded_total = None
        else:
            self._retry_total = metrics.counter(
                "repro_backend_retry_total",
                "Backend operations retried after a transient failure.",
            )
            self._degraded_total = metrics.counter(
                "repro_backend_degraded_total",
                "Backend operations resolved by graceful degradation.",
            )

    # ------------------------------------------------------------------
    # ladder advice
    # ------------------------------------------------------------------
    @property
    def inner(self) -> Backend:
        return self._inner

    @property
    def recommended_start_rung(self) -> Optional[str]:
        """Weakest rung this backend's state demands, or None when
        healthy.  A tripped breaker pins to its configured rung; lost
        statistics or a partial catalog demote to ``reduced`` (expensive
        search over wrong statistics wastes the budget)."""
        from ..service.breaker import CLOSED

        advised: Optional[str] = None
        if self.breaker.state != CLOSED:
            advised = self.breaker.config.pinned_rung
        if self.health.stats_degraded or self.health.catalog_partial:
            advised = _weaker_rung(advised, "reduced")
        return advised

    # ------------------------------------------------------------------
    # the guard
    # ------------------------------------------------------------------
    def _op_budget(self, op: str) -> Optional[Budget]:
        deadline = self.timeouts.get(op)
        if deadline is None and self.budget is None:
            return None
        if self.budget is not None:
            remaining = self.budget.remaining_time()
            if remaining is not None:
                deadline = remaining if deadline is None else min(deadline, remaining)
            return Budget(deadline=deadline, clock=self._clock, parent=self.budget)
        return Budget(deadline=deadline, clock=self._clock)

    def _count_retry(self, op: str) -> None:
        self.health.retries += 1
        if self._retry_total is not None:
            self._retry_total.inc(1, backend=self.kind, op=op)

    def _count_degraded(self, op: str, action: str, error: BaseException) -> Diagnostic:
        diagnostic = Diagnostic(
            stage="backend",
            message=f"{op} degraded: {action}",
            token=op,
            detail={"error": f"{type(error).__name__}: {error}"},
        )
        self.health.note(diagnostic)
        if self._degraded_total is not None:
            self._degraded_total.inc(1, backend=self.kind, op=op)
        with self.tracer.span("backend.degrade", backend=self.kind, op=op) as span:
            span.set_attribute("action", action)
            span.set_attribute("error", type(error).__name__)
        return diagnostic

    def _is_semantic(self, failure: BaseException) -> bool:
        """Deterministic caller-side errors: retrying cannot change the
        outcome and the breaker learns nothing from them."""
        from ..catalog import SchemaError

        if self.retry.is_retryable(failure):
            return False
        if isinstance(failure, SchemaError):
            return True  # unknown relation/attribute asked of the backend
        return isinstance(failure, ReproError) and not isinstance(
            failure, BackendError
        )

    def _guarded(self, op: str, fn: Callable[[], Any]) -> Any:
        """Run one backend operation under retry/timeout/breaker rules.

        Raises :class:`BackendUnavailable` after exhausting retries,
        propagates semantic ``ReproError``s unchanged, and lets
        :class:`BackendDegraded` through for the per-op wrappers to
        fold in.  The breaker records terminal failures and successes;
        semantic errors abstain.
        """
        probe = self.breaker.admit()[1]
        attempt = 0
        while True:
            budget = self._op_budget(op)
            failure: Optional[BaseException] = None
            try:
                result = fn()
            except Exception as exc:  # classified below and re-raises typed errors only
                failure = exc
            if failure is None:
                if budget is not None and budget.time_exceeded():
                    failure = TransientBackendError(
                        f"backend op {op!r} exceeded its "
                        f"{budget.deadline:.3f}s timeout",
                        diagnostic=Diagnostic(
                            stage="backend",
                            message=f"{op} timed out",
                            token=op,
                            detail=budget.snapshot(),
                        ),
                    )
                else:
                    self.breaker.record(True, probe)
                    return result
            if self.retry.is_retryable(failure) and attempt < self.retry.max_retries:
                attempt += 1
                delay = self.retry.backoff(self.request_id, attempt)
                self._count_retry(op)
                with self.tracer.span(
                    "backend.retry", backend=self.kind, op=op
                ) as span:
                    span.set_attribute("attempt", attempt)
                    span.set_attribute("delay_s", round(delay, 6))
                    span.set_attribute("error", type(failure).__name__)
                self._sleep(delay)
                continue
            if isinstance(failure, BackendDegraded):
                # A partial result is service, not failure: the per-op
                # wrapper decides what to keep.
                self.breaker.abstain(probe)
                raise failure
            if self._is_semantic(failure):
                # Semantic error (bad SQL, division by zero, unknown
                # relation): deterministic, says nothing about backend
                # health — propagate unchanged.
                self.breaker.abstain(probe)
                raise failure
            self.breaker.record(False, probe)
            raise BackendUnavailable(
                f"backend op {op!r} failed after {attempt + 1} attempt(s): "
                f"{failure}",
                diagnostic=Diagnostic(
                    stage="backend",
                    message=f"{op} failed: {failure}",
                    token=op,
                    candidates=attempt + 1,
                    detail={"error": type(failure).__name__},
                ),
            ) from failure

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> "Catalog":
        """The inner catalog, surviving partial reflection.

        A :class:`BackendDegraded` from the inner backend (or injected
        by the chaos harness) yields its partial catalog plus a
        diagnostic; the result is cached either way, matching the
        bare backends' reflect-once behaviour.
        """
        if self._catalog_cache is not None:
            return self._catalog_cache
        try:
            catalog = self._guarded("reflect", lambda: self._inner.catalog)
        except BackendDegraded as exc:
            if exc.partial is None:
                raise BackendUnavailable(
                    f"reflection degraded with no partial catalog: {exc}",
                    diagnostic=exc.diagnostic,
                ) from exc
            catalog = exc.partial
            self.health.catalog_partial = True
            self._count_degraded(
                "reflect", "continuing with partial catalog", exc
            )
        self._catalog_cache = catalog
        return catalog

    @property
    def data_version(self) -> int:
        """The inner version; serves the last known one when the probe
        fails terminally (stale caches beat no service — the diagnostic
        records the staleness)."""
        try:
            version = self._guarded("version", lambda: self._inner.data_version)
        except BackendUnavailable as exc:
            if self._last_version is None:
                raise
            self.health.version_stale = True
            self._count_degraded(
                "version", "serving last known data_version", exc
            )
            return self._last_version
        self._last_version = version
        if self.health.version_stale:
            self.health.version_stale = False
        return version

    def count(self, relation_name: str) -> int:
        return self._guarded("count", lambda: self._inner.count(relation_name))

    def column_values(self, relation_name: str, attribute_name: str) -> list:
        """One column's values — or an empty column when sampling is
        terminally down.  Empty samples mean the context scores that
        attribute by name similarity alone; translation proceeds on a
        lower rung instead of aborting."""
        try:
            return self._guarded(
                "sample",
                lambda: self._inner.column_values(relation_name, attribute_name),
            )
        except BackendUnavailable as exc:
            self.health.stats_degraded = True
            self._count_degraded(
                "sample",
                f"empty sample for {relation_name}.{attribute_name} "
                "(name-similarity-only statistics)",
                exc,
            )
            return []

    def execute(self, query: Union[str, "ast.Node"]) -> "Result":
        return self._guarded("execute", lambda: self._inner.execute(query))

    def close(self) -> None:
        try:
            self._inner.close()
        except Exception:  # last-ditch: the backend is being discarded
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResilientBackend({self._inner!r})"
