"""Shared ``repro_backend_*`` metric emission for all backends.

One metric family, labelled by backend kind and operation, so dashboards
compare memory vs sqlite with a single query (docs/OBSERVABILITY.md):

* ``repro_backend_op_seconds{backend,op}`` — latency histogram for
  ``execute`` / ``sample`` / ``reflect``;
* ``repro_backend_rows_total{backend,op}`` — rows returned;
* ``repro_backend_errors_total{backend,op}`` — failed operations.
"""

from __future__ import annotations

from typing import Optional

from ..obs import MetricsRegistry


class BackendInstruments:
    """Lazily-created instruments; a no-op when no registry is given."""

    def __init__(self, metrics: Optional[MetricsRegistry], kind: str) -> None:
        self._kind = kind
        if metrics is None:
            self._seconds = self._rows = self._errors = None
        else:
            self._seconds = metrics.histogram(
                "repro_backend_op_seconds",
                "Latency of backend operations (execute/sample/reflect).",
            )
            self._rows = metrics.counter(
                "repro_backend_rows_total",
                "Rows returned by backend operations.",
            )
            self._errors = metrics.counter(
                "repro_backend_errors_total",
                "Backend operations that raised.",
            )

    def observe(
        self,
        op: str,
        seconds: float,
        *,
        rows: Optional[int] = None,
        error: bool = False,
    ) -> None:
        if self._seconds is None:
            return
        self._seconds.observe(seconds, backend=self._kind, op=op)
        if rows is not None:
            self._rows.inc(rows, backend=self._kind, op=op)
        if error:
            self._errors.inc(1, backend=self._kind, op=op)
