"""``repro.backends`` — pluggable execution backends (DESIGN.md §12–§13).

The paper's pipeline ends at "composing standard SQL" (§6.2); this
package is where the composed SQL actually runs.  A :class:`Backend`
protocol abstracts query execution and schema/statistics access, with
two implementations and one wrapper:

* :class:`MemoryBackend` — wraps the in-process :class:`repro.engine.
  Database` (the default substrate for tests and the bundled datasets);
* :class:`SqliteBackend` — stdlib ``sqlite3``: reflects the catalog
  from ``PRAGMA`` metadata, sources translation statistics through
  sampled ``SELECT``s, and executes dialect-lowered SQL with
  engine-parity UDFs;
* :class:`ResilientBackend` — fault-tolerance armor over any backend:
  retries with deterministic jitter, per-operation timeout budgets,
  graceful degradation (empty samples, partial catalogs) and a
  per-backend circuit breaker that pins translation to a degraded
  ladder rung.  Typed failures live in :mod:`repro.backends.errors`.

:func:`as_backend` upgrades a raw Database (which satisfies the
protocol structurally) into a MemoryBackend; anything already
implementing the protocol passes through unchanged.  Cross-backend
agreement is enforced by :mod:`repro.testing.differential`, and
fault/schema-drift behaviour by :mod:`repro.testing.faults` /
:mod:`repro.testing.evolution`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..obs import MetricsRegistry, Tracer
from .base import Backend
from .dialect import UnsupportedSqlError, lower, to_sqlite_sql
from .errors import (
    BackendDegraded,
    BackendError,
    BackendUnavailable,
    TransientBackendError,
)
from .memory import MemoryBackend
from .sqlite import SqliteBackend, map_declared_type, reflect_catalog

__all__ = [
    "Backend",
    "BackendDegraded",
    "BackendError",
    "BackendHealth",
    "BackendUnavailable",
    "MemoryBackend",
    "ResilientBackend",
    "SqliteBackend",
    "TransientBackendError",
    "UnsupportedSqlError",
    "as_backend",
    "lower",
    "map_declared_type",
    "reflect_catalog",
    "to_sqlite_sql",
]


def as_backend(
    source,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Backend:
    """Return *source* as a Backend, wrapping a raw Database if needed."""
    from ..engine.database import Database

    if isinstance(source, Database):
        return MemoryBackend(source, tracer=tracer, metrics=metrics)
    return source


# Imported after as_backend is defined: resilient's lazy service imports
# pull in repro.testing.differential, which imports this module's
# as_backend during circular bootstrap.
from .resilient import BackendHealth, ResilientBackend  # noqa: E402
