"""Lower composed standard SQL to SQLite's dialect.

The engine's SQL surface is close to SQLite's but not identical.  Rather
than special-casing the renderer, we rewrite the AST before rendering so
the differences are explicit and testable:

* ``/`` and ``%`` become calls to the ``repro_div`` / ``repro_mod``
  user-defined functions registered on every :class:`~repro.backends.
  sqlite.SqliteBackend` connection.  SQLite's native operators diverge
  from the engine (``1/0`` is NULL, ``7/2`` is 3, float modulo truncates);
  the UDFs implement the engine's semantics — error on zero, exact
  integer division stays integral, Python modulo — which DESIGN.md §12
  fixes as the project-wide behavior.
* ``expr = ANY (subquery)`` and ``expr <> ALL (subquery)`` become
  ``IN`` / ``NOT IN`` — SQLite has no quantified comparisons.  Other
  quantifier/operator combinations raise :class:`UnsupportedSqlError`
  so the divergence is a typed failure, not silently wrong rows.

Scalar-function parity (``round`` half-even, missing ``concat``,
case-sensitive ``LIKE``) is handled by UDF registration in the backend,
not by rewriting, since the names already match.
"""

from __future__ import annotations

from ..engine.errors import ExecutionError
from ..sqlkit import ast
from ..sqlkit.render import render


class UnsupportedSqlError(ExecutionError):
    """A construct with no faithful SQLite lowering (e.g. ``< ALL``)."""


def _rewrite(node: ast.Node) -> "ast.Node | None":
    if isinstance(node, ast.BinaryOp) and node.op == "/":
        return ast.FuncCall("repro_div", (node.left, node.right))
    if isinstance(node, ast.BinaryOp) and node.op == "%":
        return ast.FuncCall("repro_mod", (node.left, node.right))
    if isinstance(node, ast.QuantifiedCompare):
        if node.quantifier == "any" and node.op == "=":
            return ast.InSubquery(node.expr, node.query, negated=False)
        if node.quantifier == "all" and node.op == "<>":
            return ast.InSubquery(node.expr, node.query, negated=True)
        raise UnsupportedSqlError(
            f"cannot lower {node.op} {node.quantifier.upper()} to SQLite; "
            "only = ANY and <> ALL have IN-subquery equivalents"
        )
    return None


def lower(node: ast.Node) -> ast.Node:
    """Rewrite *node* into SQLite-executable form (pure; engine AST in/out)."""
    return ast.transform(node, _rewrite)


def to_sqlite_sql(query: ast.Node) -> str:
    """Render *query* as SQL text SQLite will accept with our UDFs loaded."""
    return render(lower(query))
