"""MemoryBackend — the in-process engine behind the Backend protocol.

A thin instrumented wrapper around :class:`repro.engine.Database`.  The
Database already satisfies the protocol structurally; the wrapper adds
the ``kind`` tag, a no-op ``close`` and ``repro_backend_*`` spans and
metrics so both backends are observable through the same names.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Optional, Union

from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from .instrument import BackendInstruments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog import Catalog
    from ..engine.database import Database
    from ..engine.executor import Result
    from ..sqlkit import ast


class MemoryBackend:
    """Serve translation and execution from an in-memory ``Database``."""

    kind = "memory"

    def __init__(
        self,
        database: "Database",
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.database = database
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._instruments = BackendInstruments(metrics, self.kind)

    @property
    def catalog(self) -> "Catalog":
        return self.database.catalog

    @property
    def data_version(self) -> int:
        return self.database.data_version

    def count(self, relation_name: str) -> int:
        return self.database.count(relation_name)

    def column_values(self, relation_name: str, attribute_name: str) -> list:
        started = time.perf_counter()
        values = self.database.column_values(relation_name, attribute_name)
        self._instruments.observe("sample", time.perf_counter() - started, rows=len(values))
        return values

    def execute(self, query: Union[str, "ast.Node"]) -> "Result":
        with self.tracer.span("backend.execute", backend=self.kind) as span:
            started = time.perf_counter()
            try:
                result = self.database.execute(query)
            except Exception:  # re-raises after observing the failure
                self._instruments.observe(
                    "execute", time.perf_counter() - started, error=True
                )
                raise
            elapsed = time.perf_counter() - started
            self._instruments.observe("execute", elapsed, rows=len(result.rows))
            span.set_attribute("rows", len(result.rows))
            return result

    def close(self) -> None:
        """Nothing to release; the wrapped Database stays usable."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryBackend({self.database.catalog.name!r})"
