"""SqliteBackend — run the schema-free pipeline over a real SQLite file.

Three responsibilities (ISSUE 5 tentpole, DESIGN.md §12):

* **catalog reflection** — build a :class:`repro.catalog.Catalog` from
  ``PRAGMA table_info`` / ``PRAGMA foreign_key_list``, including the FK
  adjacency the view graph needs, so ``repro import mydb.sqlite`` works
  with no hand-written schema;
* **statistics provision** — ``column_values`` runs a (optionally
  ``LIMIT``-ed) ``SELECT`` and decodes values back to engine types, so
  :class:`repro.core.context.TranslationContext` builds identical
  samples — and therefore identical translations — on either backend;
* **execution** — lower the composed AST to SQLite's dialect
  (:mod:`repro.backends.dialect`), run it, and return rows in the
  engine's :class:`~repro.engine.executor.Result` shape.

Semantics parity is enforced by registering the engine's scalar
functions as SQLite UDFs (overriding builtins where both exist — e.g.
``round`` becomes half-even like Python's) plus ``repro_div`` /
``repro_mod`` for arithmetic and a ``like()`` override for the engine's
case-sensitive LIKE.  Exceptions raised inside UDFs surface from sqlite3
as a generic OperationalError, so the backend stashes the original
engine error and re-raises it with its message intact.

Threading: file-backed sources get one connection **per thread**
(created lazily, UDFs registered at creation), so ``QueryService``
workers execute concurrently instead of serialising on one handle.
``:memory:`` sources and adopted connections cannot be re-opened per
thread, so they stay on a single shared connection guarded by an RLock
(sqlite3 objects are not thread-safe even with
``check_same_thread=False``).  UDF error stashing is thread-local in
both modes.

Open/reflect failures are typed (ISSUE 6): a corrupted or non-SQLite
file raises :class:`~repro.backends.errors.BackendUnavailable`, a
locked/busy database raises :class:`~repro.backends.errors.
TransientBackendError` (worth a retry) — never a raw ``sqlite3``
traceback.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from contextlib import nullcontext
from datetime import date
from pathlib import Path
from typing import Any, Callable, Optional, Union

from ..catalog import Attribute, Catalog, DataType, SchemaError
from ..engine.errors import ExecutionError
from ..errors import Diagnostic
from .errors import BackendUnavailable, TransientBackendError
from ..engine.evaluator import like_match
from ..engine.executor import Result
from ..engine.functions import SCALAR_FUNCTIONS
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..sqlkit import ast
from ..sqlkit.parser import parse
from ..sqlkit.render import render_identifier
from .dialect import to_sqlite_sql
from .instrument import BackendInstruments

__all__ = ["SqliteBackend", "reflect_catalog", "map_declared_type"]


def map_declared_type(declared: Optional[str]) -> DataType:
    """Map a SQLite declared column type to an engine :class:`DataType`.

    Follows SQLite's own affinity rules (substring matching on the
    declared type) extended with BOOLEAN and DATE, which SQLite stores
    as INTEGER/TEXT but our engine treats as distinct types.  Unknown or
    missing declarations fall back to TEXT.
    """
    decl = (declared or "").upper()
    if "BOOL" in decl:
        return DataType.BOOLEAN
    if "DATE" in decl or "TIME" in decl:
        return DataType.DATE
    if "INT" in decl:
        return DataType.INTEGER
    if "CHAR" in decl or "CLOB" in decl or "TEXT" in decl:
        return DataType.TEXT
    if (
        "REAL" in decl
        or "FLOA" in decl
        or "DOUB" in decl
        or "NUMERIC" in decl
        or "DEC" in decl
    ):
        return DataType.FLOAT
    return DataType.TEXT


def reflect_catalog(connection: sqlite3.Connection, name: str = "sqlite") -> Catalog:
    """Build a Catalog from a live SQLite connection's schema.

    Tables come from ``sqlite_master`` in creation order; columns, types,
    nullability and primary keys from ``PRAGMA table_info``; FK edges from
    ``PRAGMA foreign_key_list``.  Composite foreign keys and FKs whose
    endpoints do not resolve (dangling targets are legal in un-enforced
    SQLite schemas) are skipped — the view graph only models single-column
    FK-PK edges (paper §5.1).
    """
    catalog = Catalog(name)
    tables = [
        row[0]
        for row in connection.execute(
            "SELECT name FROM sqlite_master "
            "WHERE type = 'table' AND name NOT LIKE 'sqlite_%'"
        )
    ]
    for table in tables:
        info = connection.execute(
            f"PRAGMA table_info({render_identifier(table)})"
        ).fetchall()
        # Only the explicit NOT NULL flag maps to nullable=False: SQLite
        # implies NOT NULL for most PK columns, but mirroring that here
        # would break round-tripping catalogs whose PKs are declared
        # nullable (the flag is descriptive; the engine enforces PKs).
        attributes = [
            Attribute(
                name=col_name,
                data_type=map_declared_type(declared),
                nullable=not notnull,
            )
            for (_cid, col_name, declared, notnull, _default, _pk) in info
        ]
        pk_columns = sorted(
            ((pk_position, col_name) for (_c, col_name, _d, _n, _df, pk_position) in info
             if pk_position),
        )
        catalog.create_relation(
            table, attributes, primary_key=[col for _pos, col in pk_columns]
        )
    for table in tables:
        fk_rows = connection.execute(
            f"PRAGMA foreign_key_list({render_identifier(table)})"
        ).fetchall()
        # ids count backwards from the last-declared FK (id 0 is the
        # newest), so declaration order — which join-predicate ordering
        # in translated SQL depends on — is descending id.  Composite
        # FKs (any id with a seq > 0 member) are dropped.
        composite_ids = {row[0] for row in fk_rows if row[1] > 0}
        for row in sorted(fk_rows, key=lambda r: (-r[0], r[1])):
            fk_id, seq, target_table, source_column, target_column = row[:5]
            if fk_id in composite_ids:
                continue
            try:
                catalog.add_foreign_key(
                    table, source_column, target_table, target_column
                )
            except SchemaError:
                continue  # dangling or duplicate FK — not an edge we can use
    return catalog


# ---------------------------------------------------------------------------
# engine-semantics UDFs
# ---------------------------------------------------------------------------


def _udf_div(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if right == 0:
        raise ExecutionError("division by zero")
    result = left / right
    if isinstance(left, int) and isinstance(right, int):
        return left // right if left % right == 0 else result
    return result


def _udf_mod(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if right == 0:
        raise ExecutionError("modulo by zero")
    return left % right


def _map_open_error(exc: sqlite3.Error, source: str) -> Exception:
    """Typed error for an unusable database file: locked/busy is
    transient and retryable, everything else — corrupted file, not a
    database, permissions — is terminal."""
    message = str(exc).lower()
    diagnostic = Diagnostic(
        stage="backend",
        message=f"cannot open SQLite database: {exc}",
        token="reflect",
        detail={"source": source, "sqlite_error": type(exc).__name__},
    )
    if isinstance(exc, sqlite3.OperationalError) and (
        "locked" in message or "busy" in message
    ):
        return TransientBackendError(
            f"SQLite database {source!r} is locked: {exc}",
            diagnostic=diagnostic,
        )
    return BackendUnavailable(
        f"cannot open SQLite database {source!r}: {exc}", diagnostic=diagnostic
    )


class SqliteBackend:
    """Execute translated queries against a SQLite database."""

    kind = "sqlite"

    def __init__(
        self,
        source: Union[str, Path, sqlite3.Connection],
        *,
        name: Optional[str] = None,
        sample_limit: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        """Open (or adopt) a SQLite database and reflect its catalog.

        *source* is a filesystem path, ``":memory:"``, or an existing
        ``sqlite3.Connection`` (adopted, not closed by :meth:`close`).
        *sample_limit* caps the rows ``column_values`` reads per column —
        leave ``None`` to match MemoryBackend's full-column statistics.
        """
        self._tls = threading.local()
        self._conn_lock = threading.Lock()
        self._connections: list[sqlite3.Connection] = []
        self._closed = False
        if isinstance(source, sqlite3.Connection):
            self._path = None
            self._shared_conn: Optional[sqlite3.Connection] = source
            self._owns_connection = False
            self._per_thread = False
            default_name = "sqlite"
        else:
            self._path = str(source)
            self._owns_connection = True
            # A second connection to ":memory:" would see a different,
            # empty database — memory sources stay on one shared handle.
            self._per_thread = self._path != ":memory:"
            self._shared_conn = None
            stem = Path(self._path).stem
            default_name = stem if stem and stem != ":memory:" else "sqlite"
            if not self._per_thread:
                self._shared_conn = sqlite3.connect(
                    self._path, check_same_thread=False
                )
        self.name = name if name is not None else default_name
        self.sample_limit = sample_limit
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._instruments = BackendInstruments(metrics, self.kind)
        self._lock = threading.RLock()
        with self.tracer.span("backend.reflect", backend=self.kind) as span:
            started = time.perf_counter()
            try:
                conn = self._connection()
                if self._shared_conn is not None:
                    self._register_functions(conn)
                self._catalog = reflect_catalog(conn, self.name)
            except sqlite3.Error as exc:
                self._instruments.observe(
                    "reflect", time.perf_counter() - started, error=True
                )
                span.set_attribute("error", type(exc).__name__)
                raise _map_open_error(exc, self._path or "<connection>") from exc
            elapsed = time.perf_counter() - started
            span.set_attribute("relations", len(self._catalog))
            span.set_attribute("foreign_keys", len(self._catalog.foreign_keys))
        self._instruments.observe("reflect", elapsed)

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        """This thread's connection (created lazily in per-thread mode)."""
        if not self._per_thread:
            assert self._shared_conn is not None
            return self._shared_conn
        conn = getattr(self._tls, "conn", None)
        if conn is None:
            assert self._path is not None
            # check_same_thread=False: each connection is *used* by one
            # thread only, but close() runs from whichever thread tears
            # the backend down.
            conn = sqlite3.connect(self._path, check_same_thread=False)
            self._register_functions(conn)
            with self._conn_lock:
                if self._closed:
                    conn.close()
                    raise BackendUnavailable(
                        f"SqliteBackend({self.name!r}) is closed"
                    )
                self._connections.append(conn)
            self._tls.conn = conn
        return conn

    def _guard(self):
        """Serialise shared-connection use; no-op when each thread owns
        its connection."""
        return self._lock if not self._per_thread else nullcontext()

    # ------------------------------------------------------------------
    # function registration
    # ------------------------------------------------------------------
    def _capture(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Stash exceptions raised inside a UDF (thread-locally — UDFs
        run on the executing thread) so :meth:`execute` can re-raise the
        engine error instead of sqlite3's opaque wrapper."""

        def wrapper(*args: Any) -> Any:
            try:
                return fn(*args)
            except Exception as exc:  # re-raises after stashing the cause
                self._tls.udf_error = exc
                raise

        return wrapper

    def _register_functions(self, conn: sqlite3.Connection) -> None:
        conn.create_function("repro_div", 2, self._capture(_udf_div), deterministic=True)
        conn.create_function("repro_mod", 2, self._capture(_udf_mod), deterministic=True)
        # Engine scalar functions override SQLite builtins of the same
        # name, so e.g. round() is half-even on both backends and
        # concat() exists even where SQLite lacks it.
        from ..engine.functions import call_scalar

        for fname in SCALAR_FUNCTIONS:
            conn.create_function(
                fname,
                -1,
                self._capture(self._scalar_wrapper(fname, call_scalar)),
                deterministic=True,
            )
        # A LIKE override makes pattern matching case-sensitive, as the
        # engine's is.  SQLite calls like(pattern, value); the 3-arg
        # ESCAPE form has no engine counterpart.
        def _like(pattern: Any, value: Any) -> Any:
            if pattern is None or value is None:
                return None
            return 1 if like_match(str(value), str(pattern)) else 0

        conn.create_function("like", 2, self._capture(_like), deterministic=True)

    @staticmethod
    def _scalar_wrapper(
        fname: str, call_scalar: Callable[[str, Any], Any]
    ) -> Callable[..., Any]:
        def wrapper(*args: Any) -> Any:
            return call_scalar(fname, args)

        return wrapper

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def data_version(self) -> int:
        """Combine ``PRAGMA data_version`` (bumped by *other*
        connections' commits) with this thread's connection change
        counter.  In per-thread mode the value is thread-relative after
        a write — different threads may briefly disagree, which at worst
        invalidates the shared context cache spuriously (the safe
        direction)."""
        conn = self._connection()
        with self._guard():
            (external,) = conn.execute("PRAGMA data_version").fetchone()
            return external * 1_000_000 + conn.total_changes

    def count(self, relation_name: str) -> int:
        relation = self._catalog.relation(relation_name)
        sql = f"SELECT count(*) FROM {render_identifier(relation.name)}"
        conn = self._connection()
        with self._guard():
            (value,) = conn.execute(sql).fetchone()
        return value

    def column_values(self, relation_name: str, attribute_name: str) -> list:
        """One column in rowid (insertion) order, decoded to engine types.

        Decoding matters: BOOLEAN comes back as 0/1 and DATE as ISO text,
        but the engine's comparison rules only match booleans with
        booleans, so raw SQLite values would silently zero out condition
        similarity scores.
        """
        relation = self._catalog.relation(relation_name)
        attribute = relation.attribute(attribute_name)
        sql = (
            f"SELECT {render_identifier(attribute.name)} "
            f"FROM {render_identifier(relation.name)}"
        )
        if self.sample_limit is not None:
            sql += f" LIMIT {int(self.sample_limit)}"
        started = time.perf_counter()
        conn = self._connection()
        with self._guard():
            rows = conn.execute(sql).fetchall()
        values = [_decode(value, attribute.data_type) for (value,) in rows]
        self._instruments.observe(
            "sample", time.perf_counter() - started, rows=len(values)
        )
        return values

    def execute(self, query: Union[str, ast.Node]) -> Result:
        """Lower to the SQLite dialect, run, and shape rows like the engine."""
        if isinstance(query, str):
            query = parse(query)
        sql = to_sqlite_sql(query)
        conn = self._connection()
        with self.tracer.span("backend.execute", backend=self.kind) as span:
            started = time.perf_counter()
            with self._guard():
                self._tls.udf_error = None
                try:
                    cursor = conn.execute(sql)
                    rows = [tuple(row) for row in cursor.fetchall()]
                except sqlite3.Error as exc:
                    self._instruments.observe(
                        "execute", time.perf_counter() - started, error=True
                    )
                    span.set_attribute("error", type(exc).__name__)
                    udf_error = getattr(self._tls, "udf_error", None)
                    if isinstance(udf_error, ExecutionError):
                        raise udf_error from exc
                    message = str(exc).lower()
                    if isinstance(exc, sqlite3.OperationalError) and (
                        "locked" in message or "busy" in message
                    ):
                        # Contention, not a property of the query: typed
                        # transient so ResilientBackend retries it.
                        raise TransientBackendError(
                            f"sqlite: {exc}",
                            diagnostic=Diagnostic(
                                stage="backend",
                                message=f"sqlite execute: {exc}",
                                token="execute",
                            ),
                        ) from exc
                    raise ExecutionError(f"sqlite: {exc}") from exc
                columns = (
                    [item[0] for item in cursor.description]
                    if cursor.description
                    else []
                )
            elapsed = time.perf_counter() - started
            self._instruments.observe("execute", elapsed, rows=len(rows))
            span.set_attribute("rows", len(rows))
        return Result(columns, rows)

    def sql_for(self, query: Union[str, ast.Node]) -> str:
        """The dialect-lowered SQL text :meth:`execute` would run (debugging)."""
        if isinstance(query, str):
            query = parse(query)
        return to_sqlite_sql(query)

    def close(self) -> None:
        """Close every connection this backend opened (idempotent).

        Adopted connections are left to their owner.  Threads that try
        to use the backend after close get a typed
        :class:`BackendUnavailable` instead of a half-closed handle.
        """
        with self._conn_lock:
            self._closed = True
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            conn.close()
        if self._owns_connection and self._shared_conn is not None:
            self._shared_conn.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqliteBackend({self.name!r})"


def _decode(value: Any, data_type: DataType) -> Any:
    if value is None:
        return None
    if data_type is DataType.BOOLEAN and isinstance(value, int):
        return bool(value)
    if data_type is DataType.DATE and isinstance(value, str):
        try:
            return date.fromisoformat(value)
        except ValueError:
            return value
    if data_type is DataType.FLOAT and isinstance(value, int):
        return float(value)
    return value
