"""Typed backend-layer failures (DESIGN.md §13).

The backend sits on the translation critical path — reflection feeds the
view graph, sampling feeds similarity statistics, execution produces the
rows — so its failures need the same typed treatment the pipeline stages
got in PR 3.  Three classes, by what the caller can do about them:

* :class:`TransientBackendError` — a hiccup worth retrying (a locked
  SQLite file, a dropped connection, an injected transport fault).
  :class:`~repro.backends.resilient.ResilientBackend` retries these with
  the service's :class:`~repro.service.retry.RetryPolicy` before
  escalating.
* :class:`BackendUnavailable` — terminal: retries were exhausted (or
  never applicable, e.g. a corrupted database file).  Maps to its own
  CLI exit code (7) so scripts can tell "the backend is down" from "the
  query is wrong".
* :class:`BackendDegraded` — the backend produced a *partial* result
  (``partial`` carries it, e.g. a partially-reflected catalog).  The
  resilient wrapper folds the partial result in and continues on a lower
  ladder rung with a structured :class:`~repro.errors.Diagnostic`; only
  when nothing wraps the backend does it surface to the caller.

This module imports nothing but :mod:`repro.errors`, so any layer —
including :mod:`repro.testing.faults`, which is upstream of the backends
package in import order — can raise these without cycles.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import Diagnostic, ReproError

__all__ = [
    "BackendDegraded",
    "BackendError",
    "BackendUnavailable",
    "TransientBackendError",
]


class BackendError(ReproError):
    """Root of backend-layer failures (reflection, sampling, execution
    infrastructure — *not* semantic errors like division by zero, which
    stay :class:`~repro.engine.EngineError`)."""


class TransientBackendError(BackendError):
    """A retryable backend hiccup: locked file, dropped connection,
    injected transport fault.  Worth a backoff-spaced retry."""


class BackendUnavailable(BackendError):
    """Terminal backend failure: retries exhausted or the substrate is
    unusable (corrupted file, closed connection).  CLI exit code 7."""


class BackendDegraded(BackendError):
    """The backend produced a partial result instead of failing outright.

    ``partial`` carries the partial payload (e.g. a catalog missing some
    relations).  :class:`~repro.backends.resilient.ResilientBackend`
    catches this, keeps the payload, records a diagnostic and continues
    degraded rather than aborting translation.
    """

    def __init__(
        self,
        *args: object,
        partial: Any = None,
        diagnostic: Optional[Diagnostic] = None,
    ) -> None:
        super().__init__(*args, diagnostic=diagnostic)
        self.partial = partial
