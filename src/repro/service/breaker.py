"""Per-database circuit breaker over the degradation ladder.

Classic breakers fail fast when a dependency is down.  Ours has a
cheaper option: the translator's degradation ladder (``full → reduced →
greedy → partial``) means a database under budget pressure can still be
served, just at a weaker rung.  The breaker therefore doesn't reject
requests — it *pins* them:

* **closed** — requests run at full strength.  ``failure_threshold``
  consecutive budget-pressure failures (a ``BudgetExceeded`` escaping,
  a deadline timeout, or a translation that only survived by abandoning
  budgeted rungs) trip the breaker.
* **open** — new requests are admitted at ``pinned_rung`` (default
  ``"greedy"``): the translator skips the expensive search rungs
  outright instead of burning budget rediscovering that they time out.
  After ``cooldown`` seconds on the breaker's (injectable) clock, one
  request is promoted to a **half-open probe**.
* **half-open** — the probe runs at full strength while everyone else
  stays pinned.  A clean probe closes the breaker; a budget-pressure
  probe re-opens it and restarts the cooldown.

All transitions are recorded in ``transitions`` (a ``(from, to,
reason)`` trace) so tests can assert the exact state machine walk, and
everything is lock-protected and clock-injected — no wall-clock sleeps
anywhere.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.resilience import LADDER

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one :class:`CircuitBreaker`."""

    #: consecutive budget-pressure failures that trip the breaker
    failure_threshold: int = 3
    #: seconds (on the breaker's clock) before a half-open probe
    cooldown: float = 1.0
    #: ladder rung pinned while the breaker is open
    pinned_rung: str = "greedy"

    def __post_init__(self) -> None:
        if self.pinned_rung not in LADDER:
            raise ValueError(
                f"unknown ladder rung {self.pinned_rung!r}; "
                f"expected one of {LADDER}"
            )
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")


class CircuitBreaker:
    """Budget-pressure breaker for one database."""

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        clock: Callable[[], float] = time.monotonic,
        name: str = "default",
        on_transition: Optional[
            Callable[[str, str, str, str], None]
        ] = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.name = name
        #: observer called as ``(name, from_state, to_state, reason)``
        #: on every transition, while the breaker lock is held — keep it
        #: cheap and never call back into the breaker from it
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        #: (from_state, to_state, reason) transition trace
        self.transitions: list[tuple[str, str, str]] = []
        #: times the breaker tripped closed→open or half-open→open
        self.trip_count = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, to: str, reason: str) -> None:
        """Record a state change.  Caller holds the lock."""
        before = self._state
        self.transitions.append((before, to, reason))
        if to == OPEN:
            self.trip_count += 1
            self._opened_at = self.clock()
        self._state = to
        if self.on_transition is not None:
            self.on_transition(self.name, before, to, reason)

    # ------------------------------------------------------------------
    def admit(self) -> tuple[str, bool]:
        """Admission decision for one new request.

        Returns ``(start_rung, is_probe)``: the ladder rung the request
        must start at, and whether it is the half-open recovery probe
        (the caller must report the probe's outcome via :meth:`record`
        with ``probe=True``).
        """
        with self._lock:
            if self._state == CLOSED:
                return "full", False
            if (
                self._state == OPEN
                and not self._probe_in_flight
                and self._opened_at is not None
                and self.clock() - self._opened_at >= self.config.cooldown
            ):
                self._transition(HALF_OPEN, "cooldown elapsed: probing")
                self._probe_in_flight = True
                return "full", True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                # previous probe completed without closing us (e.g. its
                # request was shed): send another
                self._probe_in_flight = True
                return "full", True
            return self.config.pinned_rung, False

    def record(self, success: bool, probe: bool = False) -> None:
        """Report one finished request.

        ``success`` means "no budget pressure": the request neither
        timed out nor raised ``BudgetExceeded`` nor degraded because a
        budgeted rung was abandoned.  Requests that failed for
        *non*-budget reasons (syntax errors, unmappable trees) should
        not be reported at all — they say nothing about load.
        """
        with self._lock:
            if probe:
                self._probe_in_flight = False
            if success:
                if probe and self._state == HALF_OPEN:
                    self._transition(CLOSED, "probe succeeded")
                    self._consecutive_failures = 0
                elif self._state == CLOSED:
                    self._consecutive_failures = 0
                # a pinned request succeeding at the pinned rung is not
                # evidence the *full* rung recovered: only probes close
            else:
                if probe and self._state == HALF_OPEN:
                    self._transition(OPEN, "probe failed: re-opening")
                elif self._state == CLOSED:
                    self._consecutive_failures += 1
                    if (
                        self._consecutive_failures
                        >= self.config.failure_threshold
                    ):
                        self._transition(
                            OPEN,
                            f"{self._consecutive_failures} consecutive "
                            "budget-pressure failures",
                        )
                # failures while OPEN leave the state alone: the breaker
                # is already shedding work

    def abstain(self, probe: bool = False) -> None:
        """Report a request whose outcome says nothing about load (e.g.
        a syntax error): releases the probe slot, changes no state."""
        with self._lock:
            if probe:
                self._probe_in_flight = False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trip_count": self.trip_count,
                "pinned_rung": self.config.pinned_rung,
                "transitions": list(self.transitions),
            }
