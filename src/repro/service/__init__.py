"""Concurrent serving layer over the schema-free translation pipeline.

:class:`QueryService` runs translations on a thread pool with four
behaviours a front end needs under load (DESIGN.md §10):

* **admission control** — capacity is ``workers + queue_limit``
  requests in flight; submissions past it are *shed* immediately with
  a typed :class:`ServiceOverloaded` (bounded latency, no unbounded
  queues);
* **deadlines as budgets** — a per-request deadline becomes a
  :class:`~repro.core.resilience.Budget` created *at admission*, so
  queue wait counts against it and overruns degrade down the ladder
  instead of failing;
* **retries** — transient faults retry with exponential backoff and
  deterministic per-request jitter (:class:`RetryPolicy`);
* **a circuit breaker per database** — consecutive budget-pressure
  failures open the breaker, which *pins* new requests to a cheap
  ladder rung until a half-open probe recovers
  (:class:`CircuitBreaker`).

Every request's journey is observable: pass ``tracer=`` /
``metrics=`` to :class:`QueryService` and each request gets one
``service.request`` span carrying admission, queue-wait, retry and
breaker events, plus the ``repro_service_*`` / ``repro_breaker_*``
metric families — the full catalog is docs/OBSERVABILITY.md.

**Exit codes.**  The CLI (``python -m repro``, see :mod:`repro.cli`)
maps this layer's outcomes — and the translator's typed errors — onto
one process exit code, the contract scripts and CI rely on:

=====  ==========================================================
code   meaning
=====  ==========================================================
0      success: every query translated (degraded still counts)
1      unhandled failure *outside* the CLI's error guard (a crash
       in Python startup or argument parsing; nothing typed)
2      syntax error (:class:`~repro.sqlkit.SqlSyntaxError`)
3      translation failure — no mapping / no join network
       (:class:`~repro.core.TranslationError`)
4      engine execution error (:class:`~repro.engine.EngineError`)
5      internal error: any other :class:`~repro.errors.ReproError`
6      batch mode only: at least one request was shed by admission
       control (:class:`ServiceOverloaded`)
7      the execution backend is unavailable (corrupted or locked
       file, retries exhausted —
       :class:`~repro.backends.errors.BackendError`)
8      a serving worker process crashed or hung
       (:class:`~repro.server.errors.WorkerCrashed` /
       :class:`~repro.server.errors.WorkerTimeout`; raised by the
       multi-process :mod:`repro.server` layer)
=====  ==========================================================

Codes 2–5, 7 and 8 come from ``repro.cli.exit_code_for``; 6 dominates
a batch run because shedding is a capacity signal, not a per-query
verdict.
The budget/degradation side of this table lives in
:mod:`repro.core.resilience`.

See :mod:`repro.service.service` for the threading architecture.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from .retry import NO_RETRY, RetryPolicy, jitter_fraction
from .service import (
    DEFAULT_DATABASE,
    QueryService,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    ServiceRequest,
    ServiceResponse,
    ServiceStats,
)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "DEFAULT_DATABASE",
    "HALF_OPEN",
    "NO_RETRY",
    "OPEN",
    "QueryService",
    "RetryPolicy",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "jitter_fraction",
]
