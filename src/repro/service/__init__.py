"""Concurrent serving layer over the schema-free translation pipeline.

See :mod:`repro.service.service` for the architecture overview.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from .retry import NO_RETRY, RetryPolicy, jitter_fraction
from .service import (
    DEFAULT_DATABASE,
    QueryService,
    ServiceConfig,
    ServiceOverloaded,
    ServiceRequest,
    ServiceResponse,
    ServiceStats,
)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "DEFAULT_DATABASE",
    "HALF_OPEN",
    "NO_RETRY",
    "OPEN",
    "QueryService",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "jitter_fraction",
]
