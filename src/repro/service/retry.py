"""Retry policy: exponential backoff with deterministic jitter.

Transient faults — injected transport hiccups, flaky stage errors — are
worth one or two cheap retries; everything else (syntax errors, budget
exhaustion, genuine translation failures) is not, because retrying can
only reproduce the same deterministic outcome.  The policy therefore
classifies errors by *type* and backs off exponentially between
attempts.

The jitter is **deterministic**: a hash of ``(request_id, attempt)``
spreads concurrent retries apart (no thundering herd) while keeping
every schedule exactly reproducible — the same request retried after
the same fault always sleeps the same amount.  Combined with the
fault-injector virtual clock (``FaultInjector.advance`` as the sleeper)
a whole retry storm is testable in microseconds with zero wall-clock
sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Type

# Submodule-direct imports keep the bootstrap cycle (service → testing →
# backends) from touching partially-initialised package namespaces.
from ..backends.errors import TransientBackendError
from ..testing.faults import InjectedFault


def jitter_fraction(request_id: int, attempt: int) -> float:
    """Deterministic pseudo-random fraction in ``[0, 1)``.

    A small integer mix (Knuth multiplicative hashing plus an
    xorshift-style finalizer) — *not* ``hash()``, whose string seeds are
    randomized per process, and *not* ``random``, which would make retry
    traces unreproducible.
    """
    x = (request_id * 2654435761 + attempt * 40503) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 2246822519) & 0xFFFFFFFF
    x ^= x >> 13
    return (x % 10000) / 10000.0


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry transient failures, and how to space them.

    ``backoff(request_id, attempt)`` returns the delay before the
    *attempt*-th retry (1-based): ``base * 2**(attempt-1)`` capped at
    ``cap``, stretched by up to ``jitter`` of itself using the
    deterministic per-request fraction.
    """

    max_retries: int = 2
    base: float = 0.05
    cap: float = 2.0
    jitter: float = 0.1
    #: exception types worth retrying; anything else fails fast
    retryable: Tuple[Type[BaseException], ...] = (
        InjectedFault,
        TransientBackendError,
    )

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def backoff(self, request_id: int, attempt: int) -> float:
        raw = min(self.cap, self.base * (2 ** (attempt - 1)))
        return raw * (1.0 + self.jitter * jitter_fraction(request_id, attempt))


#: A policy that never retries (useful as an explicit CLI/off switch).
NO_RETRY = RetryPolicy(max_retries=0)
