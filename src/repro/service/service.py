"""Concurrent schema-free query service.

:class:`QueryService` wraps one or more databases (each with a shared,
lock-protected :class:`~repro.core.context.TranslationContext`) behind a
thread pool and gives the translation pipeline the serving-layer
behaviours a production front end needs:

* **admission control** — a bounded queue (``workers`` running +
  ``queue_limit`` waiting).  A request that would exceed it is *shed*
  immediately with a typed :class:`ServiceOverloaded` diagnostic instead
  of queueing unboundedly;
* **deadlines** — each request gets a :class:`~repro.core.resilience.
  Budget` with the request deadline (measured from admission, so queue
  wait counts) and the configured search caps; every retry attempt runs
  under a fresh :meth:`~repro.core.resilience.Budget.slice` of it, so
  the attempt inherits exactly the time that remains;
* **retries** — transient faults are retried under
  :class:`~repro.service.retry.RetryPolicy` with exponential backoff
  and deterministic jitter.  The backoff "sleep" and the budget clock
  are both injectable: built with a
  :class:`~repro.testing.faults.FaultInjector` the service reuses its
  virtual clock, so backoff and timeout paths are testable without
  wall-clock sleeping;
* **circuit breaking** — a per-database
  :class:`~repro.service.breaker.CircuitBreaker` watches for budget
  pressure and, once tripped, pins new requests to a lower rung of the
  degradation ladder (the translator's ``start_rung``), probing
  half-open recovery after a cooldown.

Translator instances are **per worker thread** (their scratch state is
not shared); the per-database context *is* shared, which is safe because
PR 3 made its caches lock-protected and its memoized values are pure —
concurrent serving returns byte-identical results to a serial pass.

Typical use::

    from repro.service import QueryService, ServiceConfig

    with QueryService(db, ServiceConfig(workers=8, deadline=0.5)) as svc:
        responses = svc.run(["SELECT name? WHERE title? = 'Titanic'", ...])
        for r in responses:
            print(r.request_id, r.outcome, r.rung, r.sql)
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence, Union

from ..core.config import DEFAULT_CONFIG, TranslatorConfig
from ..core.context import TranslationContext
from ..core.resilience import LADDER, Budget, BudgetExceeded
from ..core.translator import SchemaFreeTranslator, Translation
from ..engine import Database
from ..errors import Diagnostic, ReproError
from ..obs import NULL_SPAN, NULL_TRACER, MetricsRegistry, record_translation
from .breaker import BreakerConfig, CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.base import Backend
from .retry import RetryPolicy

DEFAULT_DATABASE = "default"

#: degradation-step substrings that mean "a budgeted rung was abandoned"
#: (as opposed to rungs skipped by pinning or failing for non-budget
#: reasons) — the breaker's failure signal
_BUDGET_PRESSURE_MARKERS = ("abandoned:", "deadline passed")


class ServiceOverloaded(ReproError):
    """Admission control rejected the request (queue full)."""


class ServiceClosed(ReproError):
    """The service is closing (or closed) and admits no new work.

    Late submissions racing :meth:`QueryService.close` resolve to this
    typed error instead of leaking the executor's ``RuntimeError`` —
    the server's drain path relies on that being safe.
    """


@dataclass
class ServiceConfig:
    """Tuning knobs for one :class:`QueryService`."""

    #: worker threads translating concurrently
    workers: int = 4
    #: requests allowed to *wait* beyond the ones being worked on;
    #: submissions past ``workers + queue_limit`` in flight are shed
    queue_limit: int = 32
    #: default per-request deadline in seconds (None = no deadline)
    deadline: Optional[float] = None
    #: search caps applied to every request budget
    max_candidates: Optional[int] = None
    max_expansions: Optional[int] = None
    #: interpretations returned per request
    top_k: int = 1
    #: walk the degradation ladder instead of failing on budget exhaustion
    degrade: bool = True
    translator: TranslatorConfig = DEFAULT_CONFIG
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: test/instrumentation seam: called in the worker thread as each
    #: admitted request starts processing (e.g. to block workers and
    #: exercise admission control deterministically)
    request_hook: Optional[Callable[["ServiceRequest"], None]] = None
    #: database name -> path of a repro.artifacts file to attach the
    #: context from; a bad/mis-keyed artifact falls back to a fresh
    #: build (docs/ARTIFACTS.md), never failing service construction
    artifacts: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ServiceRequest:
    """One admitted unit of work."""

    request_id: int
    query: str
    database: str = DEFAULT_DATABASE
    top_k: Optional[int] = None
    deadline: Optional[float] = None
    #: ladder rung advised from outside (e.g. a supervisor's per-shard
    #: breaker); the weaker of this and the service breaker's pin wins
    start_rung: Optional[str] = None


@dataclass
class ServiceResponse:
    """Everything the service knows about one finished request."""

    request_id: int
    query: str
    database: str
    ok: bool
    translations: Optional[list[Translation]] = None
    rung: Optional[str] = None
    retries: int = 0
    shed: bool = False
    probe: bool = False
    breaker_state: Optional[str] = None
    error: Optional[ReproError] = None
    elapsed: float = 0.0

    @property
    def sql(self) -> Optional[str]:
        if self.translations:
            return self.translations[0].sql
        return None

    @property
    def degraded(self) -> bool:
        return bool(self.translations) and self.translations[0].is_degraded

    @property
    def cached(self) -> bool:
        """True when the answer came from the translation result cache."""
        return bool(self.translations) and self.translations[0].cached

    @property
    def outcome(self) -> str:
        """One-word summary: ok / degraded / shed / failed."""
        if self.shed:
            return "shed"
        if not self.ok:
            return "failed"
        return "degraded" if self.degraded else "ok"

    @property
    def diagnostic(self) -> Optional[Diagnostic]:
        if self.error is not None and self.error.diagnostic is not None:
            return self.error.diagnostic
        if self.translations and self.translations[0].diagnostic is not None:
            return self.translations[0].diagnostic
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "query": self.query,
            "database": self.database,
            "outcome": self.outcome,
            "rung": self.rung,
            "retries": self.retries,
            "breaker_state": self.breaker_state,
            "cached": self.cached,
            "sql": self.sql,
            "error": None if self.error is None else str(self.error),
            "elapsed": round(self.elapsed, 6),
        }


@dataclass
class ServiceStats:
    """Aggregate counters, updated under the service lock."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    retries: int = 0
    probes: int = 0
    rungs: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "retries": self.retries,
            "probes": self.probes,
            "rungs": dict(self.rungs),
        }


class _DatabaseState:
    """Shared per-database serving state: context + breaker."""

    def __init__(
        self,
        name: str,
        database: "Backend",
        config: ServiceConfig,
        clock: Callable[[], float],
        on_transition: Optional[Callable[[str, str, str, str], None]] = None,
        tracer=None,  # Optional[repro.obs.Tracer]
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name
        self.database = database
        self.artifact_path = config.artifacts.get(name)
        self.artifact_error = None
        if self.artifact_path is not None:
            from ..artifacts import load_or_build_context

            self.context, self.artifact_error = load_or_build_context(
                database,
                self.artifact_path,
                config.translator,
                tracer=tracer if tracer is not None else NULL_TRACER,
                metrics=metrics,
            )
        else:
            self.context = TranslationContext(database, config.translator)
        #: True when the context was attached from the artifact file
        #: rather than built — surfaced in snapshots and worker ready
        #: frames so the chaos harness can assert fleet-wide sharing
        self.artifact_loaded = (
            self.artifact_path is not None and self.artifact_error is None
        )
        self.breaker = CircuitBreaker(
            config.breaker, clock=clock, name=name, on_transition=on_transition
        )


class QueryService:
    """A thread-pooled, admission-controlled schema-free query service."""

    def __init__(
        self,
        databases: Union[Database, "Backend", Mapping[str, Any]],
        config: Optional[ServiceConfig] = None,
        faults=None,  # Optional[repro.testing.faults.FaultInjector]
        tracer=None,  # Optional[repro.obs.Tracer]
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        # reuse the fault injector's virtual clock and use its advance()
        # as the backoff sleeper, so injected delays count against
        # deadlines and retry schedules run without wall-clock sleeping
        self.clock: Callable[[], float] = (
            faults.clock if faults is not None else time.monotonic
        )
        self._sleep: Callable[[float], None] = (
            faults.advance if faults is not None else time.sleep
        )
        if not isinstance(databases, Mapping):
            databases = {DEFAULT_DATABASE: databases}
        if not databases:
            raise ValueError("QueryService needs at least one database")
        self._states: dict[str, _DatabaseState] = {
            name: _DatabaseState(
                name,
                db,
                self.config,
                self.clock,
                self._on_breaker_transition if metrics is not None else None,
                self.tracer,
                metrics,
            )
            for name, db in databases.items()
        }
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self.stats = ServiceStats()
        #: deterministic-per-request event trace:
        #: ("shed", id) / ("retry", id, attempt, delay) / ("probe", id)
        self.events: list[tuple] = []
        capacity = self.config.workers + self.config.queue_limit
        self._slots = threading.Semaphore(capacity)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        self._closed = False
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain in-flight work and stop the pool.

        Idempotent and safe to call concurrently — every caller (first
        or not) returns only once in-flight work has drained, and a
        submission racing the close resolves to a typed
        :class:`ServiceClosed` response instead of a raw executor
        ``RuntimeError``.
        """
        with self._close_lock:
            self._closed = True
        # outside the lock: shutdown(wait=True) is itself idempotent
        # and thread-safe, and concurrent closers should all block
        # until the drain finishes rather than serialise behind it
        self._pool.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def breaker(self, database: str = DEFAULT_DATABASE) -> CircuitBreaker:
        return self._states[database].breaker

    def context(self, database: str = DEFAULT_DATABASE) -> TranslationContext:
        return self._states[database].context

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable service state (stats + breakers + memo)."""
        with self._lock:
            stats = self.stats.as_dict()
        return {
            "config": {
                "workers": self.config.workers,
                "queue_limit": self.config.queue_limit,
                "deadline": self.config.deadline,
                "max_candidates": self.config.max_candidates,
                "max_expansions": self.config.max_expansions,
                "retries": self.config.retry.max_retries,
                "breaker_threshold": self.config.breaker.failure_threshold,
                "breaker_pinned_rung": self.config.breaker.pinned_rung,
            },
            "stats": stats,
            "breakers": {
                name: state.breaker.snapshot()
                for name, state in self._states.items()
            },
            "memo": {
                name: state.context.stats.as_dict()
                for name, state in self._states.items()
            },
            "artifacts": {
                name: {
                    "path": state.artifact_path,
                    "loaded": state.artifact_loaded,
                    "error": (
                        str(state.artifact_error)
                        if state.artifact_error is not None
                        else None
                    ),
                }
                for name, state in self._states.items()
                if state.artifact_path is not None
            },
            "backends": {
                name: {
                    "kind": getattr(state.database, "kind", "unknown"),
                    "health": state.database.health.snapshot(),
                    "breaker": state.database.breaker.snapshot(),
                }
                for name, state in self._states.items()
                if hasattr(state.database, "health")
                and hasattr(state.database, "breaker")
            },
        }

    def _event(self, *event: Any) -> None:
        with self._lock:
            self.events.append(tuple(event))

    #: numeric encoding for the breaker-state gauge
    _BREAKER_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}

    def _on_breaker_transition(
        self, name: str, before: str, to: str, reason: str
    ) -> None:
        """Breaker observer (called while the breaker lock is held)."""
        metrics = self.metrics
        if metrics is None:
            return
        metrics.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions, by database and edge",
        ).inc(1, **{"database": name, "from": before, "to": to})
        metrics.gauge(
            "repro_breaker_state",
            "Current breaker state (0=closed, 1=half-open, 2=open)",
        ).set(self._BREAKER_STATE_VALUES.get(to, -1), database=name)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: str,
        database: str = DEFAULT_DATABASE,
        top_k: Optional[int] = None,
        deadline: Optional[float] = None,
        start_rung: Optional[str] = None,
    ) -> "Future[ServiceResponse]":
        """Submit one query; never blocks.

        Returns a future resolving to a :class:`ServiceResponse`.  When
        admission control sheds the request the future is already
        resolved with ``shed=True`` and a :class:`ServiceOverloaded`
        error — load shedding is bounded-latency by construction.
        Submissions after (or racing) :meth:`close` resolve to a typed
        :class:`ServiceClosed` failure the same way.

        ``start_rung`` pins the request to a degradation-ladder rung
        decided *outside* this service (the multi-process supervisor's
        per-shard breaker); the weaker of it and this service's own
        breaker pin is what the translator sees.
        """
        if database not in self._states:
            raise KeyError(f"unknown database {database!r}")
        if start_rung is not None and start_rung not in LADDER:
            raise ValueError(
                f"unknown ladder rung {start_rung!r}; expected one of {LADDER}"
            )
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self.stats.submitted += 1
        request = ServiceRequest(
            request_id=request_id,
            query=query,
            database=database,
            top_k=top_k,
            deadline=self.config.deadline if deadline is None else deadline,
            start_rung=start_rung,
        )
        # one span per request, started at submission so queue wait and
        # admission-control outcomes land on the same trace; the worker
        # thread adopts it via tracer.use_span so translator spans nest
        span = self.tracer.start_span("service.request")
        if span.enabled:
            span.set(
                request_id=request_id,
                database=database,
                query=query[:200],
            )
            if request.deadline is not None:
                span.set(deadline=request.deadline)
        if self._closed:
            return self._refuse_closed(request, span)
        if not self._slots.acquire(blocking=False):
            return self._shed(request, span)
        span.event("admitted")
        admitted_at = self.clock()
        # the deadline clock starts at admission: queue wait counts
        budget = Budget(
            deadline=request.deadline,
            max_candidates=self.config.max_candidates,
            max_expansions=self.config.max_expansions,
            clock=self.clock,
        )
        try:
            return self._pool.submit(
                self._process, request, budget, span, admitted_at
            )
        except RuntimeError:
            # lost the race with a concurrent close(): the executor is
            # already shutting down.  Resolve typed, like a shed.
            self._slots.release()
            return self._refuse_closed(request, span)

    def run(
        self,
        queries: Sequence[str],
        database: str = DEFAULT_DATABASE,
        top_k: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> list[ServiceResponse]:
        """Submit a whole batch and gather responses in request order."""
        futures = [
            self.submit(query, database=database, top_k=top_k, deadline=deadline)
            for query in queries
        ]
        return [future.result() for future in futures]

    def translate_one(
        self,
        query: str,
        database: str = DEFAULT_DATABASE,
        top_k: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> ServiceResponse:
        """Synchronous single-query convenience wrapper."""
        return self.submit(
            query, database=database, top_k=top_k, deadline=deadline
        ).result()

    def serve_inline(
        self,
        query: str,
        database: str = DEFAULT_DATABASE,
        top_k: Optional[int] = None,
        deadline: Optional[float] = None,
        start_rung: Optional[str] = None,
    ) -> ServiceResponse:
        """Process one request synchronously in the *calling* thread.

        Semantically identical to ``submit(...).result()`` — admission
        accounting, deadline budget, breaker, retries and metrics all
        run — minus the pool handoff: no queue, no worker-thread
        context switch.  Built for callers that are themselves
        single-threaded request loops (the multi-process serving
        worker), where the two extra switches per request are pure
        latency.
        """
        if database not in self._states:
            raise KeyError(f"unknown database {database!r}")
        if start_rung is not None and start_rung not in LADDER:
            raise ValueError(
                f"unknown ladder rung {start_rung!r}; expected one of {LADDER}"
            )
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self.stats.submitted += 1
        request = ServiceRequest(
            request_id=request_id,
            query=query,
            database=database,
            top_k=top_k,
            deadline=self.config.deadline if deadline is None else deadline,
            start_rung=start_rung,
        )
        span = self.tracer.start_span("service.request")
        if span.enabled:
            span.set(
                request_id=request_id,
                database=database,
                query=query[:200],
                inline=True,
            )
            if request.deadline is not None:
                span.set(deadline=request.deadline)
        if self._closed:
            return self._refuse_closed(request, span).result()
        if not self._slots.acquire(blocking=False):
            return self._shed(request, span).result()
        span.event("admitted")
        budget = Budget(
            deadline=request.deadline,
            max_candidates=self.config.max_candidates,
            max_expansions=self.config.max_expansions,
            clock=self.clock,
        )
        # _process releases the slot and finishes the span
        return self._process(request, budget, span, self.clock())

    def _shed(
        self, request: ServiceRequest, span=NULL_SPAN
    ) -> "Future[ServiceResponse]":
        error = ServiceOverloaded(
            f"service overloaded: {self.config.workers} workers busy and "
            f"{self.config.queue_limit} requests already queued",
            diagnostic=Diagnostic(
                stage="admission",
                message="bounded queue full; request shed",
                detail={
                    "workers": self.config.workers,
                    "queue_limit": self.config.queue_limit,
                },
            ),
        )
        state = self._states[request.database]
        response = ServiceResponse(
            request_id=request.request_id,
            query=request.query,
            database=request.database,
            ok=False,
            shed=True,
            breaker_state=state.breaker.state,
            error=error,
        )
        with self._lock:
            self.stats.shed += 1
            self.events.append(("shed", request.request_id))
        span.event(
            "shed",
            workers=self.config.workers,
            queue_limit=self.config.queue_limit,
        )
        if span.enabled:
            span.set(outcome="shed", breaker_state=response.breaker_state)
        span.fail(error)
        span.finish()
        if self.metrics is not None:
            self.metrics.counter(
                "repro_service_requests_total",
                "Requests finished, by database and outcome",
            ).inc(1, database=request.database, outcome="shed")
        future: "Future[ServiceResponse]" = Future()
        future.set_result(response)
        return future

    def _refuse_closed(
        self, request: ServiceRequest, span=NULL_SPAN
    ) -> "Future[ServiceResponse]":
        error = ServiceClosed(
            "service closed: no new work admitted",
            diagnostic=Diagnostic(
                stage="admission",
                message="submission raced or followed close()",
            ),
        )
        response = ServiceResponse(
            request_id=request.request_id,
            query=request.query,
            database=request.database,
            ok=False,
            error=error,
        )
        with self._lock:
            self.stats.failed += 1
            self.events.append(("closed", request.request_id))
        span.event("closed")
        if span.enabled:
            span.set(outcome="failed")
        span.fail(error)
        span.finish()
        if self.metrics is not None:
            self.metrics.counter(
                "repro_service_requests_total",
                "Requests finished, by database and outcome",
            ).inc(1, database=request.database, outcome="closed")
        future: "Future[ServiceResponse]" = Future()
        future.set_result(response)
        return future

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _translator(self, state: _DatabaseState) -> SchemaFreeTranslator:
        """The calling worker thread's translator for one database.

        Translator scratch state (``last_*`` fields, active stats) is
        not thread-safe, so each worker owns private instances; they all
        share the database's lock-protected context, so memoization
        still spans the whole service.
        """
        cache = getattr(self._local, "translators", None)
        if cache is None:
            cache = {}
            self._local.translators = cache
        translator = cache.get(state.name)
        if translator is None:
            translator = SchemaFreeTranslator(
                state.database,
                self.config.translator,
                faults=self.faults,
                context=state.context,
                tracer=self.tracer,
            )
            cache[state.name] = translator
        return translator

    def _process(
        self,
        request: ServiceRequest,
        budget: Budget,
        span=NULL_SPAN,
        admitted_at: Optional[float] = None,
    ) -> ServiceResponse:
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_service_inflight",
                "Requests admitted and not yet finished",
            ).inc()
        try:
            # adopt the request span in this worker thread so every
            # translator span nests under it on the same trace
            with self.tracer.use_span(span):
                if admitted_at is not None:
                    wait = self.clock() - admitted_at
                    span.event("dequeued", queue_wait=round(wait, 6))
                    if self.metrics is not None:
                        self.metrics.histogram(
                            "repro_service_queue_wait_seconds",
                            "Seconds between admission and a worker "
                            "picking the request up",
                        ).observe(wait)
                if self.config.request_hook is not None:
                    self.config.request_hook(request)
                return self._process_inner(request, budget, span)
        finally:
            span.finish()
            if self.metrics is not None:
                self.metrics.gauge(
                    "repro_service_inflight",
                    "Requests admitted and not yet finished",
                ).dec()
            self._slots.release()

    def _process_inner(
        self, request: ServiceRequest, budget: Budget, span=NULL_SPAN
    ) -> ServiceResponse:
        state = self._states[request.database]
        start_rung, probe = state.breaker.admit()
        if probe:
            with self._lock:
                self.stats.probes += 1
                self.events.append(("probe", request.request_id))
            span.event("probe")
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_service_probes_total",
                    "Half-open breaker probes dispatched",
                ).inc(1, database=request.database)
        # A resilient backend advertises its own demotion (tripped
        # backend breaker, degraded statistics); the weaker of the two
        # pins wins so backend trouble shows up at admission, not buried
        # inside the translator.
        advice = getattr(state.database, "recommended_start_rung", None)
        if (
            advice in LADDER
            and LADDER.index(advice) > LADDER.index(start_rung)
        ):
            start_rung = advice
            span.event("backend-pinned", rung=advice)
        # ... as does a pin advised by the caller (the multi-process
        # supervisor's per-shard breaker, threaded through submit())
        if (
            request.start_rung is not None
            and LADDER.index(request.start_rung) > LADDER.index(start_rung)
        ):
            start_rung = request.start_rung
            span.event("caller-pinned", rung=request.start_rung)
        if span.enabled and start_rung != "full":
            span.set(pinned_rung=start_rung)
        translator = self._translator(state)
        started = self.clock()
        retries = 0
        while True:
            attempt = retries + 1
            try:
                translations = translator.translate(
                    request.query,
                    top_k=request.top_k or self.config.top_k,
                    budget=budget.slice(),
                    degrade=self.config.degrade,
                    start_rung=start_rung,
                )
            except BudgetExceeded as exc:
                # ran out even after degrading: breaker-visible failure
                state.breaker.record(False, probe)
                return self._finish(
                    request, state, started, retries, probe,
                    ok=False, error=exc, rung=start_rung, span=span,
                )
            except ReproError as exc:
                if (
                    self.config.retry.is_retryable(exc)
                    and retries < self.config.retry.max_retries
                    and not budget.time_exceeded()
                ):
                    delay = self.config.retry.backoff(
                        request.request_id, attempt
                    )
                    with self._lock:
                        self.stats.retries += 1
                        self.events.append(
                            ("retry", request.request_id, attempt, delay)
                        )
                    span.event(
                        "retry", attempt=attempt, delay=round(delay, 6)
                    )
                    if self.metrics is not None:
                        self.metrics.counter(
                            "repro_service_retries_total",
                            "Retry attempts after transient failures",
                        ).inc(1, database=request.database)
                    self._sleep(delay)
                    retries += 1
                    continue
                # non-budget failures say nothing about load: the
                # breaker only hears about budget pressure (below)
                return self._finish(
                    request, state, started, retries, probe,
                    ok=False, error=exc, rung=None, span=span,
                )
            pressure = self._budget_pressure(translations)
            state.breaker.record(not pressure, probe)
            rung = translations[0].rung if translations else start_rung
            return self._finish(
                request, state, started, retries, probe,
                ok=True, translations=translations, rung=rung, span=span,
            )

    @staticmethod
    def _budget_pressure(translations: list[Translation]) -> bool:
        """Did this result only survive by abandoning budgeted rungs?"""
        for translation in translations[:1]:
            for step in translation.degradation:
                if any(m in step for m in _BUDGET_PRESSURE_MARKERS):
                    return True
        return False

    def _finish(
        self,
        request: ServiceRequest,
        state: _DatabaseState,
        started: float,
        retries: int,
        probe: bool,
        ok: bool,
        translations: Optional[list[Translation]] = None,
        error: Optional[ReproError] = None,
        rung: Optional[str] = None,
        span=NULL_SPAN,
    ) -> ServiceResponse:
        if not ok and probe:
            # a probe that failed for non-budget reasons still has to
            # release the probe slot without closing the breaker; budget
            # failures were already recorded against it
            if error is not None and not isinstance(error, BudgetExceeded):
                state.breaker.abstain(probe)
        response = ServiceResponse(
            request_id=request.request_id,
            query=request.query,
            database=request.database,
            ok=ok,
            translations=translations,
            rung=rung,
            retries=retries,
            probe=probe,
            breaker_state=state.breaker.state,
            error=error,
            elapsed=self.clock() - started,
        )
        with self._lock:
            if ok:
                self.stats.completed += 1
                if rung is not None:
                    self.stats.rungs[rung] = self.stats.rungs.get(rung, 0) + 1
            else:
                self.stats.failed += 1
        if span.enabled:
            span.set(
                outcome=response.outcome,
                retries=retries,
                breaker_state=response.breaker_state,
                elapsed=round(response.elapsed, 6),
            )
            if rung is not None:
                span.set(rung=rung)
            if not ok and error is not None:
                span.fail(error)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_service_requests_total",
                "Requests finished, by database and outcome",
            ).inc(1, database=request.database, outcome=response.outcome)
            self.metrics.histogram(
                "repro_service_request_seconds",
                "Seconds from worker pickup to response, per request",
            ).observe(response.elapsed)
            if ok and translations and translations[0].stats is not None:
                record_translation(
                    self.metrics,
                    translations[0].stats,
                    outcome=response.outcome,
                    rung=rung or "full",
                )
        return response
