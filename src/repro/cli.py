"""Interactive Schema-free SQL shell and batch service front end.

Usage::

    python -m repro [--dataset movies|courses|courses-alt] [--top-k N]
    python -m repro --backend sqlite --execute "SELECT title? WHERE gross? > 100"
    python -m repro --batch queries.txt --workers 8 --deadline 0.5
    python -m repro explain "SELECT title? WHERE gross? > 100"
    python -m repro import mydb.sqlite

``--backend sqlite`` exports the dataset to an in-memory SQLite
database, reflects it back, and serves every query from SQLite;
``import`` points the shell at an existing SQLite file with no
hand-written schema (catalog and statistics are reflected — see
README "Backends").

Type Schema-free SQL (or plain SQL) at the prompt; the shell shows the
best translation and its answer.  Dot-commands:

    .tables              list relations
    .schema <relation>   show a relation's columns and keys
    .top <k>             show the k best translations for the next queries
    .explain <sf-sql>    show translations without executing
    .why <sf-sql>        explain the join network behind each translation
    .log <sql>           record a full-SQL query into the query log
    .views               list the views currently on the view graph
    .stats [on|off]      toggle per-query timing/cache statistics
    .help                this text
    .quit                exit

With ``--stats`` (or ``.stats on``) every query prints its translation
statistics: per-stage wall time, candidates and expansions charged, and
the shared context's memo hits/misses.

Observability (docs/OBSERVABILITY.md):

* ``explain "<sf-sql>"`` — translate one query with tracing on and
  render the span tree: per-stage durations, each relation tree's top
  mapper candidates with their σ scores, the degradation-ladder rungs
  attempted, and which rung produced the final SQL;
* ``--trace`` — render the same span tree after every shell/one-shot
  query;
* ``--trace-out FILE`` — append every finished span as one JSON object
  per line (works in shell, one-shot, and batch modes);
* ``--metrics FILE`` — write a metrics snapshot on exit: Prometheus
  text exposition when FILE ends in ``.prom``/``.txt``, JSON otherwise.

Batch mode (``--batch FILE``) reads one query per line (``#`` comments
and blank lines ignored) and routes the whole file through the
concurrent :class:`repro.service.QueryService`: ``--workers`` threads,
``--deadline`` seconds per request, ``--queue-limit`` admission bound.
Each request reports its outcome, degradation-ladder rung, retry count
and (on failure) the structured diagnostic; ``--service-stats FILE``
dumps the service counters as JSON.  Exit codes: 0 all ok, 6 when any
request was shed by admission control, otherwise the code of the first
failure (2 syntax / 3 translation / 4 engine / 5 internal); the full
table lives in ``repro.service``'s module docstring.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .core import SchemaFreeTranslator, TranslationError
from .datasets import (
    make_course_alt_database,
    make_course_database,
    make_movie_database,
)
from .engine import Database, EngineError
from .errors import ReproError
from .obs import (
    JsonlExporter,
    MetricsRegistry,
    RingBufferExporter,
    Tracer,
    record_translation,
    render_trace,
)
from .sqlkit import SqlSyntaxError

DATASETS = {
    "movies": make_movie_database,
    "courses": make_course_database,
    "courses-alt": make_course_alt_database,
}

#: One-shot (``--execute``) exit codes, one per failure class.
EXIT_OK = 0
EXIT_SYNTAX = 2
EXIT_TRANSLATION = 3
EXIT_ENGINE = 4
EXIT_INTERNAL = 5
#: batch mode: at least one request shed by admission control
EXIT_OVERLOADED = 6
#: the execution backend is unavailable or degraded (corrupted file,
#: locked database, retries exhausted) — repro.backends.errors
EXIT_BACKEND = 7
#: a serving worker process crashed or hung (repro.server.errors)
EXIT_WORKER = 8

#: translation result cache entries per database at the serving tiers
#: (shell, --batch, serve); 0 disables — docs/CACHING.md has the
#: consistency contract.  The library-level default stays 0 so direct
#: SchemaFreeTranslator users opt in explicitly.
DEFAULT_CACHE_SIZE = 256


def exit_code_for(error: Optional[BaseException]) -> int:
    """Map a failure to its one-shot exit code (syntax, translation,
    engine, backend, worker, and internal errors are distinguishable
    to scripts)."""
    from .backends.errors import BackendError
    from .server.errors import WorkerError

    if error is None:
        return EXIT_OK
    if isinstance(error, SqlSyntaxError):
        return EXIT_SYNTAX
    if isinstance(error, WorkerError):
        return EXIT_WORKER
    if isinstance(error, BackendError):
        return EXIT_BACKEND
    if isinstance(error, EngineError):
        return EXIT_ENGINE
    if isinstance(error, ReproError):
        return EXIT_TRANSLATION
    return EXIT_INTERNAL

class Shell:
    """A small REPL over one backend (or raw Database) and one translator."""

    def __init__(
        self,
        database,  # Database or any repro.backends Backend
        top_k: int = 1,
        show_stats: bool = False,
        tracer=None,  # Optional[repro.obs.Tracer]
        trace_ring: Optional[RingBufferExporter] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        context=None,  # Optional[repro.core.context.TranslationContext]
    ) -> None:
        import dataclasses

        from .core.config import DEFAULT_CONFIG

        self.database = database
        config = dataclasses.replace(
            DEFAULT_CONFIG, result_cache_size=max(0, cache_size)
        )
        self.translator = SchemaFreeTranslator(
            database, config, context=context, tracer=tracer
        )
        self.top_k = top_k
        self.show_stats = show_stats
        #: when set (--trace), each query's span tree is rendered after
        #: its results
        self.trace_ring = trace_ring
        self.metrics = metrics
        #: the last failure seen by ``_query``/``_why`` (drives one-shot
        #: exit codes; cleared at the start of every query)
        self.last_error: Optional[BaseException] = None

    def _report_error(self, exc: ReproError, out, prefix: str = "error") -> None:
        self.last_error = exc
        print(f"{prefix}: {exc}", file=out)
        if exc.diagnostic is not None:
            for line in exc.diagnostic.render().splitlines():
                print(f"  | {line}", file=out)

    def _report_internal(self, exc: BaseException, out, where: str) -> None:
        self.last_error = exc
        print(
            f"internal error in {where}: {type(exc).__name__}: {exc}",
            file=out,
        )
        print("  | this is a bug, not a problem with your query;", file=out)
        print("  | the shell keeps running.", file=out)

    # ------------------------------------------------------------------
    def run_command(self, line: str, out=None) -> bool:
        """Execute one input line; returns False when the shell should
        exit."""
        if out is None:
            out = sys.stdout
        line = line.strip()
        if not line:
            return True
        if line.startswith("."):
            return self._dot_command(line, out)
        self._query(line, out, execute=True)
        return True

    # ------------------------------------------------------------------
    def _dot_command(self, line: str, out) -> bool:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            print(__doc__, file=out)
        elif command == ".tables":
            for relation in self.database.catalog:
                print(
                    f"  {relation.name} ({len(relation)} columns, "
                    f"{self.database.count(relation.name)} rows)",
                    file=out,
                )
        elif command == ".schema":
            self._schema(argument, out)
        elif command == ".top":
            try:
                self.top_k = max(1, int(argument))
                print(f"showing top {self.top_k} translations", file=out)
            except ValueError:
                print("usage: .top <k>", file=out)
        elif command == ".explain":
            self._query(argument, out, execute=False)
        elif command == ".why":
            self._why(argument, out)
        elif command == ".log":
            try:
                views = self.translator.record_query_log(argument)
                print(f"mined {len(views)} view(s) from the query", file=out)
            except (SqlSyntaxError, EngineError) as exc:
                print(f"error: {exc}", file=out)
        elif command == ".stats":
            if argument in ("on", "off"):
                self.show_stats = argument == "on"
            elif argument:
                print("usage: .stats [on|off]", file=out)
                return True
            else:
                self.show_stats = not self.show_stats
            state = "on" if self.show_stats else "off"
            print(f"per-query statistics {state}", file=out)
        elif command == ".views":
            views = self.translator.view_graph.views
            if not views:
                print("  (no views)", file=out)
            for view in views:
                chain = " - ".join(view.relations)
                print(
                    f"  [{view.source}] {view.name}: {chain} "
                    f"(strength {view.strength:.1f})",
                    file=out,
                )
        else:
            print(f"unknown command {command!r}; try .help", file=out)
        return True

    def _observe(self, translations, out, failed: bool = False) -> None:
        """Per-query observability tail: fold the query into the metrics
        registry and render its span tree when --trace is on."""
        if self.metrics is not None:
            if failed:
                record_translation(
                    self.metrics,
                    self.translator.last_translation_stats,
                    outcome="failed",
                    rung="none",
                )
            elif translations and translations[0].stats is not None:
                first = translations[0]
                record_translation(
                    self.metrics,
                    first.stats,
                    outcome="degraded" if first.is_degraded else "ok",
                    rung=first.rung,
                )
        if self.trace_ring is not None:
            print(render_trace(self.trace_ring.last_trace()), file=out)

    def _why(self, text: str, out) -> None:
        from .core import describe_translation

        self.last_error = None
        try:
            translations = self.translator.translate(text, top_k=self.top_k)
        except ReproError as exc:
            self._report_error(exc, out)
            self._observe(None, out, failed=True)
            return
        except Exception as exc:  # keep the REPL alive on translator bugs
            self._report_internal(exc, out, ".why")
            return
        for rank, translation in enumerate(translations, 1):
            print(f"--- interpretation {rank} ---", file=out)
            print(describe_translation(translation), file=out)

    def _schema(self, name: str, out) -> None:
        if not name or not self.database.catalog.has_relation(name):
            print(f"unknown relation {name!r}", file=out)
            return
        relation = self.database.catalog.relation(name)
        print(f"  {relation.name}", file=out)
        for attribute in relation.attributes:
            marks = []
            if attribute.name in relation.primary_key:
                marks.append("PK")
            for fk in self.database.catalog.foreign_keys:
                if (
                    fk.source_relation.lower() == relation.key
                    and fk.source_attribute.lower() == attribute.key
                ):
                    marks.append(f"-> {fk.target_relation}")
            suffix = f"  [{', '.join(marks)}]" if marks else ""
            print(
                f"    {attribute.name}: {attribute.data_type}{suffix}",
                file=out,
            )

    def _query(self, text: str, out, execute: bool) -> None:
        if not text:
            return
        self.last_error = None
        try:
            translations = self.translator.translate(text, top_k=self.top_k)
        except ReproError as exc:
            self._report_error(exc, out)
            self._observe(None, out, failed=True)
            return
        except Exception as exc:  # keep the REPL alive on translator bugs
            self._report_internal(exc, out, "translation")
            return
        for rank, translation in enumerate(translations, 1):
            prefix = f"[{rank}] " if len(translations) > 1 else ""
            print(f"{prefix}w={translation.weight:.4f}  {translation.sql}", file=out)
            if translation.degradation:
                print(
                    f"{' ' * len(prefix)}[degraded: "
                    f"{'; '.join(translation.degradation)}]",
                    file=out,
                )
        if self.show_stats and translations and translations[0].stats:
            print(translations[0].stats.render(), file=out)
        self._observe(translations, out)
        if not execute or not translations:
            return
        try:
            result = self.database.execute(translations[0].query)
        except ReproError as exc:
            # EngineError (bad query) and BackendError (substrate down)
            # both get a typed, REPL-safe report
            self._report_error(exc, out, prefix="execution error")
            return
        except Exception as exc:  # keep the REPL alive on engine bugs
            self._report_internal(exc, out, "execution")
            return
        print("  ".join(result.columns), file=out)
        for row in result.rows[:40]:
            print("  ".join("NULL" if v is None else str(v) for v in row), file=out)
        if len(result.rows) > 40:
            print(f"... {len(result.rows) - 40} more rows", file=out)
        print(f"({len(result.rows)} row(s))", file=out)


def read_batch_file(path: str) -> list[str]:
    """Queries from a batch file: one per line, ``#`` comments ignored."""
    queries = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line and not line.startswith("#"):
                queries.append(line)
    return queries


def run_batch(
    database,  # Database or any repro.backends Backend
    queries: list[str],
    workers: int,
    deadline: Optional[float],
    queue_limit: int,
    top_k: int,
    stats_path: Optional[str] = None,
    out=None,
    tracer=None,  # Optional[repro.obs.Tracer]
    metrics: Optional[MetricsRegistry] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> int:
    """Route a query batch through the concurrent service.

    Prints one outcome line per request (rung used, retries, shed) plus
    the diagnostic block for failures, and returns the batch exit code.
    """
    import dataclasses

    from .core.config import DEFAULT_CONFIG
    from .service import QueryService, ServiceConfig

    if out is None:
        out = sys.stdout
    config = ServiceConfig(
        workers=max(1, workers),
        queue_limit=max(0, queue_limit),
        deadline=deadline,
        top_k=max(1, top_k),
        translator=dataclasses.replace(
            DEFAULT_CONFIG, result_cache_size=max(0, cache_size)
        ),
    )
    with QueryService(
        database, config, tracer=tracer, metrics=metrics
    ) as service:
        responses = service.run(queries)
        snapshot = service.snapshot()

    first_error: Optional[BaseException] = None
    any_shed = False
    for response in responses:
        marks = [f"rung={response.rung or '-'}"]
        if response.cached:
            marks.append("cached")
        if response.retries:
            marks.append(f"retries={response.retries}")
        if response.breaker_state and response.breaker_state != "closed":
            marks.append(f"breaker={response.breaker_state}")
        print(
            f"[{response.request_id}] {response.outcome:<8} "
            f"{' '.join(marks)}  {response.query}",
            file=out,
        )
        if response.ok:
            print(f"    -> {response.sql}", file=out)
            if response.degraded:
                steps = "; ".join(response.translations[0].degradation)
                print(f"    [degraded: {steps}]", file=out)
        else:
            any_shed = any_shed or response.shed
            if first_error is None and not response.shed:
                first_error = response.error
            print(f"    error: {response.error}", file=out)
            if response.diagnostic is not None:
                for line in response.diagnostic.render().splitlines():
                    print(f"    | {line}", file=out)
    stats = snapshot["stats"]
    print(
        f"batch: {stats['completed']} ok, {stats['failed']} failed, "
        f"{stats['shed']} shed, {stats['retries']} retries "
        f"({config.workers} workers)",
        file=out,
    )
    if stats_path:
        with open(stats_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, default=str)
        print(f"service stats written to {stats_path}", file=out)
    if any_shed:
        return EXIT_OVERLOADED
    return exit_code_for(first_error)


def run_batch_processes(
    database_spec,  # repro.server.DatabaseSpec
    shard: str,
    queries: list[str],
    processes: int,
    deadline: Optional[float],
    queue_limit: int,
    top_k: int,
    stats_path: Optional[str] = None,
    out=None,
    tracer=None,  # Optional[repro.obs.Tracer]
    metrics: Optional[MetricsRegistry] = None,
    chaos_hooks: bool = False,
    request_timeout: float = 30.0,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> int:
    """Route a query batch through the supervised process pool.

    The crash-isolated sibling of :func:`run_batch`: worker processes
    serve the queries, the supervisor restarts any that die, and a
    request failed by a crashed or hung worker exits with
    ``EXIT_WORKER`` (8) instead of poisoning the whole batch.
    """
    from .server import Supervisor, SupervisorConfig

    if out is None:
        out = sys.stdout
    config = SupervisorConfig(
        workers_per_shard=max(1, processes),
        queue_limit=max(0, queue_limit),
        deadline=deadline,
        top_k=max(1, top_k),
        request_timeout=request_timeout,
        cache_size=max(0, cache_size),
        chaos_hooks=chaos_hooks,
    )
    supervisor = Supervisor(
        {shard: database_spec}, config, tracer=tracer, metrics=metrics
    )
    with supervisor:
        responses = supervisor.run(queries, database=shard)
        snapshot = supervisor.drain()

    first_error: Optional[BaseException] = None
    any_shed = False
    for response in responses:
        marks = [f"rung={response.rung or '-'}"]
        if response.cached:
            marks.append("cached")
        if response.retries:
            marks.append(f"retries={response.retries}")
        if response.worker_pid is not None:
            marks.append(f"pid={response.worker_pid}")
        if (
            response.shard_breaker_state
            and response.shard_breaker_state != "closed"
        ):
            marks.append(f"shard-breaker={response.shard_breaker_state}")
        print(
            f"[{response.request_id}] {response.outcome:<8} "
            f"{' '.join(marks)}  {response.query}",
            file=out,
        )
        if response.ok:
            print(f"    -> {response.sql}", file=out)
        else:
            any_shed = any_shed or response.shed
            if first_error is None and not response.shed:
                first_error = response.error
            print(f"    error: {response.error}", file=out)
            if response.diagnostic is not None:
                for line in response.diagnostic.render().splitlines():
                    print(f"    | {line}", file=out)
    stats = snapshot["stats"]
    print(
        f"batch: {stats['completed']} ok, {stats['failed']} failed, "
        f"{stats['shed']} shed, {stats['crashed']} crashed, "
        f"{stats['timed_out']} timed out, {stats['restarts']} restarts "
        f"({config.workers_per_shard} worker processes)",
        file=out,
    )
    if stats_path:
        with open(stats_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, default=str)
        print(f"supervisor stats written to {stats_path}", file=out)
    if any_shed and first_error is None:
        return EXIT_OVERLOADED
    return exit_code_for(first_error)


def run_serve(argv: Optional[list[str]] = None, out=None) -> int:
    """The ``repro serve`` subcommand: the supervised HTTP front end.

    Shards one or more databases across worker processes and serves
    ``POST /query``, ``GET /healthz``, ``GET /readyz`` and
    ``GET /metrics`` until SIGTERM starts the graceful drain.
    """
    import asyncio

    from .server import DatabaseSpec, Supervisor, SupervisorConfig
    from .server.http import serve as http_serve

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve schema-free SQL over HTTP from supervised "
        "worker processes",
    )
    parser.add_argument(
        "--dataset",
        action="append",
        choices=sorted(DATASETS),
        metavar="NAME",
        help="host this synthetic dataset as a shard (repeatable; "
        "default: movies)",
    )
    parser.add_argument(
        "--load",
        action="append",
        metavar="NAME=DIR",
        help="host a saved database directory as shard NAME (repeatable)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--workers-per-shard",
        type=int,
        default=1,
        help="worker processes per database shard (default: 1)",
    )
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--top-k", type=int, default=1)
    parser.add_argument(
        "--cache-size",
        type=int,
        default=DEFAULT_CACHE_SIZE,
        metavar="N",
        help="translation result cache entries per worker database "
        f"(0 disables; default: {DEFAULT_CACHE_SIZE})",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="kill a worker whose request exceeds this many seconds",
    )
    parser.add_argument("--heartbeat-interval", type=float, default=1.0)
    parser.add_argument("--heartbeat-timeout", type=float, default=5.0)
    parser.add_argument("--max-restarts", type=int, default=5)
    parser.add_argument("--restart-window", type=float, default=60.0)
    parser.add_argument(
        "--artifact-dir",
        metavar="DIR",
        default=None,
        help="directory of shared translation-context artifacts; the "
        "supervisor builds (or finds) one per shard and every worker — "
        "including crash replacements — attaches it instead of "
        "rebuilding (docs/ARTIFACTS.md)",
    )
    # deterministic chaos directives for harnesses; not a user feature
    parser.add_argument(
        "--chaos-hooks", action="store_true", help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)
    if out is None:
        out = sys.stderr

    specs: dict[str, "DatabaseSpec"] = {}
    for name in args.dataset or []:
        specs[name] = DatabaseSpec(kind="dataset", target=name)
    for pair in args.load or []:
        name, sep, path = pair.partition("=")
        if not sep:
            print(f"error: --load expects NAME=DIR, got {pair!r}", file=out)
            return EXIT_INTERNAL
        specs[name] = DatabaseSpec(kind="saved", target=path)
    if not specs:
        specs["movies"] = DatabaseSpec(kind="dataset", target="movies")

    registry = MetricsRegistry()
    supervisor = Supervisor(
        specs,
        SupervisorConfig(
            workers_per_shard=max(1, args.workers_per_shard),
            queue_limit=max(0, args.queue_limit),
            deadline=args.deadline,
            top_k=max(1, args.top_k),
            cache_size=max(0, args.cache_size),
            request_timeout=args.request_timeout,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            max_restarts=args.max_restarts,
            restart_window=args.restart_window,
            chaos_hooks=args.chaos_hooks,
            artifact_dir=args.artifact_dir,
        ),
        metrics=registry,
    )
    supervisor.start()
    print(
        f"serving shards {sorted(specs)} on "
        f"http://{args.host}:{args.port} "
        f"({args.workers_per_shard} worker(s) per shard)",
        file=out,
    )
    try:
        asyncio.run(
            http_serve(supervisor, host=args.host, port=args.port)
        )
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.close()
    return EXIT_OK


def _load_database(dataset: str, load: Optional[str]) -> tuple[Database, str]:
    if load:
        from .engine.io import load_database

        return load_database(load), load
    return DATASETS[dataset](), dataset


def _as_sqlite(database: Database, label: str):
    """Materialise *database* into an in-memory SQLite file and return a
    reflected SqliteBackend over it (the ``--backend sqlite`` path)."""
    from .backends import SqliteBackend
    from .engine.io import export_to_sqlite

    return SqliteBackend(export_to_sqlite(database, ":memory:"), name=label)


def _shell_loop(shell: Shell, banner: str) -> int:
    """The interactive REPL shared by the default and import entrypoints."""
    print(banner)
    while True:
        try:
            line = input("sfsql> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            alive = shell.run_command(line)
        except Exception as exc:  # last-ditch guard: the REPL survives
            shell._report_internal(exc, sys.stdout, "the shell")
            continue
        if not alive:
            return 0


def write_metrics(registry: MetricsRegistry, path: str, out=None) -> None:
    """Dump the registry: Prometheus text for ``.prom``/``.txt`` paths,
    the JSON snapshot otherwise."""
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith((".prom", ".txt")):
            handle.write(registry.render_text())
        else:
            json.dump(registry.snapshot(), handle, indent=2)
    if out is not None:
        print(f"metrics written to {path}", file=out)


def run_explain(argv: Optional[list[str]] = None, out=None) -> int:
    """The ``repro explain`` subcommand: translate one query with
    tracing enabled and render the annotated span tree — per-stage
    durations, each relation tree's top mapper candidates with σ
    scores, the ladder rungs attempted, and the rung that produced the
    final SQL."""
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="Trace one schema-free query through the pipeline",
    )
    parser.add_argument("query", help="the Schema-free SQL query to explain")
    parser.add_argument(
        "--dataset",
        choices=sorted(DATASETS),
        default="movies",
        help="which synthetic database to load (default: movies)",
    )
    parser.add_argument(
        "--load",
        metavar="DIR",
        help="load a saved database instead of a built-in dataset",
    )
    parser.add_argument(
        "--top-k", type=int, default=1, help="interpretations to produce"
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="also append the spans to FILE as JSON lines",
    )
    args = parser.parse_args(argv)
    if out is None:
        out = sys.stdout

    database, _ = _load_database(args.dataset, args.load)
    ring = RingBufferExporter()
    exporters = [ring]
    jsonl = JsonlExporter(args.trace_out) if args.trace_out else None
    if jsonl is not None:
        exporters.append(jsonl)
    tracer = Tracer(exporters=exporters)
    translator = SchemaFreeTranslator(database, tracer=tracer)
    error: Optional[BaseException] = None
    translations = []
    try:
        translations = translator.translate(
            args.query, top_k=max(1, args.top_k)
        )
    except ReproError as exc:
        error = exc
        print(f"error: {exc}", file=out)
        if exc.diagnostic is not None:
            for line in exc.diagnostic.render().splitlines():
                print(f"  | {line}", file=out)
    finally:
        if jsonl is not None:
            jsonl.close()
    for rank, translation in enumerate(translations, 1):
        print(
            f"[{rank}] w={translation.weight:.4f}  rung={translation.rung}  "
            f"{translation.sql}",
            file=out,
        )
        if translation.degradation:
            print(
                f"    [degraded: {'; '.join(translation.degradation)}]",
                file=out,
            )
    print(file=out)
    print(render_trace(ring.spans()), file=out)
    return exit_code_for(error)


def run_import(argv: Optional[list[str]] = None, out=None) -> int:
    """The ``repro import`` subcommand: reflect an existing SQLite file.

    No hand-written schema: relations, attributes, types and FK edges
    come from ``PRAGMA`` metadata (repro.backends.sqlite), translation
    statistics from sampled SELECTs, and schema-free queries translate
    and execute against the file end-to-end.
    """
    import os

    parser = argparse.ArgumentParser(
        prog="repro import",
        description="Reflect a SQLite database and query it schema-free",
    )
    parser.add_argument("file", help="path to an existing SQLite database file")
    parser.add_argument(
        "--top-k", type=int, default=1, help="translations to show per query"
    )
    parser.add_argument(
        "--execute",
        metavar="SF_SQL",
        help="translate and run one query non-interactively, then exit",
    )
    parser.add_argument(
        "--schema",
        action="store_true",
        help="print the reflected catalog and exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-query translation statistics",
    )
    parser.add_argument(
        "--sample-limit",
        type=int,
        default=None,
        metavar="N",
        help="cap rows read per column for translation statistics "
        "(default: whole column)",
    )
    parser.add_argument(
        "--precompute-context",
        action="store_true",
        help="build and store a translation-context artifact at import "
        "time so the first query (in any process) starts warm",
    )
    parser.add_argument(
        "--artifact-dir",
        metavar="DIR",
        default=None,
        help="artifact store directory for --precompute-context "
        "(default: <file>.artifacts next to the database file)",
    )
    args = parser.parse_args(argv)
    if out is None:
        out = sys.stdout

    # sqlite3.connect() silently creates missing files, which would
    # reflect as an empty catalog — catch the mistake here instead.
    if not os.path.exists(args.file):
        print(f"error: no such file: {args.file}", file=out)
        return EXIT_ENGINE

    from .backends import SqliteBackend

    # A corrupted, locked, or non-SQLite file surfaces as a typed
    # BackendError with a structured diagnostic — never a raw sqlite3
    # traceback.
    try:
        backend = SqliteBackend(args.file, sample_limit=args.sample_limit)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        if exc.diagnostic is not None:
            for line in exc.diagnostic.render().splitlines():
                print(f"  | {line}", file=out)
        return exit_code_for(exc)
    catalog = backend.catalog
    print(
        f"imported {args.file}: {len(catalog)} relations, "
        f"{len(catalog.foreign_keys)} foreign keys",
        file=out,
    )
    context = None
    if args.precompute_context:
        import dataclasses as _dataclasses

        from .artifacts import ArtifactStore, ensure_artifact, load_context
        from .core.config import DEFAULT_CONFIG as _DEFAULT_CONFIG

        directory = args.artifact_dir or args.file + ".artifacts"
        # the shell's translator config (the cache-size delta is outside
        # the artifact key, so any repro process can share this file)
        shell_config = _dataclasses.replace(
            _DEFAULT_CONFIG, result_cache_size=DEFAULT_CACHE_SIZE
        )
        try:
            path = ensure_artifact(backend, ArtifactStore(directory))
            context = load_context(path, backend, shell_config)
        except ReproError as exc:
            # advisory: a failed precompute costs a cold first query,
            # never the import itself
            print(f"warning: context precompute failed: {exc}", file=out)
        else:
            print(f"context artifact ready: {path}", file=out)
    if args.schema:
        shell = Shell(backend)
        for relation in catalog:
            shell._schema(relation.name, out)
        return EXIT_OK

    shell = Shell(
        backend,
        top_k=max(1, args.top_k),
        show_stats=args.stats,
        context=context,
    )
    if args.execute is not None:
        shell.run_command(args.execute, out=out)
        return exit_code_for(shell.last_error)
    return _shell_loop(
        shell,
        f"Schema-free SQL shell — imported {args.file!r} "
        f"({len(catalog)} relations). Type .help for commands.",
    )


def run_artifacts(argv: Optional[list[str]] = None, out=None) -> int:
    """The ``repro artifacts`` subcommand: build / list / gc the
    persistent translation-context artifact store (docs/ARTIFACTS.md).
    """
    parser = argparse.ArgumentParser(
        prog="repro artifacts",
        description="Manage persistent translation-context artifacts",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    build = sub.add_parser(
        "build", help="build and publish one database's artifact"
    )
    source = build.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset", choices=sorted(DATASETS), default="movies"
    )
    source.add_argument(
        "--sqlite", metavar="FILE", help="a SQLite file to reflect"
    )
    source.add_argument(
        "--load", metavar="DIR", help="a saved database directory"
    )
    build.add_argument("--artifact-dir", metavar="DIR", required=True)
    build.add_argument(
        "--warm-workload",
        action="store_true",
        help="translate the dataset's bundled workload during the build "
        "so the artifact also carries similarity/network memos",
    )

    lister = sub.add_parser("list", help="list published artifacts")
    lister.add_argument("--artifact-dir", metavar="DIR", required=True)

    gc = sub.add_parser(
        "gc", help="LRU-evict artifacts beyond the disk budget"
    )
    gc.add_argument("--artifact-dir", metavar="DIR", required=True)
    gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte budget to enforce (default: the store's default)",
    )

    args = parser.parse_args(argv)
    if out is None:
        out = sys.stdout

    from .artifacts import ArtifactReader, ArtifactStore, ensure_artifact
    from .errors import ReproError as _ReproError

    store = ArtifactStore(args.artifact_dir)
    if args.verb == "build":
        if args.sqlite:
            from .backends import SqliteBackend

            backend = SqliteBackend(args.sqlite)
        elif args.load:
            from .engine.io import load_database

            backend = load_database(args.load)
        else:
            backend = DATASETS[args.dataset]()
        warmup: list[str] = []
        if args.warm_workload and not args.sqlite and not args.load:
            from .workloads import (
                COURSE_QUERIES,
                SOPHISTICATED_QUERIES,
                TEXTBOOK_QUERIES,
            )

            bundles = {
                "movies": TEXTBOOK_QUERIES + SOPHISTICATED_QUERIES,
                "courses": COURSE_QUERIES,
                "courses-alt": COURSE_QUERIES,
            }
            warmup = [
                q.sf_sql or q.gold_sql for q in bundles.get(args.dataset, [])
            ]
        try:
            path = ensure_artifact(backend, store, warmup=warmup)
        except _ReproError as exc:
            print(f"error: {exc}", file=out)
            return EXIT_INTERNAL
        print(path, file=out)
        return EXIT_OK

    if args.verb == "list":
        entries = store.list()
        if not entries:
            print("(no artifacts)", file=out)
            return EXIT_OK
        for entry in entries:
            try:
                reader = ArtifactReader(entry.path)
                detail = (
                    f"schema {reader.schema_fingerprint[:12]}… "
                    f"data_version {reader.data_version} "
                    f"samples {len(reader.header.get('sample_index', ()))}"
                )
            except _ReproError as exc:
                detail = f"UNREADABLE: {exc.args[0]}"
            print(
                f"{entry.key}  {entry.size} bytes  {detail}",
                file=out,
            )
        return EXIT_OK

    evicted = store.gc(args.max_bytes)
    kept = store.list()
    print(
        f"evicted {len(evicted)} artifact(s), kept {len(kept)} "
        f"({sum(e.size for e in kept)} bytes)",
        file=out,
    )
    return EXIT_OK


def main(argv: Optional[list[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return run_explain(argv[1:])
    if argv and argv[0] == "import":
        return run_import(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "artifacts":
        return run_artifacts(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="Schema-free SQL interactive shell"
    )
    parser.add_argument(
        "--dataset",
        choices=sorted(DATASETS),
        default="movies",
        help="which synthetic database to load (default: movies)",
    )
    parser.add_argument(
        "--top-k", type=int, default=1, help="translations to show per query"
    )
    parser.add_argument(
        "--load",
        metavar="DIR",
        help="load a database saved with repro.engine.io.save_database "
        "instead of a built-in dataset",
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
        help="execution backend: the in-process engine, or the dataset "
        "exported to an in-memory SQLite database and reflected back "
        "(default: memory)",
    )
    parser.add_argument(
        "--execute",
        metavar="SF_SQL",
        help="translate and run one query non-interactively, then exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-query translation statistics (stage timings, "
        "search counters, cache hits)",
    )
    parser.add_argument(
        "--batch",
        metavar="FILE",
        help="translate a file of queries (one per line) through the "
        "concurrent query service, then exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="service worker threads for --batch (default: 4)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds for --batch "
        "(default: none)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="admission-control queue bound for --batch; requests "
        "beyond workers + limit are shed (default: 32)",
    )
    parser.add_argument(
        "--service-stats",
        metavar="FILE",
        help="with --batch, write the service stats snapshot as JSON",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=DEFAULT_CACHE_SIZE,
        metavar="N",
        help="translation result cache entries per database "
        f"(0 disables; default: {DEFAULT_CACHE_SIZE}; see "
        "docs/CACHING.md for the consistency contract)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="with --batch, serve from N supervised worker *processes* "
        "instead of threads: crash-isolated, restarted on failure; a "
        "request lost to a crashed or hung worker exits 8",
    )
    # deterministic chaos directives for harnesses; not a user feature
    parser.add_argument(
        "--chaos-hooks", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="render each query's span tree after its results",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="append every finished span to FILE as JSON lines",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a metrics snapshot on exit (.prom/.txt: Prometheus "
        "text exposition; otherwise JSON)",
    )
    args = parser.parse_args(argv)

    database, dataset_label = _load_database(args.dataset, args.load)
    if args.backend == "sqlite":
        database = _as_sqlite(database, dataset_label)
        dataset_label = f"{dataset_label} (sqlite)"

    tracer = None
    ring: Optional[RingBufferExporter] = None
    jsonl: Optional[JsonlExporter] = None
    if args.trace or args.trace_out:
        exporters = []
        if args.trace:
            ring = RingBufferExporter()
            exporters.append(ring)
        if args.trace_out:
            jsonl = JsonlExporter(args.trace_out)
            exporters.append(jsonl)
        tracer = Tracer(exporters=exporters)
    registry = MetricsRegistry() if args.metrics else None

    try:
        if args.batch is not None and args.processes is not None:
            from .server import DatabaseSpec

            if args.backend == "sqlite":
                print(
                    "error: --processes rebuilds each worker's database "
                    "from its spec; use --dataset or --load, not "
                    "--backend sqlite",
                    file=sys.stderr,
                )
                return EXIT_INTERNAL
            if args.load:
                spec = DatabaseSpec(kind="saved", target=args.load)
                shard = args.load
            else:
                spec = DatabaseSpec(kind="dataset", target=args.dataset)
                shard = args.dataset
            return run_batch_processes(
                spec,
                shard,
                read_batch_file(args.batch),
                processes=args.processes,
                deadline=args.deadline,
                queue_limit=args.queue_limit,
                top_k=args.top_k,
                stats_path=args.service_stats,
                tracer=tracer,
                metrics=registry,
                chaos_hooks=args.chaos_hooks,
                cache_size=args.cache_size,
            )
        if args.batch is not None:
            return run_batch(
                database,
                read_batch_file(args.batch),
                workers=args.workers,
                deadline=args.deadline,
                queue_limit=args.queue_limit,
                top_k=args.top_k,
                stats_path=args.service_stats,
                tracer=tracer,
                metrics=registry,
                cache_size=args.cache_size,
            )

        shell = Shell(
            database,
            top_k=max(1, args.top_k),
            show_stats=args.stats,
            tracer=tracer,
            trace_ring=ring,
            metrics=registry,
            cache_size=args.cache_size,
        )

        if args.execute is not None:
            # one-shot mode: distinct nonzero exit codes per failure
            # class (2 syntax, 3 translation, 4 engine, 5 internal)
            shell.run_command(args.execute)
            return exit_code_for(shell.last_error)

        return _shell_loop(
            shell,
            f"Schema-free SQL shell — dataset {dataset_label!r} "
            f"({len(database.catalog)} relations). Type .help for commands.",
        )
    finally:
        if jsonl is not None:
            jsonl.close()
        if registry is not None:
            write_metrics(registry, args.metrics, out=sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
