"""Interactive Schema-free SQL shell.

Usage::

    python -m repro [--dataset movies|courses|courses-alt] [--top-k N]

Type Schema-free SQL (or plain SQL) at the prompt; the shell shows the
best translation and its answer.  Dot-commands:

    .tables              list relations
    .schema <relation>   show a relation's columns and keys
    .top <k>             show the k best translations for the next queries
    .explain <sf-sql>    show translations without executing
    .why <sf-sql>        explain the join network behind each translation
    .log <sql>           record a full-SQL query into the query log
    .views               list the views currently on the view graph
    .stats [on|off]      toggle per-query timing/cache statistics
    .help                this text
    .quit                exit

With ``--stats`` (or ``.stats on``) every query prints its translation
statistics: per-stage wall time, candidates and expansions charged, and
the shared context's memo hits/misses.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .core import SchemaFreeTranslator, TranslationError
from .datasets import (
    make_course_alt_database,
    make_course_database,
    make_movie_database,
)
from .engine import Database, EngineError
from .errors import ReproError
from .sqlkit import SqlSyntaxError

DATASETS = {
    "movies": make_movie_database,
    "courses": make_course_database,
    "courses-alt": make_course_alt_database,
}

#: One-shot (``--execute``) exit codes, one per failure class.
EXIT_OK = 0
EXIT_SYNTAX = 2
EXIT_TRANSLATION = 3
EXIT_ENGINE = 4
EXIT_INTERNAL = 5


def exit_code_for(error: Optional[BaseException]) -> int:
    """Map a failure to its one-shot exit code (syntax, translation,
    engine, and internal errors are distinguishable to scripts)."""
    if error is None:
        return EXIT_OK
    if isinstance(error, SqlSyntaxError):
        return EXIT_SYNTAX
    if isinstance(error, EngineError):
        return EXIT_ENGINE
    if isinstance(error, ReproError):
        return EXIT_TRANSLATION
    return EXIT_INTERNAL

class Shell:
    """A small REPL over one database and one translator."""

    def __init__(
        self, database: Database, top_k: int = 1, show_stats: bool = False
    ) -> None:
        self.database = database
        self.translator = SchemaFreeTranslator(database)
        self.top_k = top_k
        self.show_stats = show_stats
        #: the last failure seen by ``_query``/``_why`` (drives one-shot
        #: exit codes; cleared at the start of every query)
        self.last_error: Optional[BaseException] = None

    def _report_error(self, exc: ReproError, out, prefix: str = "error") -> None:
        self.last_error = exc
        print(f"{prefix}: {exc}", file=out)
        if exc.diagnostic is not None:
            for line in exc.diagnostic.render().splitlines():
                print(f"  | {line}", file=out)

    def _report_internal(self, exc: BaseException, out, where: str) -> None:
        self.last_error = exc
        print(
            f"internal error in {where}: {type(exc).__name__}: {exc}",
            file=out,
        )
        print("  | this is a bug, not a problem with your query;", file=out)
        print("  | the shell keeps running.", file=out)

    # ------------------------------------------------------------------
    def run_command(self, line: str, out=None) -> bool:
        """Execute one input line; returns False when the shell should
        exit."""
        if out is None:
            out = sys.stdout
        line = line.strip()
        if not line:
            return True
        if line.startswith("."):
            return self._dot_command(line, out)
        self._query(line, out, execute=True)
        return True

    # ------------------------------------------------------------------
    def _dot_command(self, line: str, out) -> bool:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            print(__doc__, file=out)
        elif command == ".tables":
            for relation in self.database.catalog:
                print(
                    f"  {relation.name} ({len(relation)} columns, "
                    f"{self.database.count(relation.name)} rows)",
                    file=out,
                )
        elif command == ".schema":
            self._schema(argument, out)
        elif command == ".top":
            try:
                self.top_k = max(1, int(argument))
                print(f"showing top {self.top_k} translations", file=out)
            except ValueError:
                print("usage: .top <k>", file=out)
        elif command == ".explain":
            self._query(argument, out, execute=False)
        elif command == ".why":
            self._why(argument, out)
        elif command == ".log":
            try:
                views = self.translator.record_query_log(argument)
                print(f"mined {len(views)} view(s) from the query", file=out)
            except (SqlSyntaxError, EngineError) as exc:
                print(f"error: {exc}", file=out)
        elif command == ".stats":
            if argument in ("on", "off"):
                self.show_stats = argument == "on"
            elif argument:
                print("usage: .stats [on|off]", file=out)
                return True
            else:
                self.show_stats = not self.show_stats
            state = "on" if self.show_stats else "off"
            print(f"per-query statistics {state}", file=out)
        elif command == ".views":
            views = self.translator.view_graph.views
            if not views:
                print("  (no views)", file=out)
            for view in views:
                chain = " - ".join(view.relations)
                print(
                    f"  [{view.source}] {view.name}: {chain} "
                    f"(strength {view.strength:.1f})",
                    file=out,
                )
        else:
            print(f"unknown command {command!r}; try .help", file=out)
        return True

    def _why(self, text: str, out) -> None:
        from .core import describe_translation

        self.last_error = None
        try:
            translations = self.translator.translate(text, top_k=self.top_k)
        except ReproError as exc:
            self._report_error(exc, out)
            return
        except Exception as exc:  # keep the REPL alive on translator bugs
            self._report_internal(exc, out, ".why")
            return
        for rank, translation in enumerate(translations, 1):
            print(f"--- interpretation {rank} ---", file=out)
            print(describe_translation(translation), file=out)

    def _schema(self, name: str, out) -> None:
        if not name or not self.database.catalog.has_relation(name):
            print(f"unknown relation {name!r}", file=out)
            return
        relation = self.database.catalog.relation(name)
        print(f"  {relation.name}", file=out)
        for attribute in relation.attributes:
            marks = []
            if attribute.name in relation.primary_key:
                marks.append("PK")
            for fk in self.database.catalog.foreign_keys:
                if (
                    fk.source_relation.lower() == relation.key
                    and fk.source_attribute.lower() == attribute.key
                ):
                    marks.append(f"-> {fk.target_relation}")
            suffix = f"  [{', '.join(marks)}]" if marks else ""
            print(
                f"    {attribute.name}: {attribute.data_type}{suffix}",
                file=out,
            )

    def _query(self, text: str, out, execute: bool) -> None:
        if not text:
            return
        self.last_error = None
        try:
            translations = self.translator.translate(text, top_k=self.top_k)
        except ReproError as exc:
            self._report_error(exc, out)
            return
        except Exception as exc:  # keep the REPL alive on translator bugs
            self._report_internal(exc, out, "translation")
            return
        for rank, translation in enumerate(translations, 1):
            prefix = f"[{rank}] " if len(translations) > 1 else ""
            print(f"{prefix}w={translation.weight:.4f}  {translation.sql}", file=out)
            if translation.degradation:
                print(
                    f"{' ' * len(prefix)}[degraded: "
                    f"{'; '.join(translation.degradation)}]",
                    file=out,
                )
        if self.show_stats and translations and translations[0].stats:
            print(translations[0].stats.render(), file=out)
        if not execute or not translations:
            return
        try:
            result = self.database.execute(translations[0].query)
        except EngineError as exc:
            self._report_error(exc, out, prefix="execution error")
            return
        except Exception as exc:  # keep the REPL alive on engine bugs
            self._report_internal(exc, out, "execution")
            return
        print("  ".join(result.columns), file=out)
        for row in result.rows[:40]:
            print("  ".join("NULL" if v is None else str(v) for v in row), file=out)
        if len(result.rows) > 40:
            print(f"... {len(result.rows) - 40} more rows", file=out)
        print(f"({len(result.rows)} row(s))", file=out)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Schema-free SQL interactive shell"
    )
    parser.add_argument(
        "--dataset",
        choices=sorted(DATASETS),
        default="movies",
        help="which synthetic database to load (default: movies)",
    )
    parser.add_argument(
        "--top-k", type=int, default=1, help="translations to show per query"
    )
    parser.add_argument(
        "--load",
        metavar="DIR",
        help="load a database saved with repro.engine.io.save_database "
        "instead of a built-in dataset",
    )
    parser.add_argument(
        "--execute",
        metavar="SF_SQL",
        help="translate and run one query non-interactively, then exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-query translation statistics (stage timings, "
        "search counters, cache hits)",
    )
    args = parser.parse_args(argv)

    if args.load:
        from .engine.io import load_database

        database = load_database(args.load)
        dataset_label = args.load
    else:
        database = DATASETS[args.dataset]()
        dataset_label = args.dataset
    shell = Shell(database, top_k=max(1, args.top_k), show_stats=args.stats)

    if args.execute is not None:
        # one-shot mode: distinct nonzero exit codes per failure class
        # (2 syntax, 3 translation, 4 engine, 5 internal)
        shell.run_command(args.execute)
        return exit_code_for(shell.last_error)

    print(
        f"Schema-free SQL shell — dataset {dataset_label!r} "
        f"({len(database.catalog)} relations). Type .help for commands."
    )
    while True:
        try:
            line = input("sfsql> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            alive = shell.run_command(line)
        except Exception as exc:  # last-ditch guard: the REPL survives
            shell._report_internal(exc, sys.stdout, "the shell")
            continue
        if not alive:
            return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
