"""A deterministic university "world": schema-independent facts.

The paper's Section 7.3 experiment runs the *same* Schema-free SQL
queries over two very different schemas of the same information — the
53-relation CourseRank-like schema and a developer's compact 21-relation
redesign.  To judge translations on both schemas by *result equivalence*,
both databases must describe the same facts.  This module generates those
facts once; the two schema modules load them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

DEPARTMENTS = [
    ("Computer Science", "CS"),
    ("Mathematics", "MATH"),
    ("Physics", "PHYS"),
    ("History", "HIST"),
    ("Economics", "ECON"),
    ("Biology", "BIO"),
]
TERMS = [
    ("Fall 2012", 2012, "fall"),
    ("Winter 2013", 2013, "winter"),
    ("Spring 2013", 2013, "spring"),
    ("Fall 2013", 2013, "fall"),
]
SKILLS = ["programming", "statistics", "writing", "modeling", "lab methods"]
CAREERS = ["Software Engineer", "Data Analyst", "Researcher", "Teacher"]
CLUBS = [
    ("Chess Club", "games"),
    ("Robotics Society", "engineering"),
    ("Debate Team", "speech"),
    ("Hiking Club", "outdoors"),
]
SCHOLARSHIPS = [
    ("Dean's Merit Award", 5000.0, "Alumni Fund"),
    ("STEM Excellence Grant", 8000.0, "Tech Foundation"),
    ("Community Leader Prize", 3000.0, "City Trust"),
]
GRADES = [("A", 4.0), ("B", 3.0), ("C", 2.0), ("D", 1.0), ("F", 0.0)]
_FIRST = [
    "Alice", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Hugo",
    "Ivy", "Jack", "Kira", "Liam", "Mona", "Nate", "Olga", "Paul",
]
_LAST = [
    "Stone", "Rivera", "Chen", "Okafor", "Novak", "Silva", "Kim",
    "Haddad", "Berg", "Costa", "Ito", "Weber", "Dubois", "Rossi",
]
_COURSE_TOPICS = [
    "Databases", "Algorithms", "Calculus", "Mechanics", "World History",
    "Microeconomics", "Genetics", "Operating Systems", "Linear Algebra",
    "Thermodynamics", "Macroeconomics", "Ecology", "Compilers",
    "Probability", "Quantum Physics", "Modern Europe", "Game Theory",
    "Cell Biology", "Machine Learning", "Number Theory",
]


@dataclass
class CourseWorld:
    """Plain-fact tables; ids are 1-based and stable across schemas."""

    departments: list = field(default_factory=list)   # (id, name, code)
    programs: list = field(default_factory=list)      # (id, name, level, dept_id, tuition)
    courses: list = field(default_factory=list)       # (id, title, code, units, level, dept_id)
    terms: list = field(default_factory=list)         # (id, name, year, season)
    instructors: list = field(default_factory=list)   # (id, name, rank, dept_id)
    students: list = field(default_factory=list)      # (id, name, admit_year, program_id)
    rooms: list = field(default_factory=list)         # (id, number, capacity, building_id)
    buildings: list = field(default_factory=list)     # (id, name, campus_id)
    campuses: list = field(default_factory=list)      # (id, name, city)
    sections: list = field(default_factory=list)      # (id, course_id, term_id, number, room_id, capacity)
    teaches: list = field(default_factory=list)       # (instructor_id, section_id)
    enrollments: list = field(default_factory=list)   # (student_id, section_id, status)
    completions: list = field(default_factory=list)   # (student_id, course_id, grade_idx, term_id)
    prerequisites: list = field(default_factory=list) # (course_id, prereq_id)
    publishers: list = field(default_factory=list)    # (id, name, city)
    textbooks: list = field(default_factory=list)     # (id, title, publisher_id, year, price)
    section_textbooks: list = field(default_factory=list)  # (section_id, textbook_id)
    comments: list = field(default_factory=list)      # (id, course_id, student_id, year, text)
    course_ratings: list = field(default_factory=list)  # (student_id, course_id, stars, year)
    clubs: list = field(default_factory=list)          # (id, name, category)
    student_clubs: list = field(default_factory=list)  # (student_id, club_id, join_year)
    club_advisors: list = field(default_factory=list)  # (club_id, instructor_id)
    scholarships: list = field(default_factory=list)   # (id, name, amount, sponsor_name)
    student_scholarships: list = field(default_factory=list)  # (student_id, scholarship_id, year)
    advisors: list = field(default_factory=list)       # (student_id, instructor_id)
    tas: list = field(default_factory=list)            # (section_id, student_id)
    skills: list = field(default_factory=list)         # (id, name)
    course_skills: list = field(default_factory=list)  # (course_id, skill_id)
    careers: list = field(default_factory=list)        # (id, title)
    skill_careers: list = field(default_factory=list)  # (skill_id, career_id)
    timeslots: list = field(default_factory=list)      # (id, day, start_hour, end_hour)
    section_schedules: list = field(default_factory=list)  # (section_id, timeslot_id)
    exams: list = field(default_factory=list)          # (id, section_id, kind, week)
    assignments: list = field(default_factory=list)    # (id, section_id, title, due_week, weight)


def make_course_world(scale: float = 1.0, seed: int = 2013) -> CourseWorld:
    rng = random.Random(seed)
    world = CourseWorld()

    world.campuses = [(1, "Main Campus", "Ann Arbor"), (2, "North Campus", "Ann Arbor")]
    for i in range(1, 7):
        world.buildings.append((i, f"Hall {chr(64 + i)}", 1 + i % 2))
    for i in range(1, 19):
        world.rooms.append((i, f"{100 + i}", 20 + 10 * (i % 5), 1 + i % 6))

    for i, (name, code) in enumerate(DEPARTMENTS, start=1):
        world.departments.append((i, name, code))
    levels = ["BS", "MS", "PhD"]
    program_id = 0
    for dept_id, (dept_name, _code) in enumerate(DEPARTMENTS, start=1):
        for level in levels[: 2 if dept_id % 2 else 3]:
            program_id += 1
            world.programs.append(
                (program_id, f"{level} in {dept_name}", level, dept_id,
                 9000.0 + 1500.0 * dept_id + (2000.0 if level != "BS" else 0.0))
            )

    n_course = max(len(_COURSE_TOPICS), int(20 * scale))
    for i in range(1, n_course + 1):
        topic = _COURSE_TOPICS[(i - 1) % len(_COURSE_TOPICS)]
        dept_id = 1 + (i - 1) % len(DEPARTMENTS)
        suffix = "" if i <= len(_COURSE_TOPICS) else f" {i}"
        world.courses.append(
            (i, f"{topic}{suffix}", f"{DEPARTMENTS[dept_id - 1][1]}{100 + i}",
             3 + i % 2, 100 * (1 + i % 4), dept_id)
        )
    for i, (name, year, season) in enumerate(TERMS, start=1):
        world.terms.append((i, name, year, season))

    n_instructor = max(12, int(12 * scale))
    ranks = ["assistant professor", "associate professor", "professor", "lecturer"]
    for i in range(1, n_instructor + 1):
        world.instructors.append(
            (i, f"Prof. {_FIRST[i % len(_FIRST)]} {_LAST[i % len(_LAST)]}",
             ranks[i % len(ranks)], 1 + i % len(DEPARTMENTS))
        )

    n_student = max(40, int(60 * scale))
    for i in range(1, n_student + 1):
        world.students.append(
            (i, f"{_FIRST[(i * 3) % len(_FIRST)]} {_LAST[(i * 7) % len(_LAST)]} {i}",
             2009 + i % 5, 1 + i % len(world.programs))
        )

    # sections: each course offered in 1-2 terms
    section_id = 0
    for course_id, *_ in world.courses:
        for term_id in rng.sample(range(1, len(TERMS) + 1), rng.randint(1, 2)):
            section_id += 1
            room_id = rng.randint(1, len(world.rooms))
            world.sections.append(
                (section_id, course_id, term_id, 1, room_id, 30 + 10 * (section_id % 4))
            )
            world.teaches.append((rng.randint(1, n_instructor), section_id))
            world.section_schedules.append(
                (section_id, 1 + section_id % 10)
            )
            if rng.random() < 0.8:
                world.exams.append(
                    (len(world.exams) + 1, section_id, rng.choice(["midterm", "final"]), rng.randint(5, 15))
                )
            world.assignments.append(
                (len(world.assignments) + 1, section_id, f"Problem Set {section_id}", rng.randint(2, 10), 0.1)
            )

    for i in range(1, 11):
        day = ["mon", "tue", "wed", "thu", "fri"][i % 5]
        world.timeslots.append((i, day, 8 + i % 8, 9 + i % 8))

    # enrollments + completions
    n_section = section_id
    for student_id, *_ in world.students:
        for section in rng.sample(range(1, n_section + 1), min(4, n_section)):
            world.enrollments.append((student_id, section, "enrolled"))
        for course in rng.sample(range(1, n_course + 1), 3):
            world.completions.append(
                (student_id, course, rng.randint(0, len(GRADES) - 1), rng.randint(1, len(TERMS)))
            )

    # prerequisites form a DAG: higher course ids depend on lower
    for course_id, *_ in world.courses:
        if course_id > 3 and rng.random() < 0.5:
            world.prerequisites.append((course_id, rng.randint(1, course_id - 1)))

    world.publishers = [
        (1, "Prentice Hall", "Boston"),
        (2, "Springer", "Berlin"),
        (3, "MIT Press", "Cambridge"),
    ]
    for i in range(1, 13):
        world.textbooks.append(
            (i, f"Introduction to {_COURSE_TOPICS[(i - 1) % len(_COURSE_TOPICS)]}",
             1 + i % 3, 1995 + i, 40.0 + 5.0 * i)
        )
        world.section_textbooks.append((1 + (i * 5) % n_section, i))

    for i in range(1, int(30 * scale) + 1):
        course = 1 + i % n_course
        student = 1 + (i * 3) % n_student
        world.comments.append(
            (i, course, student, 2012 + i % 2, f"Comment {i} on course {course}")
        )
        world.course_ratings.append((student, course, 1 + i % 5, 2012 + i % 2))

    for i, (name, category) in enumerate(CLUBS, start=1):
        world.clubs.append((i, name, category))
        world.club_advisors.append((i, 1 + i % n_instructor))
    for student_id, *_ in world.students:
        if student_id % 3 == 0:
            world.student_clubs.append(
                (student_id, 1 + student_id % len(CLUBS), 2010 + student_id % 4)
            )

    for i, (name, amount, sponsor) in enumerate(SCHOLARSHIPS, start=1):
        world.scholarships.append((i, name, amount, sponsor))
    for student_id, *_ in world.students:
        if student_id % 5 == 0:
            world.student_scholarships.append(
                (student_id, 1 + student_id % len(SCHOLARSHIPS), 2011 + student_id % 3)
            )

    for student_id, *_ in world.students:
        world.advisors.append((student_id, 1 + student_id % n_instructor))
    for section in range(1, n_section + 1, 4):
        world.tas.append((section, 1 + section % n_student))

    for i, name in enumerate(SKILLS, start=1):
        world.skills.append((i, name))
    for course_id, *_ in world.courses:
        world.course_skills.append((course_id, 1 + course_id % len(SKILLS)))
    for i, title in enumerate(CAREERS, start=1):
        world.careers.append((i, title))
    for i, _ in enumerate(SKILLS, start=1):
        world.skill_careers.append((i, 1 + i % len(CAREERS)))

    _plant_workload_facts(world)
    return world


def _plant_workload_facts(world: CourseWorld) -> None:
    """Deterministic facts the 48-query workload asks about, so every
    query has a non-trivial answer (mirrors the movie generator)."""
    # a 'Databases' (course 1) section in every term, with textbook 1,
    # a teacher, a TA and a few enrolled students
    for term_id in range(1, len(TERMS) + 1):
        section_id = len(world.sections) + 1
        world.sections.append((section_id, 1, term_id, 2, 1, 40))
        world.teaches.append((1 + term_id % len(world.instructors), section_id))
        world.section_textbooks.append((section_id, 1))
        world.tas.append((section_id, 7 + term_id))
        for student_id in (1, 2, 3, 11 + term_id):
            world.enrollments.append((student_id, section_id, "enrolled"))
        world.section_schedules.append((section_id, 1 + section_id % 10))
    # a 'Genetics' (course 7) section in Winter 2013 with textbook 7
    genetics_section = len(world.sections) + 1
    world.sections.append((genetics_section, 7, 2, 2, 3, 30))
    world.teaches.append((3, genetics_section))
    world.section_textbooks.append((genetics_section, 7))
    world.section_schedules.append((genetics_section, 3))
    # a 'BS in Mathematics' student (program 3 -> student 2) in a club
    world.student_clubs.append((2, 2, 2011))
    # a PhD student (student 9, 'PhD in History') with a scholarship
    world.student_scholarships.append((9, 2, 2012))
    # student 1 ('Dan Haddad 1') earned an A in 'Databases' in Fall 2013
    world.completions.append((1, 1, 0, 4))
