"""The alternative 21-relation course schema (paper §7.3).

The paper asked "a student with experience in database application
development" to design his own schema covering the same query intents;
he produced one with only 21 relations, "very different from the
CourseRank schema".  This module reproduces that setup: a denormalised
redesign of the same university world — sections, rooms and teaching
collapse into ``offering``; grades inline into ``enrollment``; lookup
names (department, publisher, sponsor, term) inline as text columns.

Because both schemas load the same :class:`CourseWorld`, a translation
over this schema is *correct* exactly when its result matches the gold
result computed on the 53-relation schema.
"""

from __future__ import annotations

from typing import Optional

from ..catalog import Catalog, DataType
from ..engine import Database
from .course_world import GRADES, CourseWorld, make_course_world

INTEGER = DataType.INTEGER
TEXT = DataType.TEXT
FLOAT = DataType.FLOAT


def make_course_alt_catalog() -> Catalog:
    """Build the compact 21-relation redesign."""
    c = Catalog("course-alt")

    c.create_relation("student", [("student_id", INTEGER), ("name", TEXT), ("admit_year", INTEGER), ("program_id", INTEGER)], ["student_id"])
    c.create_relation("instructor", [("instructor_id", INTEGER), ("name", TEXT), ("rank", TEXT), ("department_name", TEXT)], ["instructor_id"])
    c.create_relation("course", [("course_id", INTEGER), ("title", TEXT), ("code", TEXT), ("units", INTEGER), ("level", INTEGER), ("department_name", TEXT)], ["course_id"])
    c.create_relation(
        "offering",
        [
            ("offering_id", INTEGER), ("course_id", INTEGER),
            ("term_name", TEXT), ("year", INTEGER),
            ("instructor_id", INTEGER), ("room_number", TEXT),
            ("building_name", TEXT), ("capacity", INTEGER),
        ],
        ["offering_id"],
    )
    c.create_relation("enrollment", [("student_id", INTEGER), ("offering_id", INTEGER), ("status", TEXT)])
    c.create_relation("transcript", [("student_id", INTEGER), ("course_id", INTEGER), ("grade_letter", TEXT), ("points", FLOAT), ("term_name", TEXT)])
    c.create_relation("prerequisite", [("course_id", INTEGER), ("prereq_course_id", INTEGER)])
    c.create_relation("textbook", [("textbook_id", INTEGER), ("title", TEXT), ("publisher_name", TEXT), ("year", INTEGER), ("price", FLOAT)], ["textbook_id"])
    c.create_relation("offering_textbook", [("offering_id", INTEGER), ("textbook_id", INTEGER)])
    c.create_relation("comment", [("comment_id", INTEGER), ("course_id", INTEGER), ("student_id", INTEGER), ("year", INTEGER), ("text", TEXT)], ["comment_id"])
    c.create_relation("course_rating", [("student_id", INTEGER), ("course_id", INTEGER), ("stars", INTEGER), ("year", INTEGER)])
    c.create_relation("club", [("club_id", INTEGER), ("name", TEXT), ("category", TEXT)], ["club_id"])
    c.create_relation("student_club", [("student_id", INTEGER), ("club_id", INTEGER), ("join_year", INTEGER)])
    c.create_relation("scholarship", [("scholarship_id", INTEGER), ("name", TEXT), ("amount", FLOAT), ("sponsor_name", TEXT)], ["scholarship_id"])
    c.create_relation("student_scholarship", [("student_id", INTEGER), ("scholarship_id", INTEGER), ("year", INTEGER)])
    c.create_relation("advisor", [("student_id", INTEGER), ("instructor_id", INTEGER)])
    c.create_relation("ta", [("offering_id", INTEGER), ("student_id", INTEGER)])
    c.create_relation("skill", [("skill_id", INTEGER), ("name", TEXT)], ["skill_id"])
    c.create_relation("course_skill", [("course_id", INTEGER), ("skill_id", INTEGER)])
    c.create_relation("career", [("career_id", INTEGER), ("title", TEXT), ("skill_id", INTEGER)], ["career_id"])
    c.create_relation("program", [("program_id", INTEGER), ("name", TEXT), ("level", TEXT), ("department_name", TEXT), ("tuition", FLOAT)], ["program_id"])

    for source, attribute, target in [
        ("student", "program_id", "program"),
        ("offering", "course_id", "course"),
        ("offering", "instructor_id", "instructor"),
        ("enrollment", "student_id", "student"),
        ("enrollment", "offering_id", "offering"),
        ("transcript", "student_id", "student"),
        ("transcript", "course_id", "course"),
        ("prerequisite", "course_id", "course"),
        ("prerequisite", "prereq_course_id", "course"),
        ("offering_textbook", "offering_id", "offering"),
        ("offering_textbook", "textbook_id", "textbook"),
        ("comment", "course_id", "course"),
        ("comment", "student_id", "student"),
        ("course_rating", "student_id", "student"),
        ("course_rating", "course_id", "course"),
        ("student_club", "student_id", "student"),
        ("student_club", "club_id", "club"),
        ("student_scholarship", "student_id", "student"),
        ("student_scholarship", "scholarship_id", "scholarship"),
        ("advisor", "student_id", "student"),
        ("advisor", "instructor_id", "instructor"),
        ("ta", "offering_id", "offering"),
        ("ta", "student_id", "student"),
        ("course_skill", "course_id", "course"),
        ("course_skill", "skill_id", "skill"),
        ("career", "skill_id", "skill"),
    ]:
        c.add_foreign_key(source, attribute, target)
    return c


def make_course_alt_database(
    scale: float = 1.0,
    seed: int = 2013,
    world: Optional[CourseWorld] = None,
) -> Database:
    """Load the same course world into the 21-relation redesign."""
    world = world or make_course_world(scale=scale, seed=seed)
    db = Database(make_course_alt_catalog(), enforce_foreign_keys=False)

    dept_name = {i: name for i, name, _code in world.departments}
    term_info = {i: (name, year) for i, name, year, _season in world.terms}
    room_info = {i: (number, building) for i, number, _cap, building in world.rooms}
    building_name = {i: name for i, name, _campus in world.buildings}
    publisher_name = {i: name for i, name, _city in world.publishers}
    teacher_of = {section: instructor for instructor, section in world.teaches}

    db.insert_many(
        "program",
        [
            (i, name, level, dept_name[dept], tuition)
            for i, name, level, dept, tuition in world.programs
        ],
    )
    db.insert_many("student", world.students)
    db.insert_many(
        "instructor",
        [
            (i, name, rank, dept_name[dept])
            for i, name, rank, dept in world.instructors
        ],
    )
    db.insert_many(
        "course",
        [
            (i, title, code, units, level, dept_name[dept])
            for i, title, code, units, level, dept in world.courses
        ],
    )
    offerings = []
    for section_id, course_id, term_id, _number, room_id, capacity in world.sections:
        term, year = term_info[term_id]
        number, building = room_info[room_id]
        offerings.append(
            (
                section_id, course_id, term, year,
                teacher_of.get(section_id), number,
                building_name[building], capacity,
            )
        )
    db.insert_many("offering", offerings)
    db.insert_many("enrollment", world.enrollments)
    db.insert_many(
        "transcript",
        [
            (s, c, GRADES[g][0], GRADES[g][1], term_info[t][0])
            for s, c, g, t in world.completions
        ],
    )
    db.insert_many("prerequisite", world.prerequisites)
    db.insert_many(
        "textbook",
        [
            (i, title, publisher_name[p], year, price)
            for i, title, p, year, price in world.textbooks
        ],
    )
    db.insert_many("offering_textbook", world.section_textbooks)
    db.insert_many("comment", world.comments)
    db.insert_many("course_rating", world.course_ratings)
    db.insert_many("club", world.clubs)
    db.insert_many("student_club", world.student_clubs)
    db.insert_many(
        "scholarship",
        [(i, name, amount, sponsor) for i, name, amount, sponsor in world.scholarships],
    )
    db.insert_many("student_scholarship", world.student_scholarships)
    db.insert_many("advisor", world.advisors)
    db.insert_many("ta", world.tas)
    db.insert_many("skill", world.skills)
    db.insert_many("course_skill", world.course_skills)
    career_skill = {career: skill for skill, career in world.skill_careers}
    db.insert_many(
        "career",
        [(i, title, career_skill.get(i)) for i, title in world.careers],
    )
    return db
