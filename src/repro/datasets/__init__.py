"""Synthetic experimental databases mirroring the paper's published shapes."""

from .course_world import CourseWorld, make_course_world
from .courses import make_course_catalog, make_course_database
from .courses_alt import make_course_alt_catalog, make_course_alt_database
from .movies import make_movie_catalog, make_movie_database

__all__ = [
    "CourseWorld",
    "make_course_alt_catalog",
    "make_course_alt_database",
    "make_course_catalog",
    "make_course_database",
    "make_course_world",
    "make_movie_catalog",
    "make_movie_database",
]
