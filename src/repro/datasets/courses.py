"""The 53-relation CourseRank-like schema and its loader.

The paper's §7.3 uses the CourseRank database "comprising 53 relations".
CourseRank itself is not public, so this schema reproduces its shape: a
heavily normalised university catalog — campuses down to rooms, programs
down to sections, students with enrollments, grades, clubs, scholarships,
textbooks, skills and careers — totalling exactly 53 relations.

All contents come from a :class:`~repro.datasets.course_world.CourseWorld`
so that the alternative 21-relation schema (``courses_alt``) describes the
same facts and translations can be judged by result equivalence.
"""

from __future__ import annotations

from typing import Optional

from ..catalog import Catalog, DataType
from ..engine import Database
from .course_world import GRADES, CourseWorld, make_course_world

INTEGER = DataType.INTEGER
TEXT = DataType.TEXT
FLOAT = DataType.FLOAT
BOOLEAN = DataType.BOOLEAN


def make_course_catalog() -> Catalog:
    """Build the 53-relation normalised course schema."""
    c = Catalog("courserank-like")

    # -- places ---------------------------------------------------------
    c.create_relation("campus", [("campus_id", INTEGER), ("name", TEXT), ("city", TEXT)], ["campus_id"])
    c.create_relation("building", [("building_id", INTEGER), ("name", TEXT), ("campus_id", INTEGER)], ["building_id"])
    c.create_relation("room", [("room_id", INTEGER), ("number", TEXT), ("capacity", INTEGER), ("building_id", INTEGER)], ["room_id"])
    c.create_relation("lab", [("lab_id", INTEGER), ("name", TEXT), ("department_id", INTEGER), ("building_id", INTEGER)], ["lab_id"])

    # -- academic structure ----------------------------------------------
    c.create_relation("department", [("department_id", INTEGER), ("name", TEXT), ("code", TEXT)], ["department_id"])
    c.create_relation("degree", [("degree_id", INTEGER), ("name", TEXT), ("level", TEXT)], ["degree_id"])
    c.create_relation("program", [("program_id", INTEGER), ("name", TEXT), ("level", TEXT), ("department_id", INTEGER)], ["program_id"])
    c.create_relation("program_degree", [("program_id", INTEGER), ("degree_id", INTEGER)])
    c.create_relation("tuition", [("program_id", INTEGER), ("year", INTEGER), ("amount", FLOAT)])
    c.create_relation("course", [("course_id", INTEGER), ("title", TEXT), ("code", TEXT), ("units", INTEGER), ("level", INTEGER), ("department_id", INTEGER)], ["course_id"])
    c.create_relation("prerequisite", [("course_id", INTEGER), ("prereq_course_id", INTEGER)])
    c.create_relation("program_course", [("program_id", INTEGER), ("course_id", INTEGER), ("required", BOOLEAN)])
    c.create_relation("term", [("term_id", INTEGER), ("name", TEXT), ("year", INTEGER), ("season", TEXT)], ["term_id"])
    c.create_relation("section", [("section_id", INTEGER), ("course_id", INTEGER), ("term_id", INTEGER), ("section_number", INTEGER), ("room_id", INTEGER), ("capacity", INTEGER)], ["section_id"])
    c.create_relation("timeslot", [("timeslot_id", INTEGER), ("day", TEXT), ("start_hour", INTEGER), ("end_hour", INTEGER)], ["timeslot_id"])
    c.create_relation("section_schedule", [("section_id", INTEGER), ("timeslot_id", INTEGER)])

    # -- people -------------------------------------------------------------
    c.create_relation("instructor", [("instructor_id", INTEGER), ("name", TEXT), ("rank", TEXT), ("department_id", INTEGER)], ["instructor_id"])
    c.create_relation("teaches", [("instructor_id", INTEGER), ("section_id", INTEGER)])
    c.create_relation("office", [("instructor_id", INTEGER), ("room_id", INTEGER)])
    c.create_relation("research_group", [("group_id", INTEGER), ("name", TEXT), ("department_id", INTEGER), ("lead_instructor_id", INTEGER)], ["group_id"])
    c.create_relation("student", [("student_id", INTEGER), ("name", TEXT), ("admit_year", INTEGER), ("program_id", INTEGER)], ["student_id"])
    c.create_relation("advisor", [("student_id", INTEGER), ("instructor_id", INTEGER)])
    c.create_relation("major", [("student_id", INTEGER), ("department_id", INTEGER)])
    c.create_relation("minor", [("student_id", INTEGER), ("department_id", INTEGER)])

    # -- coursework ------------------------------------------------------------
    c.create_relation("enrollment", [("student_id", INTEGER), ("section_id", INTEGER), ("status", TEXT)])
    c.create_relation("waitlist", [("student_id", INTEGER), ("section_id", INTEGER), ("position", INTEGER)])
    c.create_relation("grade_scale", [("grade_id", INTEGER), ("letter", TEXT), ("points", FLOAT)], ["grade_id"])
    c.create_relation("completed", [("student_id", INTEGER), ("course_id", INTEGER), ("grade_id", INTEGER), ("term_id", INTEGER)])
    c.create_relation("ta", [("section_id", INTEGER), ("student_id", INTEGER)])
    c.create_relation("exam", [("exam_id", INTEGER), ("section_id", INTEGER), ("kind", TEXT), ("week", INTEGER)], ["exam_id"])
    c.create_relation("exam_room", [("exam_id", INTEGER), ("room_id", INTEGER)])
    c.create_relation("assignment", [("assignment_id", INTEGER), ("section_id", INTEGER), ("title", TEXT), ("due_week", INTEGER), ("weight", FLOAT)], ["assignment_id"])
    c.create_relation("submission", [("assignment_id", INTEGER), ("student_id", INTEGER), ("score", FLOAT), ("week", INTEGER)])

    # -- books -------------------------------------------------------------------
    c.create_relation("publisher", [("publisher_id", INTEGER), ("name", TEXT), ("city", TEXT)], ["publisher_id"])
    c.create_relation("textbook", [("textbook_id", INTEGER), ("title", TEXT), ("publisher_id", INTEGER), ("year", INTEGER), ("price", FLOAT)], ["textbook_id"])
    c.create_relation("author", [("author_id", INTEGER), ("name", TEXT)], ["author_id"])
    c.create_relation("textbook_author", [("textbook_id", INTEGER), ("author_id", INTEGER)])
    c.create_relation("section_textbook", [("section_id", INTEGER), ("textbook_id", INTEGER)])

    # -- community -----------------------------------------------------------------
    c.create_relation("comment", [("comment_id", INTEGER), ("course_id", INTEGER), ("student_id", INTEGER), ("year", INTEGER), ("text", TEXT)], ["comment_id"])
    c.create_relation("course_rating", [("student_id", INTEGER), ("course_id", INTEGER), ("stars", INTEGER), ("year", INTEGER)])
    c.create_relation("club", [("club_id", INTEGER), ("name", TEXT), ("category", TEXT)], ["club_id"])
    c.create_relation("student_club", [("student_id", INTEGER), ("club_id", INTEGER), ("join_year", INTEGER)])
    c.create_relation("club_advisor", [("club_id", INTEGER), ("instructor_id", INTEGER)])
    c.create_relation("sponsor", [("sponsor_id", INTEGER), ("name", TEXT)], ["sponsor_id"])
    c.create_relation("scholarship", [("scholarship_id", INTEGER), ("name", TEXT), ("amount", FLOAT)], ["scholarship_id"])
    c.create_relation("scholarship_sponsor", [("scholarship_id", INTEGER), ("sponsor_id", INTEGER)])
    c.create_relation("student_scholarship", [("student_id", INTEGER), ("scholarship_id", INTEGER), ("year", INTEGER)])

    # -- skills & careers --------------------------------------------------------------
    c.create_relation("skill", [("skill_id", INTEGER), ("name", TEXT)], ["skill_id"])
    c.create_relation("course_skill", [("course_id", INTEGER), ("skill_id", INTEGER)])
    c.create_relation("career", [("career_id", INTEGER), ("title", TEXT)], ["career_id"])
    c.create_relation("skill_career", [("skill_id", INTEGER), ("career_id", INTEGER)])
    c.create_relation("internship", [("internship_id", INTEGER), ("title", TEXT), ("career_id", INTEGER), ("sponsor_id", INTEGER)], ["internship_id"])
    c.create_relation("student_internship", [("student_id", INTEGER), ("internship_id", INTEGER), ("year", INTEGER)])

    for source, attribute, target in [
        ("building", "campus_id", "campus"),
        ("room", "building_id", "building"),
        ("lab", "department_id", "department"),
        ("lab", "building_id", "building"),
        ("program", "department_id", "department"),
        ("program_degree", "program_id", "program"),
        ("program_degree", "degree_id", "degree"),
        ("tuition", "program_id", "program"),
        ("course", "department_id", "department"),
        ("prerequisite", "course_id", "course"),
        ("prerequisite", "prereq_course_id", "course"),
        ("program_course", "program_id", "program"),
        ("program_course", "course_id", "course"),
        ("section", "course_id", "course"),
        ("section", "term_id", "term"),
        ("section", "room_id", "room"),
        ("section_schedule", "section_id", "section"),
        ("section_schedule", "timeslot_id", "timeslot"),
        ("instructor", "department_id", "department"),
        ("teaches", "instructor_id", "instructor"),
        ("teaches", "section_id", "section"),
        ("office", "instructor_id", "instructor"),
        ("office", "room_id", "room"),
        ("research_group", "department_id", "department"),
        ("research_group", "lead_instructor_id", "instructor"),
        ("student", "program_id", "program"),
        ("advisor", "student_id", "student"),
        ("advisor", "instructor_id", "instructor"),
        ("major", "student_id", "student"),
        ("major", "department_id", "department"),
        ("minor", "student_id", "student"),
        ("minor", "department_id", "department"),
        ("enrollment", "student_id", "student"),
        ("enrollment", "section_id", "section"),
        ("waitlist", "student_id", "student"),
        ("waitlist", "section_id", "section"),
        ("completed", "student_id", "student"),
        ("completed", "course_id", "course"),
        ("completed", "grade_id", "grade_scale"),
        ("completed", "term_id", "term"),
        ("ta", "section_id", "section"),
        ("ta", "student_id", "student"),
        ("exam", "section_id", "section"),
        ("exam_room", "exam_id", "exam"),
        ("exam_room", "room_id", "room"),
        ("assignment", "section_id", "section"),
        ("submission", "assignment_id", "assignment"),
        ("submission", "student_id", "student"),
        ("textbook", "publisher_id", "publisher"),
        ("textbook_author", "textbook_id", "textbook"),
        ("textbook_author", "author_id", "author"),
        ("section_textbook", "section_id", "section"),
        ("section_textbook", "textbook_id", "textbook"),
        ("comment", "course_id", "course"),
        ("comment", "student_id", "student"),
        ("course_rating", "student_id", "student"),
        ("course_rating", "course_id", "course"),
        ("student_club", "student_id", "student"),
        ("student_club", "club_id", "club"),
        ("club_advisor", "club_id", "club"),
        ("club_advisor", "instructor_id", "instructor"),
        ("scholarship_sponsor", "scholarship_id", "scholarship"),
        ("scholarship_sponsor", "sponsor_id", "sponsor"),
        ("student_scholarship", "student_id", "student"),
        ("student_scholarship", "scholarship_id", "scholarship"),
        ("course_skill", "course_id", "course"),
        ("course_skill", "skill_id", "skill"),
        ("skill_career", "skill_id", "skill"),
        ("skill_career", "career_id", "career"),
        ("internship", "career_id", "career"),
        ("internship", "sponsor_id", "sponsor"),
        ("student_internship", "student_id", "student"),
        ("student_internship", "internship_id", "internship"),
    ]:
        c.add_foreign_key(source, attribute, target)
    return c


def make_course_database(
    scale: float = 1.0,
    seed: int = 2013,
    world: Optional[CourseWorld] = None,
) -> Database:
    """Load a course world into the 53-relation schema."""
    world = world or make_course_world(scale=scale, seed=seed)
    db = Database(make_course_catalog(), enforce_foreign_keys=False)

    db.insert_many("campus", world.campuses)
    db.insert_many("building", world.buildings)
    db.insert_many("room", [(i, n, cap, b) for i, n, cap, b in world.rooms])
    db.insert_many("department", world.departments)
    db.insert_many(
        "program", [(i, name, level, dept) for i, name, level, dept, _ in world.programs]
    )
    db.insert_many(
        "tuition", [(i, 2013, tuition) for i, _, _, _, tuition in world.programs]
    )
    db.insert_many("course", world.courses)
    db.insert_many("term", world.terms)
    db.insert_many("section", world.sections)
    db.insert_many("timeslot", world.timeslots)
    db.insert_many("section_schedule", world.section_schedules)
    db.insert_many("instructor", world.instructors)
    db.insert_many("teaches", world.teaches)
    db.insert_many("student", world.students)
    db.insert_many("advisor", world.advisors)
    db.insert_many("enrollment", world.enrollments)
    db.insert_many(
        "grade_scale",
        [(i, letter, points) for i, (letter, points) in enumerate(GRADES, start=1)],
    )
    db.insert_many(
        "completed",
        [(s, c, g + 1, t) for s, c, g, t in world.completions],
    )
    db.insert_many("prerequisite", world.prerequisites)
    db.insert_many("ta", world.tas)
    db.insert_many("exam", world.exams)
    db.insert_many("assignment", world.assignments)
    db.insert_many("publisher", world.publishers)
    db.insert_many("textbook", world.textbooks)
    db.insert_many("section_textbook", world.section_textbooks)
    db.insert_many("comment", world.comments)
    db.insert_many("course_rating", world.course_ratings)
    db.insert_many("club", world.clubs)
    db.insert_many("student_club", world.student_clubs)
    db.insert_many("club_advisor", world.club_advisors)
    db.insert_many(
        "scholarship",
        [(i, name, amount) for i, name, amount, _sponsor in world.scholarships],
    )
    db.insert_many("student_scholarship", world.student_scholarships)
    db.insert_many("skill", world.skills)
    db.insert_many("course_skill", world.course_skills)
    db.insert_many("career", world.careers)
    db.insert_many("skill_career", world.skill_careers)

    # derived / auxiliary tables (sponsors, degrees, majors, offices, ...)
    sponsors = sorted({sponsor for *_, sponsor in world.scholarships})
    sponsor_id = {name: i for i, name in enumerate(sponsors, start=1)}
    db.insert_many("sponsor", [(i, name) for name, i in sponsor_id.items()])
    db.insert_many(
        "scholarship_sponsor",
        [(i, sponsor_id[sponsor]) for i, _, _, sponsor in world.scholarships],
    )
    levels = sorted({level for _, _, level, _, _ in world.programs})
    degree_id = {level: i for i, level in enumerate(levels, start=1)}
    db.insert_many(
        "degree",
        [(i, f"{level} degree", level) for level, i in degree_id.items()],
    )
    db.insert_many(
        "program_degree",
        [(i, degree_id[level]) for i, _, level, _, _ in world.programs],
    )
    program_dept = {i: dept for i, _, _, dept, _ in world.programs}
    db.insert_many(
        "major",
        [(s, program_dept[p]) for s, _, _, p in world.students],
    )
    db.insert_many(
        "minor",
        [
            (s, 1 + (s + 2) % 6)
            for s, *_ in world.students
            if s % 4 == 0
        ],
    )
    db.insert_many(
        "program_course",
        [
            (1 + c % len(world.programs), c, c % 2 == 0)
            for c, *_ in world.courses
        ],
    )
    db.insert_many(
        "office",
        [(i, 1 + i % len(world.rooms)) for i, *_ in world.instructors],
    )
    db.insert_many(
        "waitlist",
        [
            (s, 1 + s % len(world.sections), s % 5)
            for s, *_ in world.students
            if s % 7 == 0
        ],
    )
    db.insert_many(
        "exam_room",
        [(i, 1 + i % len(world.rooms)) for i, *_ in world.exams],
    )
    db.insert_many(
        "submission",
        [
            (a, 1 + (a * 3) % len(world.students), 60.0 + (a * 7) % 40, w + 1)
            for a, _, _, w, _ in world.assignments
        ],
    )
    db.insert_many(
        "author",
        [(i, f"Author {chr(64 + i)}") for i in range(1, 7)],
    )
    db.insert_many(
        "textbook_author",
        [(t, 1 + t % 6) for t, *_ in world.textbooks],
    )
    db.insert_many(
        "lab",
        [(i, f"Lab {i}", 1 + i % 6, 1 + i % 6) for i in range(1, 7)],
    )
    db.insert_many(
        "research_group",
        [
            (i, f"Group {i}", 1 + i % 6, 1 + i % len(world.instructors))
            for i in range(1, 7)
        ],
    )
    db.insert_many(
        "internship",
        [
            (i, f"{title} Internship", i, 1 + i % len(sponsors))
            for i, title in [(c, t) for c, t in world.careers]
        ],
    )
    db.insert_many(
        "student_internship",
        [
            (s, 1 + s % len(world.careers), 2012 + s % 2)
            for s, *_ in world.students
            if s % 6 == 0
        ],
    )
    return db
