"""Synthetic Yahoo!-Movie-style database: 43 relations, 71 FK-PK pairs.

The paper evaluates on the proprietary Yahoo!-Movie database and reports
only its shape: 43 relations and 71 FK-PK pairs (§7.2).  This module
reproduces that shape with a realistically normalised movie schema —
entity tables, role bridge tables, lookup tables, two self-referencing
foreign keys — plus a deterministic data generator that plants the
specific people, companies, and genres the Figure 14 workload queries
mention, so every workload query has a non-trivial answer.
"""

from __future__ import annotations

import random
from typing import Optional

from ..catalog import Catalog, DataType
from ..engine import Database

INTEGER = DataType.INTEGER
TEXT = DataType.TEXT
FLOAT = DataType.FLOAT

#: Values the Figure 14 queries rely on; the generator plants facts
#: around each of them.
NOTABLE_DIRECTORS = [
    "James Cameron",
    "Peter Jackson",
    "Fahdel Jaziri",
    "Steven Spielberg",
    "Woody Allen",
    "Stephen Gaghan",
]
NOTABLE_ACTORS = ["Tom Hanks", "Kate Winslet", "Leonardo DiCaprio"]
NOTABLE_COMPANIES = [
    "20th Century Fox",
    "Carthago Films",
    "Apollo Films",
    "LLC",
    "Paramount",
    "DreamWorks",
]
GENRES = [
    "Drama",
    "Comedy",
    "Action Adventure",
    "Thriller",
    "Romance",
    "Science Fiction",
    "Documentary",
    "Horror",
    "Animation",
    "Western",
]

_FIRST_NAMES = [
    "James", "Mary", "Robert", "Linda", "Michael", "Susan", "David",
    "Karen", "Richard", "Nancy", "Thomas", "Lisa", "Daniel", "Sandra",
    "Steven", "Ashley", "Kevin", "Emily", "Brian", "Michelle",
]
_LAST_NAMES = [
    "Smith", "Jones", "Miller", "Davis", "Garcia", "Wilson", "Moore",
    "Taylor", "Anderson", "Thomas", "Jackson", "White", "Harris",
    "Martin", "Thompson", "Young", "Walker", "Allen", "King", "Wright",
]
_TITLE_ADJECTIVES = [
    "Lost", "Dark", "Silent", "Golden", "Broken", "Hidden", "Eternal",
    "Savage", "Crimson", "Frozen", "Burning", "Fallen", "Endless",
]
_TITLE_NOUNS = [
    "Horizon", "Empire", "River", "Garden", "Voyage", "Kingdom",
    "Shadow", "Promise", "Harvest", "Signal", "Passage", "Reckoning",
]
_COMPANY_SUFFIXES = ["Pictures", "Studios", "Entertainment", "Media", "Films"]
_COUNTRIES = [
    ("United States", "Americas"), ("United Kingdom", "Europe"),
    ("France", "Europe"), ("Tunisia", "Africa"), ("New Zealand", "Oceania"),
    ("Japan", "Asia"), ("Germany", "Europe"), ("Canada", "Americas"),
    ("Italy", "Europe"), ("India", "Asia"),
]
_LANGUAGES = ["English", "French", "Arabic", "Japanese", "German", "Hindi"]
_KEYWORDS = [
    "heist", "space", "family", "war", "love", "betrayal", "survival",
    "road trip", "courtroom", "conspiracy", "coming of age", "revenge",
]
_RATINGS = [
    ("G", "General audiences"), ("PG", "Parental guidance"),
    ("PG-13", "Parents strongly cautioned"), ("R", "Restricted"),
    ("NC-17", "Adults only"),
]


def make_movie_catalog() -> Catalog:
    """Build the 43-relation, 71-FK movie schema."""
    c = Catalog("yahoo-movies-like")

    # -- lookup / entity tables ----------------------------------------
    c.create_relation("country", [("country_id", INTEGER), ("name", TEXT), ("region", TEXT)], ["country_id"])
    c.create_relation("language", [("language_id", INTEGER), ("name", TEXT)], ["language_id"])
    c.create_relation("rating", [("rating_id", INTEGER), ("code", TEXT), ("description", TEXT)], ["rating_id"])
    c.create_relation("genre", [("genre_id", INTEGER), ("name", TEXT), ("parent_genre_id", INTEGER)], ["genre_id"])
    c.create_relation("organization", [("organization_id", INTEGER), ("name", TEXT), ("country_id", INTEGER)], ["organization_id"])
    c.create_relation("award", [("award_id", INTEGER), ("name", TEXT), ("organization_id", INTEGER)], ["award_id"])
    c.create_relation("festival", [("festival_id", INTEGER), ("name", TEXT), ("country_id", INTEGER), ("founded_year", INTEGER), ("organization_id", INTEGER)], ["festival_id"])
    c.create_relation("company", [("company_id", INTEGER), ("name", TEXT), ("founded_year", INTEGER)], ["company_id"])
    c.create_relation("studio", [("studio_id", INTEGER), ("name", TEXT), ("company_id", INTEGER)], ["studio_id"])
    c.create_relation("person", [("person_id", INTEGER), ("name", TEXT), ("gender", TEXT), ("birth_year", INTEGER)], ["person_id"])
    c.create_relation("movie", [("movie_id", INTEGER), ("title", TEXT), ("release_year", INTEGER), ("runtime", INTEGER), ("budget", FLOAT), ("gross", FLOAT), ("rating_id", INTEGER), ("language_id", INTEGER), ("country_id", INTEGER), ("studio_id", INTEGER), ("sequel_of", INTEGER)], ["movie_id"])
    c.create_relation("series", [("series_id", INTEGER), ("name", TEXT)], ["series_id"])
    c.create_relation("keyword", [("keyword_id", INTEGER), ("word", TEXT)], ["keyword_id"])
    c.create_relation("publication", [("publication_id", INTEGER), ("name", TEXT), ("country_id", INTEGER)], ["publication_id"])
    c.create_relation("critic", [("critic_id", INTEGER), ("name", TEXT), ("publication_id", INTEGER), ("country_id", INTEGER)], ["critic_id"])
    c.create_relation("users", [("user_id", INTEGER), ("username", TEXT), ("join_year", INTEGER), ("country_id", INTEGER), ("favorite_genre_id", INTEGER), ("favorite_movie_id", INTEGER)], ["user_id"])
    c.create_relation("location", [("location_id", INTEGER), ("name", TEXT), ("country_id", INTEGER)], ["location_id"])
    c.create_relation("soundtrack", [("soundtrack_id", INTEGER), ("movie_id", INTEGER), ("title", TEXT), ("composer_id", INTEGER)], ["soundtrack_id"])
    c.create_relation("trailer", [("trailer_id", INTEGER), ("movie_id", INTEGER), ("duration", INTEGER), ("language_id", INTEGER), ("company_id", INTEGER)], ["trailer_id"])
    c.create_relation("quote", [("quote_id", INTEGER), ("movie_id", INTEGER), ("person_id", INTEGER), ("line", TEXT)], ["quote_id"])
    c.create_relation("alias", [("alias_id", INTEGER), ("person_id", INTEGER), ("alias_name", TEXT)], ["alias_id"])
    c.create_relation("tagline", [("tagline_id", INTEGER), ("movie_id", INTEGER), ("language_id", INTEGER), ("text", TEXT)], ["tagline_id"])

    # -- role / bridge tables ------------------------------------------
    c.create_relation("actor", [("person_id", INTEGER), ("movie_id", INTEGER), ("character", TEXT), ("billing", INTEGER)])
    c.create_relation("director", [("person_id", INTEGER), ("movie_id", INTEGER)])
    c.create_relation("writer", [("person_id", INTEGER), ("movie_id", INTEGER)])
    c.create_relation("producer", [("person_id", INTEGER), ("movie_id", INTEGER)])
    c.create_relation("cinematographer", [("person_id", INTEGER), ("movie_id", INTEGER)])
    c.create_relation("editor", [("person_id", INTEGER), ("movie_id", INTEGER)])
    c.create_relation("movie_producer", [("movie_id", INTEGER), ("company_id", INTEGER)])
    c.create_relation("movie_distributor", [("movie_id", INTEGER), ("company_id", INTEGER), ("year", INTEGER)])
    c.create_relation("movie_financer", [("movie_id", INTEGER), ("company_id", INTEGER)])
    c.create_relation("movie_genre", [("movie_id", INTEGER), ("genre_id", INTEGER)])
    c.create_relation("movie_keyword", [("movie_id", INTEGER), ("keyword_id", INTEGER)])
    c.create_relation("movie_language", [("movie_id", INTEGER), ("language_id", INTEGER)])
    c.create_relation("movie_country", [("movie_id", INTEGER), ("country_id", INTEGER)])
    c.create_relation("movie_series", [("movie_id", INTEGER), ("series_id", INTEGER), ("sequence_number", INTEGER)])
    c.create_relation("movie_award", [("movie_id", INTEGER), ("award_id", INTEGER), ("year", INTEGER), ("won", DataType.BOOLEAN), ("festival_id", INTEGER)])
    c.create_relation("person_award", [("person_id", INTEGER), ("award_id", INTEGER), ("year", INTEGER), ("won", DataType.BOOLEAN)])
    c.create_relation("festival_entry", [("movie_id", INTEGER), ("festival_id", INTEGER), ("year", INTEGER)])
    c.create_relation("review", [("review_id", INTEGER), ("movie_id", INTEGER), ("critic_id", INTEGER), ("score", FLOAT), ("year", INTEGER)], ["review_id"])
    c.create_relation("user_rating", [("user_id", INTEGER), ("movie_id", INTEGER), ("stars", INTEGER), ("rated_year", INTEGER)])
    c.create_relation("watchlist", [("user_id", INTEGER), ("movie_id", INTEGER), ("added_year", INTEGER)])
    c.create_relation("movie_location", [("movie_id", INTEGER), ("location_id", INTEGER)])

    # -- the 71 FK-PK pairs ----------------------------------------------
    fks = [
        ("movie", "rating_id", "rating"),
        ("movie", "language_id", "language"),
        ("movie", "country_id", "country"),
        ("movie", "studio_id", "studio"),
        ("movie", "sequel_of", "movie"),
        ("genre", "parent_genre_id", "genre"),
        ("award", "organization_id", "organization"),
        ("organization", "country_id", "country"),
        ("festival", "country_id", "country"),
        ("festival", "organization_id", "organization"),
        ("studio", "company_id", "company"),
        ("users", "country_id", "country"),
        ("users", "favorite_genre_id", "genre"),
        ("critic", "publication_id", "publication"),
        ("critic", "country_id", "country"),
        ("publication", "country_id", "country"),
        ("soundtrack", "movie_id", "movie"),
        ("soundtrack", "composer_id", "person"),
        ("trailer", "movie_id", "movie"),
        ("trailer", "language_id", "language"),
        ("trailer", "company_id", "company"),
        ("tagline", "movie_id", "movie"),
        ("tagline", "language_id", "language"),
        ("users", "favorite_movie_id", "movie"),
        ("quote", "movie_id", "movie"),
        ("quote", "person_id", "person"),
        ("alias", "person_id", "person"),
        ("location", "country_id", "country"),
        ("actor", "person_id", "person"),
        ("actor", "movie_id", "movie"),
        ("director", "person_id", "person"),
        ("director", "movie_id", "movie"),
        ("writer", "person_id", "person"),
        ("writer", "movie_id", "movie"),
        ("producer", "person_id", "person"),
        ("producer", "movie_id", "movie"),
        ("cinematographer", "person_id", "person"),
        ("cinematographer", "movie_id", "movie"),
        ("editor", "person_id", "person"),
        ("editor", "movie_id", "movie"),
        ("movie_producer", "movie_id", "movie"),
        ("movie_producer", "company_id", "company"),
        ("movie_distributor", "movie_id", "movie"),
        ("movie_distributor", "company_id", "company"),
        ("movie_financer", "movie_id", "movie"),
        ("movie_financer", "company_id", "company"),
        ("movie_genre", "movie_id", "movie"),
        ("movie_genre", "genre_id", "genre"),
        ("movie_keyword", "movie_id", "movie"),
        ("movie_keyword", "keyword_id", "keyword"),
        ("movie_language", "movie_id", "movie"),
        ("movie_language", "language_id", "language"),
        ("movie_country", "movie_id", "movie"),
        ("movie_country", "country_id", "country"),
        ("movie_series", "movie_id", "movie"),
        ("movie_series", "series_id", "series"),
        ("movie_award", "movie_id", "movie"),
        ("movie_award", "award_id", "award"),
        ("movie_award", "festival_id", "festival"),
        ("person_award", "person_id", "person"),
        ("person_award", "award_id", "award"),
        ("festival_entry", "movie_id", "movie"),
        ("festival_entry", "festival_id", "festival"),
        ("review", "movie_id", "movie"),
        ("review", "critic_id", "critic"),
        ("user_rating", "user_id", "users"),
        ("user_rating", "movie_id", "movie"),
        ("watchlist", "user_id", "users"),
        ("watchlist", "movie_id", "movie"),
        ("movie_location", "movie_id", "movie"),
        ("movie_location", "location_id", "location"),
    ]
    for source, attribute, target in fks:
        c.add_foreign_key(source, attribute, target)
    return c


def make_movie_database(
    scale: float = 1.0, seed: int = 2014, catalog: Optional[Catalog] = None
) -> Database:
    """Populate the movie schema deterministically.

    ``scale`` multiplies the base table sizes (scale 1.0 is comfortable
    for translation experiments; the engine's similarity checks sample
    columns, so larger scales mainly stress execution).
    """
    rng = random.Random(seed)
    db = Database(catalog or make_movie_catalog(), enforce_foreign_keys=False)

    n_person = max(len(NOTABLE_DIRECTORS) + len(NOTABLE_ACTORS), int(120 * scale))
    n_movie = max(30, int(80 * scale))
    n_company = max(len(NOTABLE_COMPANIES), int(20 * scale))
    n_user = max(10, int(40 * scale))

    # -- lookups ----------------------------------------------------------
    for i, (name, region) in enumerate(_COUNTRIES, start=1):
        db.insert("country", [i, name, region])
    for i, name in enumerate(_LANGUAGES, start=1):
        db.insert("language", [i, name])
    for i, (code, description) in enumerate(_RATINGS, start=1):
        db.insert("rating", [i, code, description])
    for i, name in enumerate(GENRES, start=1):
        parent = 1 if name == "Action Adventure" else None
        db.insert("genre", [i, name, parent])
    for i, word in enumerate(_KEYWORDS, start=1):
        db.insert("keyword", [i, word])

    organizations = ["Academy of Motion Pictures", "Golden Globe Association", "Screen Guild"]
    for i, name in enumerate(organizations, start=1):
        db.insert("organization", [i, name, rng.randint(1, len(_COUNTRIES))])
    awards = ["Best Picture", "Best Director", "Best Actor", "Best Screenplay", "Best Score"]
    for i, name in enumerate(awards, start=1):
        db.insert("award", [i, name, 1 + i % len(organizations)])
    festivals = ["Cannes", "Venice", "Sundance", "Berlinale"]
    for i, name in enumerate(festivals, start=1):
        db.insert(
            "festival",
            [i, name, rng.randint(1, len(_COUNTRIES)), 1930 + 10 * i, 1 + i % len(organizations)],
        )

    # -- companies / studios ------------------------------------------------
    for i in range(1, n_company + 1):
        if i <= len(NOTABLE_COMPANIES):
            name = NOTABLE_COMPANIES[i - 1]
        else:
            name = (
                f"{rng.choice(_TITLE_ADJECTIVES)} "
                f"{rng.choice(_COMPANY_SUFFIXES)} {i}"
            )
        db.insert("company", [i, name, rng.randint(1910, 1990)])
    n_studio = max(5, n_company // 2)
    for i in range(1, n_studio + 1):
        db.insert("studio", [i, f"Stage {i}", rng.randint(1, n_company)])

    # -- people -------------------------------------------------------------
    notable_people = NOTABLE_DIRECTORS + NOTABLE_ACTORS
    for i in range(1, n_person + 1):
        if i <= len(notable_people):
            name = notable_people[i - 1]
            gender = "female" if name in ("Kate Winslet",) else "male"
        else:
            name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)} {i}"
            gender = rng.choice(["male", "female"])
        db.insert("person", [i, name, gender, rng.randint(1930, 1995)])
    director_ids = {
        name: NOTABLE_DIRECTORS.index(name) + 1 for name in NOTABLE_DIRECTORS
    }
    actor_ids = {
        name: len(NOTABLE_DIRECTORS) + NOTABLE_ACTORS.index(name) + 1
        for name in NOTABLE_ACTORS
    }
    company_ids = {
        name: NOTABLE_COMPANIES.index(name) + 1 for name in NOTABLE_COMPANIES
    }
    genre_ids = {name: GENRES.index(name) + 1 for name in GENRES}

    # -- movies and facts -----------------------------------------------------
    for i in range(1, n_movie + 1):
        title = (
            f"{rng.choice(_TITLE_ADJECTIVES)} {rng.choice(_TITLE_NOUNS)} {i}"
        )
        year = rng.randint(1980, 2013)
        sequel = rng.randint(1, i - 1) if i > 4 and rng.random() < 0.1 else None
        db.insert(
            "movie",
            [
                i, title, year, rng.randint(80, 180),
                float(rng.randint(1, 200)) * 1e6,
                float(rng.randint(1, 800)) * 1e6,
                rng.randint(1, len(_RATINGS)), rng.randint(1, len(_LANGUAGES)),
                rng.randint(1, len(_COUNTRIES)), rng.randint(1, n_studio),
                sequel,
            ],
        )
        # random crew
        db.insert("director", [rng.randint(1, n_person), i])
        db.insert("writer", [rng.randint(1, n_person), i])
        db.insert("producer", [rng.randint(1, n_person), i])
        db.insert("cinematographer", [rng.randint(1, n_person), i])
        db.insert("editor", [rng.randint(1, n_person), i])
        for _ in range(rng.randint(2, 5)):
            db.insert(
                "actor",
                [rng.randint(1, n_person), i, f"Role {i}", rng.randint(1, 10)],
            )
        db.insert("movie_genre", [i, rng.randint(1, len(GENRES))])
        db.insert("movie_producer", [i, rng.randint(1, n_company)])
        db.insert("movie_distributor", [i, rng.randint(1, n_company), year + 1])
        if rng.random() < 0.5:
            db.insert("movie_financer", [i, rng.randint(1, n_company)])
        db.insert("movie_language", [i, rng.randint(1, len(_LANGUAGES))])
        db.insert("movie_country", [i, rng.randint(1, len(_COUNTRIES))])
        db.insert("movie_keyword", [i, rng.randint(1, len(_KEYWORDS))])

    # -- planted facts for the Figure 14 workload -------------------------------
    _plant_workload_facts(db, rng, n_movie, director_ids, actor_ids, company_ids, genre_ids)

    # -- remaining satellite tables ---------------------------------------------
    for i in range(1, n_user + 1):
        db.insert(
            "users",
            [i, f"user{i}", rng.randint(2005, 2013), rng.randint(1, len(_COUNTRIES)), rng.randint(1, len(GENRES)), rng.randint(1, n_movie)],
        )
        for _ in range(rng.randint(1, 4)):
            db.insert(
                "user_rating",
                [i, rng.randint(1, n_movie), rng.randint(1, 5), rng.randint(2005, 2013)],
            )
        if rng.random() < 0.6:
            db.insert("watchlist", [i, rng.randint(1, n_movie), rng.randint(2005, 2013)])

    publications = ["Daily Reel", "Cinema Weekly", "The Screen"]
    for i, name in enumerate(publications, start=1):
        db.insert("publication", [i, name, rng.randint(1, len(_COUNTRIES))])
    for i in range(1, 9):
        db.insert(
            "critic",
            [i, f"Critic {rng.choice(_LAST_NAMES)} {i}", 1 + i % len(publications), rng.randint(1, len(_COUNTRIES))],
        )
    for i in range(1, int(30 * scale) + 1):
        db.insert(
            "review",
            [i, rng.randint(1, n_movie), rng.randint(1, 8), round(rng.uniform(1.0, 10.0), 1), rng.randint(2000, 2013)],
        )
    for i in range(1, 6):
        db.insert("series", [i, f"{rng.choice(_TITLE_NOUNS)} Saga {i}"])
        db.insert("movie_series", [rng.randint(1, n_movie), i, 1])
    for i in range(1, 11):
        db.insert("location", [i, f"{rng.choice(_TITLE_NOUNS)} Street {i}", rng.randint(1, len(_COUNTRIES))])
        db.insert("movie_location", [rng.randint(1, n_movie), i])
    for i in range(1, 11):
        db.insert("soundtrack", [i, rng.randint(1, n_movie), f"Theme {i}", rng.randint(1, n_person)])
        db.insert("trailer", [i, rng.randint(1, n_movie), rng.randint(30, 180), rng.randint(1, len(_LANGUAGES)), rng.randint(1, n_company)])
        db.insert("tagline", [i, rng.randint(1, n_movie), rng.randint(1, len(_LANGUAGES)), f"Tagline {i}"])
    for i in range(1, 11):
        db.insert("quote", [i, rng.randint(1, n_movie), rng.randint(1, n_person), f"Quote line {i}"])
    for i in range(1, 6):
        db.insert("alias", [i, rng.randint(1, n_person), f"A.K.A. {i}"])
        db.insert("movie_award", [rng.randint(1, n_movie), 1 + i % 5, rng.randint(1990, 2013), bool(i % 2), 1 + i % 4])
        db.insert("person_award", [rng.randint(1, n_person), 1 + i % 5, rng.randint(1990, 2013), bool(i % 2)])
        db.insert("festival_entry", [rng.randint(1, n_movie), 1 + i % 4, rng.randint(1990, 2013)])
    return db


def _plant_workload_facts(
    db: Database,
    rng: random.Random,
    n_movie: int,
    director_ids: dict[str, int],
    actor_ids: dict[str, int],
    company_ids: dict[str, int],
    genre_ids: dict[str, int],
) -> None:
    """Insert the specific facts the Figure 14 queries ask about."""
    next_movie = n_movie + 1

    def add_movie(title: str, year: int) -> int:
        nonlocal next_movie
        movie_id = next_movie
        next_movie += 1
        db.insert(
            "movie",
            [movie_id, title, year, rng.randint(90, 160),
             5e7, 2e8, 3, 1, 1, 1, None],
        )
        return movie_id

    cameron = director_ids["James Cameron"]
    jackson = director_ids["Peter Jackson"]
    jaziri = director_ids["Fahdel Jaziri"]
    spielberg = director_ids["Steven Spielberg"]
    allen = director_ids["Woody Allen"]
    gaghan = director_ids["Stephen Gaghan"]
    hanks = actor_ids["Tom Hanks"]
    winslet = actor_ids["Kate Winslet"]
    dicaprio = actor_ids["Leonardo DiCaprio"]
    fox = company_ids["20th Century Fox"]
    carthago = company_ids["Carthago Films"]
    apollo = company_ids["Apollo Films"]
    llc = company_ids["LLC"]
    drama = genre_ids["Drama"]
    action = genre_ids["Action Adventure"]

    # Q1: male actors with Cameron, produced by Fox, 1995-2010
    for year in (1997, 2003, 2009):
        movie = add_movie(f"Cameron Epic {year}", year)
        db.insert("director", [cameron, movie])
        db.insert("movie_producer", [movie, fox])
        db.insert("actor", [dicaprio, movie, "Lead", 1])
        db.insert("actor", [winslet, movie, "Lead", 2])

    # Q2: Drama directed by Peter Jackson
    for year in (2001, 2005):
        movie = add_movie(f"Jackson Drama {year}", year)
        db.insert("director", [jackson, movie])
        db.insert("movie_genre", [movie, drama])

    # Q3: produced by Carthago, distributed by Apollo, directed by Jaziri
    movie = add_movie("Tunisian Dawn", 2004)
    db.insert("director", [jaziri, movie])
    db.insert("movie_producer", [movie, carthago])
    db.insert("movie_distributor", [movie, apollo, 2005])
    db.insert("actor", [winslet, movie, "Lead", 1])
    db.insert("actor", [hanks, movie, "Support", 2])

    # Q4: directed by Spielberg, acted by Hanks
    for year in (1998, 2002, 2004):
        movie = add_movie(f"Spielberg Hanks {year}", year)
        db.insert("director", [spielberg, movie])
        db.insert("actor", [hanks, movie, "Lead", 1])

    # Q5: actors in >3 Action Adventure movies directed by Woody Allen
    prolific = [dicaprio, hanks]
    for index in range(5):
        movie = add_movie(f"Allen Adventure {index}", 1990 + index)
        db.insert("director", [allen, movie])
        db.insert("movie_genre", [movie, action])
        for person in prolific:
            db.insert("actor", [person, movie, "Lead", 1])

    # Q6: Drama financed by LLC directed by Stephen Gaghan
    movie = add_movie("Quiet Ledger", 2006)
    db.insert("director", [gaghan, movie])
    db.insert("movie_genre", [movie, drama])
    db.insert("movie_financer", [movie, llc])
