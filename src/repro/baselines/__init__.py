"""Baseline join-network generators (Figure 17's Regular and Rightmost)."""

from .generators import BaselineGenerator, RegularGenerator, RightmostGenerator

__all__ = ["BaselineGenerator", "RegularGenerator", "RightmostGenerator"]
