"""Baseline top-k MTJN generators for the efficiency experiment (Fig. 17).

The paper compares its Algorithm 1/2/3 against two modified baselines:

* **Regular** — candidate-network expansion in the style of DISCOVER [8]:
  join networks grow from any node in any order, so large numbers of
  isomorphic networks are generated and re-expanded ("the algorithm
  modified from [8] slows down with size quickly since too many
  isomorphic JNs exist");
* **Rightmost** — rightmost-path expansion following Markowetz et al.
  [12]: each network is generated at most once, but there is no
  potential-based pruning.

Both are adapted exactly as §7.3 describes: (a) expansion stops when the
top-k MTJNs are guaranteed, and (b) a network can be expanded by an edge
or by a view.  Because construction weights only shrink as networks grow,
best-first expansion by weight may stop as soon as the k-th complete
network outweighs the best queued partial.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Optional

from ..core.config import DEFAULT_CONFIG, TranslatorConfig
from ..core.join_network import JoinNetwork
from ..core.mtjn import GenerationStats
from ..core.view_graph import ExtendedViewGraph, ViewInstance, XNode


class BaselineGenerator:
    """Best-first top-k MTJN generation without potential pruning."""

    #: class-level switch: True = rightmost-path legality test
    legality = False
    name = "regular"

    def __init__(
        self,
        graph: ExtendedViewGraph,
        config: TranslatorConfig = DEFAULT_CONFIG,
    ) -> None:
        self.graph = graph
        self.config = config
        self.stats = GenerationStats()
        self._required = [tree.key for tree in graph.trees]
        self._instances_by_node: dict[int, list[ViewInstance]] = {}
        for instance in graph.view_instances:
            for node in instance.nodes:
                self._instances_by_node.setdefault(node.node_id, []).append(
                    instance
                )

    def generate(self, k: int = 1) -> list[JoinNetwork]:
        if not self._required:
            return []
        roots = self.graph.nodes_for_tree(self._required[0])
        counter = itertools.count()
        queue: list[tuple[float, int, JoinNetwork]] = []
        top: list[tuple[float, JoinNetwork]] = []
        emitted: set[frozenset] = set()
        seen_partials: set[frozenset] = set()

        def consider(network: JoinNetwork) -> None:
            if network.is_total(self._required):
                if network.is_minimal():
                    canonical = network.canonical
                    if canonical not in emitted:
                        emitted.add(canonical)
                        weight = network.best_weight(
                            self.graph.view_instances
                        )
                        top.append((weight, network))
                        top.sort(key=lambda pair: -pair[0])
                        del top[k:]
                        self.stats.emitted += 1
                return
            if self.legality:
                canonical = network.canonical
                if canonical in seen_partials:
                    return
                seen_partials.add(canonical)
            heapq.heappush(
                queue,
                (-network.construction_weight, next(counter), network),
            )
            self.stats.pushed += 1

        for root in roots:
            consider(JoinNetwork.single(root))
        while queue:
            if self.stats.expanded >= self.config.max_expansions:
                break
            negative_weight, _, network = heapq.heappop(queue)
            if len(top) >= k and -negative_weight <= top[k - 1][0]:
                break  # no queued partial can beat the current top-k
            for expanded in self._expansions(network):
                self.stats.expanded += 1
                consider(expanded)
        return [network for _, network in top[:k]]

    def _expansions(self, network: JoinNetwork) -> Iterable[JoinNetwork]:
        attach_points = (
            network.rightmost if self.legality else network.nodes.keys()
        )
        for node_id in attach_points:
            node = network.nodes[node_id]
            if self.graph.is_removed(node):
                continue
            for edge in self.graph.incident_edges(node):
                expanded = network.expand_edge(
                    edge, node, legality=self.legality
                )
                if expanded is not None:
                    yield expanded
            for instance in self._instances_by_node.get(node_id, ()):
                if any(self.graph.is_removed(n) for n in instance.nodes):
                    continue
                expanded = network.expand_view(
                    instance, node, legality=self.legality
                )
                if expanded is not None:
                    yield expanded


class RegularGenerator(BaselineGenerator):
    """DISCOVER-style arbitrary expansion: isomorphic duplicates are
    generated and re-expanded, exactly the inefficiency Figure 17 shows."""

    legality = False
    name = "regular"


class RightmostGenerator(BaselineGenerator):
    """Rightmost-path expansion [12]: each network expanded at most once,
    but no potential-based pruning."""

    legality = True
    name = "rightmost"
