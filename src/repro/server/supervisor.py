"""Supervisor: crash-isolated worker processes under a watchdog.

The :class:`Supervisor` shards databases across worker *processes* (one
shard per database name, ``workers_per_shard`` processes per shard) and
gives the serving tier the property the thread-pool
:class:`~repro.service.QueryService` cannot: a poisoned query, an OOM
kill, or a native crash costs one worker process, never the service.

Architecture (one box per thread/process)::

    caller threads ──submit()──▶ per-shard FIFO queue
                                      │ dispatch (breaker-pinned rung)
        ┌─────────────────────────────┼──────────────────────────┐
        │ worker process  ◀── frames ──▶  reader thread (per     │
        │ (TranslationContext,             worker: results, pongs,│
        │  breaker, backend)               EOF = death)           │
        └──────────────────────────────────────────────────────── ┘
                      watchdog thread: heartbeats, request
                      timeouts, due restarts (injectable clock)

* **crash detection** — a worker's pipe hitting EOF (or its process
  found dead) fails the in-flight request with a typed
  :class:`~repro.server.errors.WorkerCrashed` and schedules a restart;
* **hang detection** — the watchdog kills a worker whose in-flight
  request exceeded ``request_timeout`` (busy-hung) or which, while
  idle, missed heartbeat pongs for ``heartbeat_timeout`` (deaf); the
  request fails with :class:`~repro.server.errors.WorkerTimeout`;
* **restart budget** — restarts back off exponentially
  (``restart_backoff_base * 2**(n-1)`` capped at
  ``restart_backoff_cap``, counting restarts inside
  ``restart_window``); more than ``max_restarts`` in the window marks
  the shard *down* and fails its queue fast;
* **degraded mode** — every crash/timeout is also recorded against the
  shard's :class:`~repro.service.breaker.CircuitBreaker`; once tripped
  the supervisor dispatches queries pinned to the breaker's rung (the
  worker folds the pin with its own breaker, weaker rung wins), so a
  flapping shard keeps serving cheap translations while probes test
  recovery;
* **graceful drain** — :meth:`drain` stops admitting (typed
  :class:`~repro.server.errors.ServerDraining` refusals), flushes the
  queues, joins the workers and returns a final snapshot.  SIGTERM
  handling on top lives in :mod:`repro.server.http`.

Every time-based decision reads the injectable ``clock`` — share one
:class:`~repro.testing.faults.VirtualClock` between the supervisor and
a :class:`~repro.testing.faults.FaultInjector` and the heartbeat
watchdog, restart backoff and worker retry jitter all observe a single
deterministic timeline (the watchdog thread still *polls* on real time,
or disable it with ``auto_watchdog=False`` and call :meth:`tick` from
the test).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from ..errors import Diagnostic
from ..obs import NULL_TRACER, MetricsRegistry
from ..service import BreakerConfig, CircuitBreaker, ServiceOverloaded
from .errors import ServerDraining, WorkerCrashed, WorkerTimeout
from .frames import decode_error, decode_frame, send_frame
from .worker import DatabaseSpec, WorkerSpec, worker_main

DEFAULT_SHARD = "default"


@dataclass
class SupervisorConfig:
    """Tuning knobs for one :class:`Supervisor`."""

    #: worker processes per shard
    workers_per_shard: int = 1
    #: requests allowed to wait per shard beyond the ones in flight
    queue_limit: int = 64
    #: default per-request deadline (seconds, worker-side budget)
    deadline: Optional[float] = None
    #: interpretations returned per request
    top_k: int = 1
    #: search caps forwarded to every worker budget
    max_candidates: Optional[int] = None
    max_expansions: Optional[int] = None
    #: queries buffered per worker (1 = strict lock-step).  Deeper
    #: pipelines let the worker serve back-to-back from its pipe while
    #: the supervisor's turnaround overlaps, and let both sides coalesce
    #: several frames into one pipe write — on small hosts the context
    #: switches, not the bytes, are the serving overhead, and this is
    #: what keeps the fault-free process-pool cost inside the benchmark
    #: gate.  The worker always serves strictly one query at a time;
    #: the cost of depth is blast radius (a crash fails up to this many
    #: requests typed) and per-request timeout slack under backlog.
    pipeline_depth: int = 8
    #: kill a worker whose in-flight request exceeds this (seconds)
    request_timeout: float = 30.0
    #: ping an idle worker after this much silence (seconds)
    heartbeat_interval: float = 1.0
    #: kill an idle worker whose ping goes unanswered this long
    heartbeat_timeout: float = 5.0
    #: real-time sleep between watchdog passes (decisions use ``clock``)
    tick_interval: float = 0.02
    #: exponential restart backoff: base * 2**(n-1), capped
    restart_backoff_base: float = 0.1
    restart_backoff_cap: float = 5.0
    #: more than this many restarts inside ``restart_window`` seconds
    #: marks the shard down (degraded mode already tripped earlier)
    max_restarts: int = 5
    restart_window: float = 60.0
    #: real seconds to wait for a worker's ready frame in start()
    worker_ready_timeout: float = 60.0
    #: translation result cache entries per worker database (0 disables;
    #: forwarded to :class:`~repro.server.worker.WorkerSpec`, consistency
    #: contract in docs/CACHING.md)
    cache_size: int = 256
    #: per-shard breaker: crashes/timeouts trip it, pinning the rung
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: honour %-prefixed chaos directives in workers (tests only)
    chaos_hooks: bool = False
    #: multiprocessing start method ("spawn" is crash-safe everywhere)
    start_method: str = "spawn"
    #: run the background watchdog thread (disable for manual ticks)
    auto_watchdog: bool = True
    #: directory for shared translation-context artifacts; when set,
    #: the supervisor builds (or finds) one artifact per shard at
    #: construction and every worker — including every *replacement*
    #: worker after a crash — attaches from it instead of rebuilding
    #: (docs/ARTIFACTS.md).  ``None`` keeps the legacy cold rebuild.
    artifact_dir: Optional[str] = None
    #: LRU disk budget for ``artifact_dir`` (bytes)
    artifact_budget: int = 256 << 20


@dataclass
class ServerResponse:
    """Everything the supervisor knows about one finished request."""

    request_id: int
    query: str
    database: str
    ok: bool
    sql: Optional[str] = None
    rung: Optional[str] = None
    outcome: str = "failed"
    weight: Optional[float] = None
    degradation: tuple[str, ...] = ()
    retries: int = 0
    shed: bool = False
    probe: bool = False
    #: the worker answered from its translation result cache
    cached: bool = False
    worker_breaker_state: Optional[str] = None
    shard_breaker_state: Optional[str] = None
    worker_pid: Optional[int] = None
    error: Optional[BaseException] = None
    elapsed: float = 0.0

    @property
    def diagnostic(self) -> Optional[Diagnostic]:
        if self.error is not None:
            return getattr(self.error, "diagnostic", None)
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "query": self.query,
            "database": self.database,
            "outcome": self.outcome,
            "sql": self.sql,
            "rung": self.rung,
            "retries": self.retries,
            "cached": self.cached,
            "worker_pid": self.worker_pid,
            "shard_breaker_state": self.shard_breaker_state,
            "error": None if self.error is None else str(self.error),
            "error_type": (
                None if self.error is None else type(self.error).__name__
            ),
            "elapsed": round(self.elapsed, 6),
        }


@dataclass
class ServerStats:
    """Aggregate supervisor counters, updated under the lock."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    refused: int = 0
    crashed: int = 0
    timed_out: int = 0
    restarts: int = 0
    pings: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "refused": self.refused,
            "crashed": self.crashed,
            "timed_out": self.timed_out,
            "restarts": self.restarts,
            "pings": self.pings,
        }


class _Pending:
    """One admitted request while queued or in flight."""

    __slots__ = (
        "request_id",
        "query",
        "database",
        "top_k",
        "deadline",
        "future",
        "span",
        "submitted_at",
        "dispatched_at",
        "start_rung",
        "probe",
    )

    def __init__(self, request_id, query, database, top_k, deadline, span):
        self.request_id = request_id
        self.query = query
        self.database = database
        self.top_k = top_k
        self.deadline = deadline
        self.future: "Future[ServerResponse]" = Future()
        self.span = span
        self.submitted_at: Optional[float] = None
        self.dispatched_at: Optional[float] = None
        self.start_rung: str = "full"
        self.probe: bool = False


# worker lifecycle states
_STARTING = "starting"
_READY = "ready"
_BUSY = "busy"
_DEAD = "dead"


class _Worker:
    """Supervisor-side handle for one worker process."""

    def __init__(self, shard: str, slot: int, generation: int) -> None:
        self.shard = shard
        self.slot = slot
        self.generation = generation
        self.process = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None
        self.send_lock = threading.Lock()
        self.state = _STARTING
        self.ready_event = threading.Event()
        #: FIFO of dispatched-but-unanswered requests; the worker is
        #: strictly serial, so results always answer the head
        self.inflight: deque[_Pending] = deque()
        self.last_seen: float = 0.0
        self.ping_id: Optional[int] = None
        self.ping_sent_at: Optional[float] = None
        self.build_seconds: Optional[float] = None
        #: database names this worker attached from the shared artifact
        #: (ready-frame "artifacts"; empty = cold build / legacy worker)
        self.artifacts: list[str] = []

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _Shard:
    """One database shard: its spec, workers, queue, and breaker."""

    def __init__(self, name: str, spec: WorkerSpec, breaker: CircuitBreaker):
        self.name = name
        self.spec = spec
        self.workers: list[_Worker] = []
        self.queue: deque[_Pending] = deque()
        self.breaker = breaker
        #: clock timestamps of recent restarts (pruned to the window)
        self.restart_times: list[float] = []
        #: (due_at, slot) restarts waiting for their backoff to elapse
        self.pending_restarts: list[tuple[float, int]] = []
        self.down = False
        self.down_reason: Optional[str] = None


class Supervisor:
    """Multi-process serving supervisor with a heartbeat watchdog."""

    def __init__(
        self,
        databases: Union[DatabaseSpec, Mapping[str, DatabaseSpec]],
        config: Optional[SupervisorConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        tracer=None,  # Optional[repro.obs.Tracer]
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        #: every timeout, backoff and cooldown decision reads this —
        #: inject a shared VirtualClock for deterministic chaos tests
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        if isinstance(databases, DatabaseSpec):
            databases = {DEFAULT_SHARD: databases}
        if not databases:
            raise ValueError("Supervisor needs at least one database")
        self._mp = multiprocessing.get_context(self.config.start_method)
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        #: deterministic event trace, e.g. ("crash", shard, pid),
        #: ("timeout", shard, reason), ("restart", shard, attempt),
        #: ("shard-down", shard), ("artifact-failed", shard, reason),
        #: ("drain",) — created before the shards so artifact
        #: preparation can record failures
        self.events: list[tuple] = []
        self._shards: dict[str, _Shard] = {}
        for name, spec in databases.items():
            worker_spec = WorkerSpec(
                shard=name,
                databases={name: spec},
                top_k=self.config.top_k,
                deadline=self.config.deadline,
                max_candidates=self.config.max_candidates,
                max_expansions=self.config.max_expansions,
                cache_size=self.config.cache_size,
                chaos_hooks=self.config.chaos_hooks,
                artifacts=self._ensure_shard_artifacts(name, spec),
            )
            self._shards[name] = _Shard(
                name,
                worker_spec,
                CircuitBreaker(
                    self.config.breaker, clock=self.clock, name=name
                ),
            )
        self._next_id = 0
        self._ping_id = 0
        self.stats = ServerStats()
        self._started = False
        self._draining = False
        self._closed = False
        self._watchdog: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # shared context artifacts
    # ------------------------------------------------------------------
    def _ensure_shard_artifacts(
        self, name: str, spec: DatabaseSpec
    ) -> Optional[dict[str, str]]:
        """Build (or find) the shard's shared context artifact.

        Paid once at supervisor construction instead of once per worker
        per generation: every worker the shard ever spawns — including
        replacements after crashes — attaches the same file.  Failure
        to build is logged as an event and degrades to the legacy cold
        rebuild; it never stops the fleet from starting.
        """
        if self.config.artifact_dir is None:
            return None
        from dataclasses import replace as _replace

        from ..artifacts import ArtifactStore, ensure_artifact
        from ..core.config import DEFAULT_CONFIG
        from .worker import build_backend

        store = ArtifactStore(
            self.config.artifact_dir, self.config.artifact_budget
        )
        # mirror the worker's translator config exactly (the cache-size
        # fields are excluded from the artifact key's config digest,
        # but mirroring keeps this correct if that set ever narrows)
        translator = _replace(
            DEFAULT_CONFIG, result_cache_size=self.config.cache_size
        )
        backend = None
        try:
            backend = build_backend(spec)
            path = ensure_artifact(
                backend,
                store,
                translator,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            return {name: path}
        except Exception as exc:  # last-ditch: serving beats artifacts
            self.events.append(("artifact-failed", name, str(exc)))
            return None
        finally:
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_ready: bool = True) -> "Supervisor":
        """Spawn every shard's workers (idempotent).

        With ``wait_ready`` (default) blocks — in *real* time, process
        startup is physical — until every worker announced ``ready``.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("supervisor already closed")
            if not self._started:
                self._started = True
                for shard in self._shards.values():
                    for slot in range(self.config.workers_per_shard):
                        shard.workers.append(self._spawn(shard, slot, 0))
                if self.config.auto_watchdog:
                    self._watchdog = threading.Thread(
                        target=self._watchdog_loop,
                        name="repro-server-watchdog",
                        daemon=True,
                    )
                    self._watchdog.start()
        if wait_ready:
            deadline = time.monotonic() + self.config.worker_ready_timeout
            for shard in self._shards.values():
                for worker in list(shard.workers):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not worker.ready_event.wait(remaining):
                        raise TimeoutError(
                            f"worker {shard.name}/{worker.slot} not ready "
                            f"after {self.config.worker_ready_timeout}s"
                        )
        return self

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: str,
        database: str = DEFAULT_SHARD,
        top_k: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> "Future[ServerResponse]":
        """Submit one query to its shard; never blocks.

        The future always resolves to a :class:`ServerResponse` — shed,
        draining-refused, crashed and timed-out requests resolve with
        ``ok=False`` and a typed ``error``, mirroring
        :class:`~repro.service.QueryService`.
        """
        if database not in self._shards:
            raise KeyError(f"unknown database {database!r}")
        if not self._started:
            raise RuntimeError("Supervisor.start() has not been called")
        span = self.tracer.start_span("server.request")
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self.stats.submitted += 1
            pending = _Pending(
                request_id,
                query,
                database,
                top_k if top_k is not None else self.config.top_k,
                deadline if deadline is not None else self.config.deadline,
                span,
            )
            if span.enabled:
                span.set(
                    request_id=request_id, shard=database, query=query[:200]
                )
            shard = self._shards[database]
            if self._draining or self._closed:
                return self._refuse(
                    pending,
                    ServerDraining(
                        "server draining: no new admissions",
                        diagnostic=Diagnostic(
                            stage="admission",
                            message="SIGTERM drain in progress",
                        ),
                    ),
                    counter="refused",
                )
            if shard.down:
                return self._refuse(
                    pending,
                    WorkerCrashed(
                        f"shard {database!r} is down: {shard.down_reason}",
                        diagnostic=Diagnostic(
                            stage="admission",
                            message="restart budget exhausted; shard down",
                            detail={"shard": database},
                        ),
                    ),
                    counter="failed",
                )
            inflight = sum(len(w.inflight) for w in shard.workers)
            capacity = self.config.workers_per_shard + self.config.queue_limit
            if inflight + len(shard.queue) >= capacity:
                return self._refuse(
                    pending,
                    ServiceOverloaded(
                        f"shard {database!r} overloaded: "
                        f"{inflight} in flight and "
                        f"{len(shard.queue)} queued",
                        diagnostic=Diagnostic(
                            stage="admission",
                            message="bounded shard queue full; request shed",
                            detail={"shard": database, "capacity": capacity},
                        ),
                    ),
                    counter="shed",
                    shed=True,
                )
            pending.submitted_at = self.clock()
            shard.queue.append(pending)
            span.event("queued", depth=len(shard.queue))
            self._dispatch(shard)
            return pending.future

    def run(
        self,
        queries: Sequence[str],
        database: str = DEFAULT_SHARD,
        top_k: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> list[ServerResponse]:
        """Submit a batch and gather responses in request order."""
        futures = [
            self.submit(q, database=database, top_k=top_k, deadline=deadline)
            for q in queries
        ]
        return [future.result() for future in futures]

    def _refuse(
        self,
        pending: _Pending,
        error,
        counter: str,
        shed: bool = False,
    ) -> "Future[ServerResponse]":
        """Resolve a request without dispatching it.  Lock held."""
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        shard = self._shards[pending.database]
        response = ServerResponse(
            request_id=pending.request_id,
            query=pending.query,
            database=pending.database,
            ok=False,
            outcome="shed" if shed else "failed",
            shed=shed,
            shard_breaker_state=shard.breaker.state,
            error=error,
        )
        span = pending.span
        span.event("refused", reason=counter)
        if span.enabled:
            span.set(outcome=response.outcome)
        span.fail(error)
        span.finish()
        self._count_request(pending.database, response.outcome)
        pending.future.set_result(response)
        return pending.future

    # ------------------------------------------------------------------
    # dispatch and completion
    # ------------------------------------------------------------------
    def _dispatch(self, shard: _Shard) -> None:
        """Hand queued work to ready workers.  Lock held.

        Each worker takes up to ``pipeline_depth`` dispatched requests:
        the head is being served, the rest sit in the pipe so the
        worker never idles waiting for the supervisor's turnaround.
        Idle workers are preferred over partially-loaded ones.
        """
        depth = max(1, self.config.pipeline_depth)
        sends: dict[int, tuple[_Worker, list[dict]]] = {}
        while shard.queue:
            candidates = [
                w
                for w in shard.workers
                if w.state in (_READY, _BUSY) and len(w.inflight) < depth
            ]
            if not candidates:
                break
            worker = min(candidates, key=lambda w: len(w.inflight))
            pending = shard.queue.popleft()
            start_rung, probe = shard.breaker.admit()
            pending.start_rung = start_rung
            pending.probe = probe
            pending.dispatched_at = self.clock()
            worker.inflight.append(pending)
            worker.state = _BUSY
            pending.span.event(
                "dispatched", worker_pid=worker.pid, rung=start_rung
            )
            if probe:
                pending.span.event("probe")
            sends.setdefault(worker.slot, (worker, []))[1].append(
                {
                    "op": "query",
                    "id": pending.request_id,
                    "query": pending.query,
                    "database": pending.database,
                    "top_k": pending.top_k,
                    "deadline": pending.deadline,
                    "start_rung": start_rung,
                }
            )
        for worker, frames in sends.values():
            try:
                # several queries for one worker ride one batch frame
                self._send(
                    worker,
                    frames[0]
                    if len(frames) == 1
                    else {"op": "batch", "frames": frames},
                )
            except (BrokenPipeError, OSError):
                # the worker died between dispatch decisions; the death
                # path requeues nothing (these requests are in flight)
                # but fails them typed and restarts
                self._on_worker_death(worker, "dispatch hit a dead pipe")

    def _send(self, worker: _Worker, frame: dict) -> None:
        with worker.send_lock:
            send_frame(worker.conn, frame)

    def _complete(
        self, worker: _Worker, frame: dict, dispatch: bool = True
    ) -> None:
        """A ``result`` frame arrived for the worker's in-flight request.

        ``dispatch=False`` defers the pipeline refill (and the waiter
        wake-up) to the caller — the batch path completes a whole
        coalesced frame before dispatching once.
        """
        with self._lock:
            head = worker.inflight[0] if worker.inflight else None
            if head is None or head.request_id != frame.get("id"):
                return  # stale result from a worker we already timed out
            pending = worker.inflight.popleft()
            if worker.inflight:
                # the worker starts the next pipelined request *now*,
                # so its request_timeout window starts now too — not at
                # the earlier send time
                worker.inflight[0].dispatched_at = self.clock()
            elif worker.state == _BUSY:
                worker.state = _READY
            shard = self._shards[worker.shard]
            # any well-formed reply is proof the serving substrate works;
            # translation-level failures are the *worker's* business
            shard.breaker.record(True, pending.probe)
            error = decode_error(frame.get("error"))
            ok = bool(frame.get("ok"))
            response = ServerResponse(
                request_id=pending.request_id,
                query=pending.query,
                database=pending.database,
                ok=ok,
                sql=frame.get("sql"),
                rung=frame.get("rung"),
                outcome=frame.get("outcome", "ok" if ok else "failed"),
                weight=frame.get("weight"),
                degradation=tuple(frame.get("degradation", ())),
                retries=int(frame.get("retries", 0)),
                probe=pending.probe,
                cached=bool(frame.get("cached")),
                worker_breaker_state=frame.get("breaker_state"),
                shard_breaker_state=shard.breaker.state,
                worker_pid=worker.pid,
                error=error,
                elapsed=float(frame.get("elapsed", 0.0)),
            )
            if ok:
                self.stats.completed += 1
            else:
                self.stats.failed += 1
            self._count_request(
                pending.database,
                response.outcome,
                response.elapsed,
                cached=response.cached if ok else None,
            )
            span = pending.span
            span.event("completed", outcome=response.outcome)
            if span.enabled:
                span.set(
                    outcome=response.outcome,
                    rung=response.rung,
                    worker_pid=worker.pid,
                    shard_breaker_state=response.shard_breaker_state,
                )
            if error is not None:
                span.fail(error)
            span.finish()
            pending.future.set_result(response)
            if dispatch:
                self._dispatch(shard)
                self._done.notify_all()

    def _count_request(
        self,
        shard: str,
        outcome: str,
        elapsed: Optional[float] = None,
        cached: Optional[bool] = None,
    ) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_server_requests_total",
            "Requests finished by the supervisor, by shard and outcome",
        ).inc(1, shard=shard, outcome=outcome)
        if cached is not None:
            # workers keep their own registries in their own processes;
            # the supervisor mirrors hit/miss from the result frame so
            # /metrics shows cache behaviour without cross-process scrapes
            self.metrics.counter(
                "repro_cache_hits_total" if cached else
                "repro_cache_misses_total",
                "Translation result cache hits (canonical-fingerprint key)"
                if cached else "Translation result cache misses",
            ).inc(1, shard=shard)
        if elapsed is not None:
            self.metrics.histogram(
                "repro_server_request_seconds",
                "Seconds from dispatch to result frame, per request",
            ).observe(elapsed)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard: _Shard, slot: int, generation: int) -> _Worker:
        """Start one worker process and its reader thread.  Lock held."""
        worker = _Worker(shard.name, slot, generation)
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        worker.conn = parent_conn
        worker.process = self._mp.Process(
            target=worker_main,
            args=(child_conn, shard.spec),
            name=f"repro-worker-{shard.name}-{slot}",
            daemon=True,
        )
        worker.process.start()
        child_conn.close()
        worker.last_seen = self.clock()
        worker.reader = threading.Thread(
            target=self._reader_loop,
            args=(worker,),
            name=f"repro-reader-{shard.name}-{slot}",
            daemon=True,
        )
        worker.reader.start()
        return worker

    def _reader_loop(self, worker: _Worker) -> None:
        """Per-worker thread: turn frames into completions, EOF into
        death."""
        while True:
            try:
                frame = decode_frame(worker.conn.recv_bytes())
            except (EOFError, OSError):
                self._on_worker_death(worker, "pipe closed")
                return
            except Exception:  # a malformed frame is a wedged worker — treated as death, which re-raises as a typed WorkerCrashed on the request
                self._on_worker_death(worker, "malformed frame")
                return
            with self._lock:
                worker.last_seen = self.clock()
            if self._handle_frame(worker, frame) == "bye":
                return  # clean shutdown: the join happens in drain()

    def _handle_frame(self, worker: _Worker, frame: dict) -> Optional[str]:
        """Dispatch one frame from a worker; returns "bye" on shutdown."""
        op = frame.get("op")
        if op == "batch":
            # results the worker coalesced under backlog: complete them
            # all first, then refill the pipeline with one dispatch pass
            # (and so, usually, one coalesced query frame)
            verdict = None
            for sub in frame.get("frames", ()):
                if sub.get("op") == "result":
                    self._complete(worker, sub, dispatch=False)
                elif self._handle_frame(worker, sub) == "bye":
                    verdict = "bye"
                    break
            with self._lock:
                self._dispatch(self._shards[worker.shard])
                self._done.notify_all()
            return verdict
        if op == "ready":
            with self._lock:
                worker.build_seconds = frame.get("build_seconds")
                worker.artifacts = list(frame.get("artifacts", ()))
                if worker.state == _STARTING:
                    worker.state = _READY
                worker.ready_event.set()
                self._dispatch(self._shards[worker.shard])
        elif op == "result":
            self._complete(worker, frame)
        elif op == "pong":
            with self._lock:
                if frame.get("id") == worker.ping_id:
                    worker.ping_id = None
                    worker.ping_sent_at = None
        elif op == "bye":
            return "bye"
        return None

    def _on_worker_death(self, worker: _Worker, reason: str) -> None:
        """Fail the dead worker's in-flight request and plan a restart."""
        with self._lock:
            if worker.state == _DEAD:
                return  # another thread (watchdog/reader) got here first
            current = self._shards[worker.shard].workers
            if (
                worker.slot >= len(current)
                or current[worker.slot] is not worker
            ):
                return  # an already-replaced generation
            self._fail_worker(
                worker,
                WorkerCrashed(
                    f"worker {worker.shard}/{worker.slot} "
                    f"(pid {worker.pid}) died mid-service: {reason}",
                    diagnostic=Diagnostic(
                        stage="backend",
                        message="worker process crashed",
                        detail={
                            "shard": worker.shard,
                            "pid": worker.pid,
                            "exitcode": (
                                worker.process.exitcode
                                if worker.process is not None
                                else None
                            ),
                            "reason": reason,
                        },
                    ),
                ),
                kind="crash",
            )

    def _kill_hung(self, worker: _Worker, why: str, waited: float) -> None:
        """Watchdog verdict: the worker is hung.  Lock held."""
        self._fail_worker(
            worker,
            WorkerTimeout(
                f"worker {worker.shard}/{worker.slot} (pid {worker.pid}) "
                f"unresponsive: {why} after {waited:.3f}s",
                diagnostic=Diagnostic(
                    stage="backend",
                    message="worker hung; killed by watchdog",
                    detail={
                        "shard": worker.shard,
                        "pid": worker.pid,
                        "why": why,
                        "waited": round(waited, 6),
                    },
                ),
            ),
            kind="timeout",
        )

    def _fail_worker(self, worker: _Worker, error, kind: str) -> None:
        """Common crash/hang path: fail in-flight typed, kill the
        process, record the breaker failure, schedule the restart.
        Lock held."""
        shard = self._shards[worker.shard]
        worker.state = _DEAD
        pendings = list(worker.inflight)
        worker.inflight.clear()
        if kind == "crash":
            self.stats.crashed += 1
            self.events.append(("crash", shard.name, worker.pid))
        else:
            self.stats.timed_out += 1
            self.events.append(("timeout", shard.name, str(error)))
            if worker.process is not None and worker.process.is_alive():
                worker.process.kill()
        if self.metrics is not None:
            self.metrics.counter(
                "repro_server_worker_deaths_total",
                "Worker processes lost, by shard and kind",
            ).inc(1, shard=shard.name, kind=kind)
        if pendings:
            # one death is one breaker failure, however many pipelined
            # requests it takes down with it
            shard.breaker.record(False, any(p.probe for p in pendings))
            for pending in pendings:
                self.stats.failed += 1
                response = ServerResponse(
                    request_id=pending.request_id,
                    query=pending.query,
                    database=pending.database,
                    ok=False,
                    outcome="failed",
                    probe=pending.probe,
                    shard_breaker_state=shard.breaker.state,
                    worker_pid=worker.pid,
                    error=error,
                    elapsed=(
                        self.clock() - pending.dispatched_at
                        if pending.dispatched_at is not None
                        else 0.0
                    ),
                )
                self._count_request(
                    pending.database, "worker-failed", response.elapsed
                )
                span = pending.span
                span.event("worker-failed", kind=kind)
                if span.enabled:
                    span.set(outcome="failed", worker_pid=worker.pid)
                span.fail(error)
                span.finish()
                pending.future.set_result(response)
            self._done.notify_all()
        else:
            # an idle death still counts against the shard's health
            shard.breaker.record(False)
        self._plan_restart(shard, worker)

    def _plan_restart(self, shard: _Shard, worker: _Worker) -> None:
        """Schedule the dead worker's replacement under the restart
        budget.  Lock held."""
        if self._closed or (self._draining and not shard.queue):
            return
        now = self.clock()
        window_start = now - self.config.restart_window
        shard.restart_times = [
            t for t in shard.restart_times if t >= window_start
        ]
        attempt = len(shard.restart_times) + 1
        if attempt > self.config.max_restarts:
            shard.down = True
            shard.down_reason = (
                f"{attempt - 1} restarts within "
                f"{self.config.restart_window}s; budget is "
                f"{self.config.max_restarts}"
            )
            self.events.append(("shard-down", shard.name))
            if self.metrics is not None:
                self.metrics.gauge(
                    "repro_server_shard_down",
                    "1 when the shard's restart budget is exhausted",
                ).set(1, shard=shard.name)
            # the shard is done: fail everything still queued, fast
            while shard.queue:
                stale = shard.queue.popleft()
                self.stats.failed += 1
                error = WorkerCrashed(
                    f"shard {shard.name!r} is down: {shard.down_reason}",
                    diagnostic=Diagnostic(
                        stage="admission",
                        message="restart budget exhausted; shard down",
                        detail={"shard": shard.name},
                    ),
                )
                stale.span.fail(error)
                stale.span.finish()
                self._count_request(stale.database, "worker-failed")
                stale.future.set_result(
                    ServerResponse(
                        request_id=stale.request_id,
                        query=stale.query,
                        database=stale.database,
                        ok=False,
                        outcome="failed",
                        shard_breaker_state=shard.breaker.state,
                        error=error,
                    )
                )
            self._done.notify_all()
            return
        delay = min(
            self.config.restart_backoff_cap,
            self.config.restart_backoff_base * (2 ** (attempt - 1)),
        )
        shard.restart_times.append(now)
        shard.pending_restarts.append((now + delay, worker.slot))
        self.events.append(("restart-scheduled", shard.name, attempt, delay))

    def _restart_due(self, shard: _Shard) -> None:
        """Spawn replacements whose backoff has elapsed.  Lock held."""
        if not shard.pending_restarts:
            return
        now = self.clock()
        due = [r for r in shard.pending_restarts if r[0] <= now]
        if not due:
            return
        shard.pending_restarts = [
            r for r in shard.pending_restarts if r[0] > now
        ]
        for _, slot in due:
            old = shard.workers[slot]
            generation = old.generation + 1
            span = self.tracer.start_span("server.worker.restart")
            if span.enabled:
                span.set(
                    shard=shard.name,
                    slot=slot,
                    generation=generation,
                    old_pid=old.pid,
                )
            shard.workers[slot] = self._spawn(shard, slot, generation)
            self.stats.restarts += 1
            self.events.append(("restart", shard.name, generation))
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_server_worker_restarts_total",
                    "Worker processes restarted, by shard",
                ).inc(1, shard=shard.name)
            if span.enabled:
                span.set(new_pid=shard.workers[slot].pid)
            span.finish()

    # ------------------------------------------------------------------
    # the watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while not self._stop.wait(self.config.tick_interval):
            try:
                self.tick()
            except Exception:  # a watchdog bug must not kill supervision; failures re-raises as typed per-request errors elsewhere
                continue

    def tick(self) -> None:
        """One watchdog pass (also callable directly from tests).

        Checks, per worker: silent process death, busy-hang (in-flight
        request past ``request_timeout``), idle heartbeat (ping after
        ``heartbeat_interval`` of silence, kill after
        ``heartbeat_timeout`` without a pong), and due restarts.
        """
        with self._lock:
            now = self.clock()
            for shard in self._shards.values():
                for worker in list(shard.workers):
                    if worker.state == _DEAD:
                        continue
                    if not worker.alive():
                        self._on_worker_death(worker, "process not alive")
                        continue
                    if worker.state == _BUSY and worker.inflight:
                        # head of the pipeline is the request being
                        # served; later ones haven't started yet
                        dispatched_at = worker.inflight[0].dispatched_at
                        # 0.0 is a real timestamp on a virtual clock
                        waited = now - (
                            dispatched_at if dispatched_at is not None else now
                        )
                        if waited > self.config.request_timeout:
                            self._kill_hung(
                                worker, "request timeout", waited
                            )
                            continue
                    if worker.state == _READY:
                        if worker.ping_sent_at is not None:
                            if (
                                now - worker.ping_sent_at
                                > self.config.heartbeat_timeout
                            ):
                                if self.metrics is not None:
                                    self.metrics.counter(
                                        "repro_server_heartbeat_misses_total",
                                        "Idle workers killed for missing "
                                        "heartbeats, by shard",
                                    ).inc(1, shard=shard.name)
                                self._kill_hung(
                                    worker,
                                    "heartbeat missed",
                                    now - worker.ping_sent_at,
                                )
                                continue
                        elif (
                            now - worker.last_seen
                            >= self.config.heartbeat_interval
                        ):
                            self._ping_id += 1
                            worker.ping_id = self._ping_id
                            worker.ping_sent_at = now
                            self.stats.pings += 1
                            try:
                                self._send(
                                    worker,
                                    {"op": "ping", "id": worker.ping_id},
                                )
                            except (BrokenPipeError, OSError):
                                self._on_worker_death(
                                    worker, "ping hit a dead pipe"
                                )
                                continue
                self._restart_due(shard)

    # ------------------------------------------------------------------
    # drain and close
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> dict[str, Any]:
        """Graceful shutdown: stop admitting, flush, join, snapshot.

        New submissions refuse typed (:class:`ServerDraining`) the
        moment this is called; everything already admitted — queued or
        in flight — completes (crashed workers are still restarted
        while their shard has queued work).  Returns the final
        :meth:`snapshot`, stamped with the drain duration.
        """
        started = time.monotonic()
        with self._lock:
            if self._closed:
                return self.snapshot()
            self._draining = True
            self.events.append(("drain",))
        # flush: wait for queues and in-flight work (real-time wait —
        # the work itself runs on real CPUs)
        deadline = None if timeout is None else started + timeout
        with self._done:
            while True:
                busy = any(
                    shard.queue
                    or any(w.inflight for w in shard.workers)
                    for shard in self._shards.values()
                )
                if not busy:
                    break
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._done.wait(0.05 if remaining is None else min(remaining, 0.05))
        self._shutdown_workers()
        with self._lock:
            self._closed = True
        self._stop.set()
        if self._watchdog is not None and self._watchdog.is_alive():
            self._watchdog.join(timeout=5.0)
        snapshot = self.snapshot()
        snapshot["drain_seconds"] = round(time.monotonic() - started, 6)
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_server_drain_seconds",
                "Wall seconds the final graceful drain took",
            ).set(snapshot["drain_seconds"])
        return snapshot

    def close(self) -> None:
        """Drain-and-stop (idempotent); context-manager exit path."""
        if not self._closed:
            self.drain()

    def _shutdown_workers(self) -> None:
        """Ask every live worker to exit, then enforce it."""
        with self._lock:
            workers = [
                w
                for shard in self._shards.values()
                for w in shard.workers
                if w.state != _DEAD
            ]
            for shard in self._shards.values():
                shard.pending_restarts.clear()
        for worker in workers:
            try:
                self._send(worker, {"op": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            if worker.process is not None:
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
            with self._lock:
                worker.state = _DEAD
            try:
                worker.conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def closed(self) -> bool:
        return self._closed

    def breaker(self, database: str = DEFAULT_SHARD) -> CircuitBreaker:
        return self._shards[database].breaker

    def worker_pids(self, database: str = DEFAULT_SHARD) -> list[int]:
        """Live worker pids for one shard (chaos harness seam)."""
        with self._lock:
            return [
                w.pid
                for w in self._shards[database].workers
                if w.state != _DEAD and w.pid is not None
            ]

    def readiness(self) -> dict[str, Any]:
        """The /readyz payload: per-shard readiness plus drain state."""
        with self._lock:
            shards = {}
            all_ready = True
            for name, shard in self._shards.items():
                live = [
                    w for w in shard.workers if w.state in (_READY, _BUSY)
                ]
                ready = bool(live) and not shard.down
                all_ready = all_ready and ready
                shards[name] = {
                    "ready": ready,
                    "down": shard.down,
                    "down_reason": shard.down_reason,
                    "breaker": shard.breaker.state,
                    "workers": {
                        "live": len(live),
                        "configured": self.config.workers_per_shard,
                        "restarting": len(shard.pending_restarts),
                    },
                    "queued": len(shard.queue),
                }
            return {
                "ready": all_ready and not self._draining and not self._closed,
                "draining": self._draining,
                "closed": self._closed,
                "shards": shards,
            }

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable supervisor state."""
        with self._lock:
            return {
                "config": {
                    "workers_per_shard": self.config.workers_per_shard,
                    "queue_limit": self.config.queue_limit,
                    "deadline": self.config.deadline,
                    "request_timeout": self.config.request_timeout,
                    "heartbeat_interval": self.config.heartbeat_interval,
                    "heartbeat_timeout": self.config.heartbeat_timeout,
                    "max_restarts": self.config.max_restarts,
                    "restart_window": self.config.restart_window,
                    "start_method": self.config.start_method,
                },
                "stats": self.stats.as_dict(),
                "readiness": self.readiness(),
                "shards": {
                    name: {
                        "breaker": shard.breaker.snapshot(),
                        "restart_times": [
                            round(t, 6) for t in shard.restart_times
                        ],
                        "artifact": (shard.spec.artifacts or {}).get(name),
                        "workers": [
                            {
                                "slot": w.slot,
                                "generation": w.generation,
                                "pid": w.pid,
                                "state": w.state,
                                "build_seconds": w.build_seconds,
                                "artifacts": list(w.artifacts),
                            }
                            for w in shard.workers
                        ],
                    }
                    for name, shard in self._shards.items()
                },
            }
