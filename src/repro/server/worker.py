"""Worker-process side of the multi-process serving layer.

A worker is one OS process owning everything a shard needs to serve
queries: the backend built from a picklable :class:`DatabaseSpec`, a
private :class:`~repro.core.context.TranslationContext`, and a
one-thread :class:`~repro.service.QueryService` (which brings the
per-request deadline budgets, retry policy and the worker's *own*
circuit breaker along for free).  Crash isolation is the point: a
poisoned query, an OOM, or a native crash takes down this process only —
the supervisor fails the in-flight request typed and restarts.

The process speaks the :mod:`repro.server.frames` protocol over one
duplex pipe: it announces ``ready`` after building its contexts, then
loops ``recv → handle → send`` until a ``shutdown`` frame (or pipe EOF,
meaning the supervisor died) ends it.  The loop is single-threaded by
design — a worker handles one query at a time, so a heartbeat ``ping``
answered immediately proves the worker is idle and healthy, and an
unanswered one means it is either busy (the supervisor checks the
in-flight request's timeout instead) or wedged.

Under backlog the loop *coalesces* frames: the supervisor may pipeline
several queries (singly or as one ``batch`` frame), and the worker
holds finished results while more input is already buffered — flushing
at :data:`FLUSH_LIMIT` results, after :data:`FLUSH_INTERVAL` seconds,
and always before blocking on an empty pipe.  On hosts where worker
and supervisor share cores, the context switches per pipe write are
the dominant serving overhead, and batching amortizes them; queries
are still served strictly one at a time, in order.

**Chaos hooks.**  With ``WorkerSpec(chaos_hooks=True)`` (never the
default) queries starting with ``%`` become test directives executed
*in the worker process*: ``%sleep:N`` holds the request N seconds (the
window a chaos harness uses to ``kill -9`` the pid mid-request),
``%hang`` wedges the worker busy, ``%deaf`` answers ok then stops
reading frames (an idle-hung worker: heartbeats go unanswered), and
``%crash`` calls ``os._exit`` — a crash the supervisor cannot
distinguish from a real one.  This is how the crash/hang/drain matrix
stays deterministic.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Optional

from .frames import encode_error, recv_frame, send_frame

#: chaos directives honoured when ``WorkerSpec.chaos_hooks`` is set
CHAOS_PREFIX = "%"

#: results coalesced into one frame before a flush is forced; bounds
#: how long a backlog can starve the supervisor of completions
FLUSH_LIMIT = 16

#: seconds of unflushed results before a flush is forced anyway, so
#: slow queries under a deep backlog never look like a hung worker
FLUSH_INTERVAL = 0.05


@dataclass(frozen=True)
class DatabaseSpec:
    """A picklable recipe for building one database in a worker.

    ``kind`` selects the builder: ``dataset`` (a built-in synthetic
    dataset by name), ``sqlite`` (a SQLite file reflected through
    :class:`~repro.backends.sqlite.SqliteBackend`), or ``saved`` (a
    directory written by :func:`repro.engine.io.save_database`).
    Workers rebuild their backends from specs instead of unpickling
    live objects, so a restarted worker always starts from the same
    clean state the first one did.
    """

    kind: str
    target: str
    sample_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("dataset", "sqlite", "saved"):
            raise ValueError(
                f"unknown DatabaseSpec kind {self.kind!r}; "
                "expected 'dataset', 'sqlite' or 'saved'"
            )


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs, in picklable form."""

    shard: str
    databases: dict[str, DatabaseSpec]
    top_k: int = 1
    deadline: Optional[float] = None
    max_candidates: Optional[int] = None
    max_expansions: Optional[int] = None
    #: translation result cache entries per database (0 disables);
    #: see docs/CACHING.md for the consistency contract
    cache_size: int = 256
    #: honour ``%``-prefixed chaos directives (tests/harnesses only)
    chaos_hooks: bool = False
    #: database name -> path of a shared repro.artifacts file; the
    #: supervisor builds (or finds) one artifact per shard and every
    #: worker attaches read-only instead of rebuilding its context.
    #: ``None`` entries and load failures fall back to a fresh build.
    artifacts: Optional[dict[str, str]] = None


def build_backend(spec: DatabaseSpec):
    """Materialise one :class:`DatabaseSpec` into a backend/database."""
    if spec.kind == "dataset":
        from ..cli import DATASETS

        try:
            factory = DATASETS[spec.target]
        except KeyError:
            raise ValueError(
                f"unknown dataset {spec.target!r}; "
                f"expected one of {sorted(DATASETS)}"
            ) from None
        return factory()
    if spec.kind == "sqlite":
        from ..backends import SqliteBackend

        return SqliteBackend(spec.target, sample_limit=spec.sample_limit)
    from ..engine.io import load_database

    return load_database(spec.target)


def _response_payload(request_id: int, response) -> dict[str, Any]:
    """A ServiceResponse as a ``result`` frame payload."""
    first = (response.translations or [None])[0]
    return {
        "op": "result",
        "id": request_id,
        "ok": response.ok,
        "outcome": response.outcome,
        "sql": response.sql,
        "rung": response.rung,
        "weight": first.weight if first is not None else None,
        "degradation": list(first.degradation) if first is not None else [],
        "retries": response.retries,
        "breaker_state": response.breaker_state,
        "cached": response.cached,
        "elapsed": round(response.elapsed, 6),
        "error": (
            encode_error(response.error) if response.error is not None else None
        ),
    }


def _apply_chaos(directive: str, conn, request_id: int) -> dict[str, Any]:
    """Execute one chaos directive; returns the frame to send (if any).

    ``%crash`` never returns.  ``%deaf`` returns its ok-frame but tells
    the caller (via ``"deaf": True``) to stop reading afterwards.
    """
    name, _, argument = directive[1:].partition(":")
    if name == "crash":
        os._exit(int(argument) if argument else 9)
    if name == "hang":
        # busy-hang: wedged mid-request, watchdog must kill us
        time.sleep(float(argument) if argument else 3600.0)
    if name == "sleep":
        time.sleep(float(argument) if argument else 1.0)
    payload = {
        "op": "result",
        "id": request_id,
        "ok": True,
        "outcome": "ok",
        "sql": f"-- chaos:{name}",
        "rung": "full",
        "weight": 0.0,
        "degradation": [],
        "retries": 0,
        "breaker_state": "closed",
        "elapsed": 0.0,
        "error": None,
    }
    if name == "deaf":
        payload["deaf"] = True
    return payload


def worker_main(conn, spec: WorkerSpec) -> None:
    """Process entry point: build the shard's state, then serve frames.

    Runs until a ``shutdown`` frame or pipe EOF.  Never raises: every
    failure is either a typed per-request ``result`` frame or — if the
    serving loop itself breaks — a silent exit the supervisor observes
    as a crash, which is the honest signal.
    """
    import signal

    # the supervisor coordinates shutdown; a tty Ctrl-C must not kill
    # workers before the supervisor has drained them
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from dataclasses import replace

    from ..core.config import DEFAULT_CONFIG
    from ..service import QueryService, ServiceConfig

    built_at = time.monotonic()
    backends = {
        name: build_backend(db_spec)
        for name, db_spec in sorted(spec.databases.items())
    }
    service = QueryService(
        backends,
        ServiceConfig(
            workers=1,
            queue_limit=0,
            deadline=spec.deadline,
            max_candidates=spec.max_candidates,
            max_expansions=spec.max_expansions,
            top_k=spec.top_k,
            translator=replace(
                DEFAULT_CONFIG, result_cache_size=spec.cache_size
            ),
            artifacts=dict(spec.artifacts or {}),
        ),
    )
    artifact_info = service.snapshot().get("artifacts", {})
    send_frame(
        conn,
        {
            "op": "ready",
            "pid": os.getpid(),
            "shard": spec.shard,
            "databases": sorted(backends),
            "build_seconds": round(time.monotonic() - built_at, 6),
            # which databases attached their context from the shared
            # artifact (vs fell back to a fresh build) — the chaos
            # harness asserts replacements start from the artifact
            "artifacts": sorted(
                name
                for name, info in artifact_info.items()
                if info.get("loaded")
            ),
        },
    )
    from collections import deque

    incoming: deque = deque()
    results: list[dict[str, Any]] = []
    last_flush = time.perf_counter()

    def flush() -> None:
        """Send buffered results — one frame, or one batch frame."""
        nonlocal last_flush
        last_flush = time.perf_counter()
        if not results:
            return
        if len(results) == 1:
            send_frame(conn, results[0])
        else:
            send_frame(conn, {"op": "batch", "frames": list(results)})
        results.clear()

    def backlogged() -> bool:
        """More input is already waiting — hold the flush and keep
        serving, so results coalesce into one frame per backlog."""
        return bool(incoming) or conn.poll(0)

    try:
        while True:
            if incoming:
                frame = incoming.popleft()
            else:
                if not conn.poll(0):
                    # about to block: everything coalesced so far must
                    # go out now or the supervisor waits on us waiting
                    flush()
                try:
                    frame = recv_frame(conn)
                except (EOFError, OSError):
                    return  # supervisor died; nothing left to serve
            op = frame.get("op")
            if op == "batch":
                incoming.extend(frame.get("frames", ()))
                continue
            if op == "shutdown":
                flush()
                send_frame(conn, {"op": "bye", "pid": os.getpid()})
                return
            if op == "ping":
                flush()
                send_frame(conn, {"op": "pong", "id": frame.get("id")})
                continue
            if op != "query":
                continue  # unknown ops are ignored, not fatal
            request_id = frame.get("id", 0)
            query = frame.get("query", "")
            if spec.chaos_hooks and query.startswith(CHAOS_PREFIX):
                flush()
                payload = _apply_chaos(query, conn, request_id)
                deaf = payload.pop("deaf", False)
                send_frame(conn, payload)
                if deaf:
                    time.sleep(3600.0)  # idle-hang: stop reading frames
                continue
            # inline: this loop IS the worker's one thread, so the
            # pool handoff submit() pays for would be pure latency
            response = service.serve_inline(
                query,
                database=frame.get("database") or "default",
                top_k=frame.get("top_k"),
                deadline=frame.get("deadline"),
                start_rung=frame.get("start_rung"),
            )
            results.append(_response_payload(request_id, response))
            if (
                not backlogged()
                or len(results) >= FLUSH_LIMIT
                or time.perf_counter() - last_flush >= FLUSH_INTERVAL
            ):
                flush()
    finally:
        service.close()
        conn.close()
