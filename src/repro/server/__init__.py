"""``repro.server`` — supervised multi-process serving (DESIGN.md §15).

The process-isolation tier above :class:`~repro.service.QueryService`:
a :class:`Supervisor` shards databases across worker *processes*
(crash isolation the thread pool cannot give), watches them with a
heartbeat watchdog on an injectable clock, fails requests on dead or
hung workers with typed :class:`WorkerCrashed` / :class:`WorkerTimeout`
(CLI exit code 8), restarts workers under an exponential-backoff
budget, and degrades a flapping shard through its circuit breaker's
pinned ladder rung.  :mod:`repro.server.http` puts a minimal asyncio
HTTP/JSON front end with SIGTERM graceful drain on top.

Layering: ``frames`` (wire format) ← ``worker`` (child process) ←
``supervisor`` (parent) ← ``http`` (front end).  Nothing here is
imported by the translation core.
"""

from .errors import ServerDraining, WorkerCrashed, WorkerError, WorkerTimeout
from .frames import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_error,
    decode_frame,
    encode_error,
    encode_frame,
)
from .http import ServerApp, serve
from .supervisor import (
    DEFAULT_SHARD,
    ServerResponse,
    ServerStats,
    Supervisor,
    SupervisorConfig,
)
from .worker import DatabaseSpec, WorkerSpec, build_backend, worker_main

__all__ = [
    "DEFAULT_SHARD",
    "DatabaseSpec",
    "FrameError",
    "MAX_FRAME_BYTES",
    "ServerApp",
    "ServerDraining",
    "ServerResponse",
    "ServerStats",
    "Supervisor",
    "SupervisorConfig",
    "WorkerCrashed",
    "WorkerError",
    "WorkerSpec",
    "WorkerTimeout",
    "build_backend",
    "decode_error",
    "decode_frame",
    "encode_error",
    "encode_frame",
    "serve",
    "worker_main",
]
