"""Length-prefixed JSON frames between supervisor and workers.

Wire format: a 4-byte big-endian payload length, then exactly that many
bytes of UTF-8 JSON.  ``multiprocessing`` pipes already delimit
messages, so the prefix is deliberately redundant there — it is an
integrity check (a torn or corrupted message fails typed instead of
decoding garbage) and it keeps the frame self-delimiting, so the same
codec can run over any byte stream (the asyncio HTTP front end shares
the encoded-error vocabulary below).

Every frame is a JSON object with an ``op`` field:

=================  =============================================
``op``             direction / meaning
=================  =============================================
``ready``          worker → supervisor, once after startup: pid,
                   hosted databases, context build seconds
``query``          supervisor → worker: id, query, database,
                   top_k, deadline, start_rung
``result``         worker → supervisor: id, outcome, sql, rung,
                   retries, degradation, elapsed, error
``ping``/``pong``  heartbeat probe and its echo (id-correlated)
``shutdown``       supervisor → worker: drain and exit
``bye``            worker → supervisor: shutdown acknowledged
=================  =============================================

Typed errors cross the process boundary as ``{"type", "message",
"diagnostic"}`` dictionaries; :func:`decode_error` reconstructs the
closest class in the :class:`~repro.errors.ReproError` taxonomy (falling
back to ``ReproError`` itself for unknown or unreconstructible types) so
``repro.cli.exit_code_for`` keeps working across the wire.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional

from ..errors import Diagnostic, ReproError

#: frames larger than this fail typed — a corrupted length prefix must
#: not trigger a multi-gigabyte allocation
MAX_FRAME_BYTES = 32 * 1024 * 1024

_PREFIX = struct.Struct(">I")


class FrameError(ReproError):
    """A frame violated the length-prefixed JSON wire format."""


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialise one frame: 4-byte big-endian length + UTF-8 JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _PREFIX.pack(len(body)) + body


def decode_frame(data: bytes) -> dict[str, Any]:
    """Decode and *validate* one frame produced by :func:`encode_frame`."""
    if len(data) < _PREFIX.size:
        raise FrameError(f"truncated frame: {len(data)} bytes, need >= 4")
    (length,) = _PREFIX.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    body = data[_PREFIX.size:]
    if len(body) != length:
        raise FrameError(
            f"frame length prefix says {length} bytes, got {len(body)}"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "op" not in payload:
        raise FrameError("frame payload must be an object with an 'op'")
    return payload


def send_frame(conn, payload: dict[str, Any]) -> None:
    """Send one frame over a ``multiprocessing`` connection."""
    conn.send_bytes(encode_frame(payload))


def recv_frame(conn) -> dict[str, Any]:
    """Receive and validate one frame (blocking).

    Raises ``EOFError``/``OSError`` untranslated when the peer died —
    the supervisor turns those into :class:`~repro.server.errors.
    WorkerCrashed`, which needs to see the raw condition.
    """
    return decode_frame(conn.recv_bytes())


# ---------------------------------------------------------------------------
# typed errors on the wire
# ---------------------------------------------------------------------------


def _error_registry() -> dict[str, type]:
    """Name → class map for reconstructing taxonomy errors.

    Imported lazily: frames sit below every other server module and
    must not create import cycles at package-load time.
    """
    from ..backends.errors import (
        BackendDegraded,
        BackendError,
        BackendUnavailable,
        TransientBackendError,
    )
    from ..core.composer import NoJoinNetworkError, TranslationError
    from ..core.resilience import BudgetExceeded
    from ..engine.errors import (
        EngineError,
        ExecutionError,
        IntegrityError,
        NameResolutionError,
    )
    from ..service import ServiceClosed, ServiceOverloaded
    from ..sqlkit import SqlSyntaxError
    from ..testing.faults import InjectedFault
    from .errors import ServerDraining, WorkerCrashed, WorkerTimeout

    classes = (
        BackendDegraded,
        BackendError,
        BackendUnavailable,
        BudgetExceeded,
        EngineError,
        ExecutionError,
        FrameError,
        InjectedFault,
        IntegrityError,
        NameResolutionError,
        NoJoinNetworkError,
        ReproError,
        ServerDraining,
        ServiceClosed,
        ServiceOverloaded,
        SqlSyntaxError,
        TransientBackendError,
        TranslationError,
        WorkerCrashed,
        WorkerTimeout,
    )
    return {cls.__name__: cls for cls in classes}


def encode_error(error: BaseException) -> dict[str, Any]:
    """One taxonomy error as a JSON-safe dictionary."""
    diagnostic = getattr(error, "diagnostic", None)
    return {
        "type": type(error).__name__,
        "message": str(error),
        "diagnostic": diagnostic.to_dict() if diagnostic is not None else None,
    }


def decode_error(data: Optional[dict[str, Any]]) -> Optional[ReproError]:
    """Reconstruct the nearest taxonomy class from its wire form."""
    if data is None:
        return None
    diagnostic = None
    raw = data.get("diagnostic")
    if isinstance(raw, dict):
        diagnostic = Diagnostic(
            stage=raw.get("stage", "translate"),
            message=raw.get("message", ""),
            token=raw.get("token"),
            input_span=(
                tuple(raw["input_span"]) if raw.get("input_span") else None
            ),
            candidates=raw.get("candidates", 0),
            degradation=tuple(raw.get("degradation", ())),
            detail=dict(raw.get("detail", {})),
        )
    cls = _error_registry().get(data.get("type", ""), ReproError)
    message = data.get("message", "")
    try:
        return cls(message, diagnostic=diagnostic)
    except Exception:  # re-raises as a typed ReproError fallback
        return ReproError(message, diagnostic=diagnostic)
