"""Minimal asyncio HTTP/JSON front end over a :class:`Supervisor`.

Hand-rolled on ``asyncio.start_server`` (the repo's zero-dependency rule
means no aiohttp): enough HTTP/1.1 to serve four routes to curl, a load
balancer, and the chaos harness —

``POST /query``
    ``{"query": ..., "database"?: ..., "top_k"?: ..., "deadline"?: ...}``
    → the supervisor's :class:`~repro.server.supervisor.ServerResponse`
    as JSON.  Status encodes the failure class: 200 ok, 400 for
    translation-level errors, 429 shed, 500 for worker crash/timeout
    (the HTTP face of exit code 8), 503 while draining.
``GET /healthz``
    Liveness: 200 while the event loop runs, 503 once closed.
``GET /readyz``
    Readiness: the supervisor's per-shard readiness plus drain state;
    200 only when every shard has a live worker and no drain has begun.
``GET /metrics``
    Prometheus text exposition of the shared registry.

**Graceful drain.**  :meth:`ServerApp.begin_drain` — wired to SIGTERM
by :func:`serve` — immediately flips ``/readyz`` to 503 (so load
balancers stop routing here), lets the supervisor refuse new work
typed, waits for admitted requests to finish, joins the workers and
logs the final snapshot.  In-flight HTTP requests complete; nothing
admitted is lost.

The app is testable without sockets: :meth:`ServerApp.dispatch` maps
``(method, path, body)`` → ``(status, content_type, body_bytes)``
directly, and :func:`serve` binds port 0 happily for tests.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Any, Optional

from ..errors import ReproError
from ..service import ServiceOverloaded
from .errors import ServerDraining, WorkerError
from .supervisor import Supervisor

#: request bodies larger than this are refused with 413
MAX_BODY_BYTES = 1 * 1024 * 1024


def _status_for(error: Optional[BaseException]) -> int:
    """Map a typed failure to an HTTP status (mirrors CLI exit codes)."""
    if error is None:
        return 200
    if isinstance(error, ServerDraining):
        return 503
    if isinstance(error, ServiceOverloaded):
        return 429
    if isinstance(error, WorkerError):
        return 500  # the HTTP face of CLI exit code 8
    if isinstance(error, ReproError):
        return 400  # translation-level: the query's fault, not ours
    return 500


class ServerApp:
    """Route dispatch for the serving front end (socket-free core)."""

    def __init__(self, supervisor: Supervisor, metrics=None) -> None:
        self.supervisor = supervisor
        self.metrics = metrics if metrics is not None else supervisor.metrics
        self._drain_task: Optional[asyncio.Task] = None
        self._drained = asyncio.Event()
        self.final_snapshot: Optional[dict[str, Any]] = None

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes]:
        """One request in, ``(status, content_type, body)`` out."""
        path = path.split("?", 1)[0]
        if path == "/query" and method == "POST":
            return await self._query(body)
        if path == "/healthz" and method == "GET":
            alive = not self.supervisor.closed
            return (
                200 if alive else 503,
                "application/json",
                _json({"status": "ok" if alive else "closed"}),
            )
        if path == "/readyz" and method == "GET":
            readiness = self.supervisor.readiness()
            return (
                200 if readiness["ready"] else 503,
                "application/json",
                _json(readiness),
            )
        if path == "/metrics" and method == "GET":
            if self.metrics is None:
                return 404, "text/plain", b"no metrics registry configured\n"
            return (
                200,
                "text/plain; version=0.0.4",
                self.metrics.render_text().encode("utf-8"),
            )
        return 404, "application/json", _json({"error": "no such route"})

    async def _query(self, body: bytes) -> tuple[int, str, bytes]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            query = payload["query"]
            if not isinstance(query, str):
                raise ValueError("'query' must be a string")
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            return (
                400,
                "application/json",
                _json({"error": f"bad request body: {exc}"}),
            )
        try:
            future = self.supervisor.submit(
                query,
                database=payload.get("database", "default"),
                top_k=payload.get("top_k"),
                deadline=payload.get("deadline"),
            )
        except KeyError as exc:
            return 404, "application/json", _json({"error": str(exc)})
        response = await asyncio.wrap_future(future)
        doc = response.to_dict()
        doc["ok"] = response.ok
        return _status_for(response.error), "application/json", _json(doc)

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Start the graceful drain exactly once (SIGTERM handler)."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        # Supervisor.drain blocks on worker joins — keep the loop alive
        # so in-flight HTTP responses still flush while it runs
        self.final_snapshot = await loop.run_in_executor(
            None, self.supervisor.drain
        )
        self._drained.set()

    async def wait_drained(self) -> dict[str, Any]:
        await self._drained.wait()
        assert self.final_snapshot is not None
        return self.final_snapshot


def _json(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


async def _handle_connection(
    app: ServerApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Parse one HTTP/1.1 request, answer it, close the connection."""
    try:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            writer.close()
            return
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_BODY_BYTES:
            status, ctype, body = (
                413,
                "application/json",
                _json({"error": "request body too large"}),
            )
        else:
            payload = (
                await reader.readexactly(content_length)
                if content_length
                else b""
            )
            status, ctype, body = await app.dispatch(method, path, payload)
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            413: "Payload Too Large",
            429: "Too Many Requests",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
    except (asyncio.IncompleteReadError, ConnectionError):
        pass  # the client went away mid-request; nothing to answer
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve(
    supervisor: Supervisor,
    host: str = "127.0.0.1",
    port: int = 8080,
    install_signals: bool = True,
) -> None:
    """Run the front end until SIGTERM (or cancellation) drains it.

    Binds, serves the four routes, and on SIGTERM performs the graceful
    shutdown sequence: ``/readyz`` goes 503, the supervisor stops
    admitting, admitted work flushes, workers join, and the final
    snapshot is printed to stderr as one JSON line.
    """
    app = ServerApp(supervisor)
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host=host, port=port
    )
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, app.begin_drain)
    sockets = server.sockets or []
    for sock in sockets:
        print(
            f"repro server listening on {sock.getsockname()!r}",
            file=sys.stderr,
        )
    async with server:
        snapshot = await app.wait_drained()
        server.close()
        await server.wait_closed()
        print(json.dumps({"drain": snapshot}), file=sys.stderr)
