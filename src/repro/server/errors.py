"""Typed failures of the multi-process serving layer.

These extend the :class:`~repro.errors.ReproError` taxonomy with the
failure modes only process isolation can produce: a worker that *died*
(crash, OOM kill, ``kill -9``) and a worker that *stopped responding*
(hung in native code, livelocked).  Both carry structured
:class:`~repro.errors.Diagnostic` records and map to CLI exit code 8
(``repro.cli.EXIT_WORKER``) so scripts can tell "the serving substrate
failed" apart from every translation-level failure class.

``ServerDraining`` is the typed refusal a request receives once a
SIGTERM drain has begun — admitted work still completes, new work is
turned away with this error rather than queued into a dying process.
"""

from __future__ import annotations

from ..errors import ReproError


class WorkerError(ReproError):
    """Base class: a serving worker process failed the request."""


class WorkerCrashed(WorkerError):
    """The worker process died (exited or was killed) mid-request.

    Carries the shard name, pid and exit code in its diagnostic; the
    supervisor fails every in-flight request on the dead worker with
    this error and restarts the worker under its backoff budget.
    """


class WorkerTimeout(WorkerError):
    """The worker stopped responding and was killed by the watchdog.

    Raised both for a request exceeding the supervisor's request
    timeout (busy-hung worker) and for an idle worker missing heartbeats
    (deaf worker); the diagnostic's ``detail`` says which.
    """


class ServerDraining(ReproError):
    """The server is draining (SIGTERM received): no new admissions."""
