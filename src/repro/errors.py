"""Unified exception taxonomy and structured diagnostics.

Every error the repro package raises on a user-visible path derives from
:class:`ReproError`, so callers (the CLI, services embedding the
translator) can write one ``except ReproError`` and know that anything
else escaping is a genuine bug:

    ReproError
    ├── SqlSyntaxError      (repro.sqlkit.tokens; also a SyntaxError)
    ├── TranslationError    (repro.core.composer; also a RuntimeError)
    │   └── NoJoinNetworkError
    ├── EngineError         (repro.engine.errors; also a RuntimeError)
    │   ├── NameResolutionError
    │   ├── ExecutionError
    │   └── IntegrityError
    ├── BackendError        (repro.backends.errors)
    │   ├── TransientBackendError   (retryable hiccup)
    │   ├── BackendUnavailable      (terminal; CLI exit code 7)
    │   └── BackendDegraded         (partial result, carries payload)
    ├── BudgetExceeded      (repro.core.resilience)
    ├── WorkerError         (repro.server.errors; CLI exit code 8)
    │   ├── WorkerCrashed           (worker process died mid-request)
    │   └── WorkerTimeout           (hung worker killed by watchdog)
    ├── ServerDraining      (repro.server.errors; SIGTERM drain refusal)
    └── InjectedFault       (repro.testing.faults)

Errors optionally carry a :class:`Diagnostic` — a structured record of
*where* in the Figure-3 pipeline the failure happened, what input span or
token triggered it, how many candidates were considered, and which
degradation steps the translator had already taken.  This module sits at
the package root with no intra-package imports so that ``sqlkit``,
``engine`` and ``core`` can all depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Pipeline stage names used throughout diagnostics (Figure 3 of the
#: paper, plus the execution engine, the budget/ladder machinery, the
#: query service's admission control and the backend layer).
STAGES = (
    "parse",
    "map",
    "network",
    "compose",
    "execute",
    "budget",
    "admission",
    "backend",
    "artifact",
)


@dataclass
class Diagnostic:
    """Structured description of one pipeline failure or degradation.

    ``stage`` is one of :data:`STAGES`; ``input_span`` is a (start, end)
    character range into the original query text when known; ``token``
    names the offending token / relation-tree label; ``candidates`` is
    how many alternatives had been considered when the stage gave up;
    ``degradation`` lists the ladder rungs taken before this record was
    produced; ``detail`` carries free-form stage-specific counters.
    """

    stage: str = "translate"
    message: str = ""
    token: Optional[str] = None
    input_span: Optional[tuple[int, int]] = None
    candidates: int = 0
    degradation: tuple[str, ...] = ()
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "message": self.message,
            "token": self.token,
            "input_span": self.input_span,
            "candidates": self.candidates,
            "degradation": list(self.degradation),
            "detail": dict(self.detail),
        }

    def render(self) -> str:
        """Multi-line human-readable form (used by the CLI)."""
        lines = [f"stage: {self.stage}"]
        if self.message:
            lines.append(f"what: {self.message}")
        if self.token is not None:
            lines.append(f"token: {self.token}")
        if self.input_span is not None:
            lines.append(f"input span: {self.input_span[0]}..{self.input_span[1]}")
        if self.candidates:
            lines.append(f"candidates considered: {self.candidates}")
        for key, value in self.detail.items():
            lines.append(f"{key}: {value}")
        if self.degradation:
            lines.append("degradation steps:")
            for step in self.degradation:
                lines.append(f"  - {step}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


class ReproError(Exception):
    """Root of the repro exception taxonomy.

    Subclasses may attach a :class:`Diagnostic` via the ``diagnostic``
    keyword; plain ``raise SomeError("message")`` remains valid
    everywhere and simply yields ``diagnostic = None``.
    """

    diagnostic: Optional[Diagnostic] = None

    def __init__(self, *args: object, diagnostic: Optional[Diagnostic] = None) -> None:
        super().__init__(*args)
        if diagnostic is not None:
            self.diagnostic = diagnostic

    @property
    def stage(self) -> Optional[str]:
        """Pipeline stage the error originated in, when known."""
        return self.diagnostic.stage if self.diagnostic is not None else None

    def describe(self) -> str:
        """The message plus the rendered diagnostic, if any."""
        text = str(self)
        if self.diagnostic is not None:
            rendered = self.diagnostic.render()
            indented = "\n".join(f"  {line}" for line in rendered.splitlines())
            text = f"{text}\n{indented}"
        return text
