"""Abstract syntax tree for SQL and Schema-free SQL.

All nodes are frozen dataclasses.  Rewriting (e.g. the Standard SQL
Composer replacing guessed names with exact catalog names, paper §6.2)
goes through :func:`transform`, which rebuilds the tree bottom-up.

Schema-free name uncertainty is carried by :class:`NameTerm`: every
relation or attribute name in the tree records whether the user wrote it
exactly, guessed it (``foo?``), bound it to a dummy variable (``?x``) or
left it anonymous (``?``).  Plain SQL parses to trees whose every NameTerm
is EXACT, so one AST serves both languages.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Union


class Certainty(enum.Enum):
    """How sure the user was about a schema-element name (paper §2.1)."""

    EXACT = "exact"    # plain identifier
    GUESS = "guess"    # ``foo?``
    VAR = "var"        # ``?x``
    ANON = "anon"      # bare ``?`` (parser assigns a fresh dummy variable)


@dataclass(frozen=True)
class NameTerm:
    """One (possibly uncertain) schema-element name."""

    text: str
    certainty: Certainty = Certainty.EXACT

    @property
    def is_known(self) -> bool:
        """True when the user supplied an actual name (exact or guessed)."""
        return self.certainty in (Certainty.EXACT, Certainty.GUESS)

    def render(self) -> str:
        if self.certainty is Certainty.EXACT:
            return self.text
        if self.certainty is Certainty.GUESS:
            return f"{self.text}?"
        if self.certainty is Certainty.VAR:
            return f"?{self.text}"
        return "?"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def exact(name: str) -> NameTerm:
    """Shorthand for an exactly-specified name."""
    return NameTerm(name, Certainty.EXACT)


class Node:
    """Base class for all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (descending into tuples)."""
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            yield from _nodes_in(getattr(self, field.name))

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


def _nodes_in(value: Any) -> Iterator[Node]:
    if isinstance(value, Node):
        yield value
    elif isinstance(value, tuple):
        for item in value:
            yield from _nodes_in(item)


def transform(node: Node, fn: Callable[[Node], Optional[Node]]) -> Node:
    """Rebuild *node* bottom-up, replacing each node with ``fn(node)``.

    *fn* receives a node whose children have already been transformed and
    returns either a replacement node or ``None`` to keep it unchanged.
    """
    replacements: dict[str, Any] = {}
    for field in dataclasses.fields(node):  # type: ignore[arg-type]
        value = getattr(node, field.name)
        new_value = _transform_value(value, fn)
        if new_value is not value:
            replacements[field.name] = new_value
    if replacements:
        node = dataclasses.replace(node, **replacements)  # type: ignore[type-var]
    replaced = fn(node)
    return node if replaced is None else replaced


def _transform_value(value: Any, fn: Callable[[Node], Optional[Node]]) -> Any:
    if isinstance(value, Node):
        return transform(value, fn)
    if isinstance(value, tuple):
        items = tuple(_transform_value(item, fn) for item in value)
        if any(a is not b for a, b in zip(items, value)):
            return items
        return value
    return value


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal(Node):
    """A constant: number, string, boolean, or NULL (``value is None``)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Node):
    """A column reference, optionally qualified: ``[relation.]attribute``.

    Either part may be uncertain; ``year?`` parses to an unqualified
    ColumnRef whose attribute NameTerm is a GUESS.
    """

    attribute: NameTerm
    relation: Optional[NameTerm] = None

    def render(self) -> str:
        if self.relation is not None:
            return f"{self.relation.render()}.{self.attribute.render()}"
        return self.attribute.render()


@dataclass(frozen=True)
class Star(Node):
    """``*`` or ``relation.*`` in a SELECT list or COUNT."""

    qualifier: Optional[NameTerm] = None


@dataclass(frozen=True)
class FuncCall(Node):
    """A function call, aggregate or scalar; ``COUNT(*)`` has a Star arg."""

    name: str
    args: tuple[Node, ...] = ()
    distinct: bool = False


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str  # ``-`` | ``+`` | ``NOT``
    operand: Node


@dataclass(frozen=True)
class BinaryOp(Node):
    op: str  # comparison, arithmetic, AND/OR, ``||``
    left: Node
    right: Node


@dataclass(frozen=True)
class Between(Node):
    expr: Node
    low: Node
    high: Node
    negated: bool = False


@dataclass(frozen=True)
class InList(Node):
    expr: Node
    items: tuple[Node, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like(Node):
    expr: Node
    pattern: Node
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Node):
    expr: Node
    negated: bool = False


@dataclass(frozen=True)
class Case(Node):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    whens: tuple[tuple[Node, Node], ...]
    operand: Optional[Node] = None
    default: Optional[Node] = None


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem(Node):
    expr: Node
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef(Node):
    """One FROM-clause relation, possibly uncertain, possibly aliased."""

    name: NameTerm
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the rest of the query."""
        return self.alias if self.alias is not None else self.name.text


@dataclass(frozen=True)
class Join(Node):
    """An explicit ``JOIN ... ON`` between two FROM items."""

    left: Node  # TableRef | Join
    right: Node
    kind: str = "inner"  # inner | left | right | cross
    condition: Optional[Node] = None


@dataclass(frozen=True)
class OrderItem(Node):
    expr: Node
    ascending: bool = True


@dataclass(frozen=True)
class Select(Node):
    """A single SELECT block.

    In Schema-free SQL the FROM clause may be empty even though columns
    are referenced — the translator fills it in (join path relaxation).
    """

    items: tuple[SelectItem, ...]
    from_items: tuple[Node, ...] = ()  # TableRef | Join
    where: Optional[Node] = None
    group_by: tuple[Node, ...] = ()
    having: Optional[Node] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class SetOp(Node):
    """``UNION [ALL]`` of two query blocks."""

    op: str  # currently only "union"
    left: Node  # Select | SetOp
    right: Node
    all: bool = False


#: Sub-query wrapper expressions -------------------------------------------

@dataclass(frozen=True)
class ScalarSubquery(Node):
    query: Node  # Select | SetOp


@dataclass(frozen=True)
class Exists(Node):
    query: Node
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Node):
    expr: Node
    query: Node
    negated: bool = False


@dataclass(frozen=True)
class QuantifiedCompare(Node):
    """``expr op ANY/ALL (subquery)``."""

    expr: Node
    op: str
    quantifier: str  # "any" | "all"
    query: Node


Query = Union[Select, SetOp]

SUBQUERY_NODES = (ScalarSubquery, Exists, InSubquery, QuantifiedCompare)


def subqueries_of(node: Node) -> Iterator[Node]:
    """Yield the Select/SetOp blocks *directly* nested inside *node* —
    i.e. first-level sub-queries only, without descending into them."""
    for child in node.children():
        if isinstance(child, (Select, SetOp)):
            yield child
        else:
            yield from subqueries_of(child)
