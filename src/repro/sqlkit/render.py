"""Render AST nodes back to SQL text.

Rendering is precedence-aware so round-tripping ``a AND (b OR c)`` keeps
its parentheses.  Schema-free uncertainty markers render back to their
surface forms (``foo?``, ``?x``, ``?``), so a partially-translated query
is always printable — useful for debugging and for showing the top-k
translations to the user (paper §2.2.4).
"""

from __future__ import annotations

import re
from typing import Optional

from . import ast
from .tokens import KEYWORDS

#: Names that can appear bare in SQL text; anything else must be quoted.
_PLAIN_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

#: Binding strength; higher binds tighter.  Used to decide parentheses.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
}
_PREDICATE_LEVEL = 3  # BETWEEN / IN / LIKE / IS NULL


def render(node: ast.Node) -> str:
    """Render any query or expression node to SQL text."""
    if isinstance(node, (ast.Select, ast.SetOp)):
        return _render_query(node)
    return _render_expr(node, 0)


def render_identifier(name: str) -> str:
    """Render *name* as a SQL identifier, quoting when required.

    Reserved words and names containing non-identifier characters (as in
    reflected real-world schemas — ``order``, ``line item``) are wrapped
    in double quotes with embedded ``"`` doubled, so the emitted SQL is
    accepted by SQLite and round-trips through our own tokenizer.
    """
    if _PLAIN_IDENT.match(name) and name.lower() not in KEYWORDS:
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _render_name(term: ast.NameTerm) -> str:
    """Render a NameTerm; only EXACT names are plain identifiers that may
    need quoting — uncertainty markers keep their surface forms."""
    if term.certainty is ast.Certainty.EXACT:
        return render_identifier(term.text)
    return term.render()


def _render_query(node: ast.Node) -> str:
    if isinstance(node, ast.SetOp):
        keyword = "UNION ALL" if node.all else "UNION"
        return f"{_render_query(node.left)} {keyword} {_render_query(node.right)}"
    assert isinstance(node, ast.Select)
    parts = ["SELECT"]
    if node.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(item) for item in node.items))
    if node.from_items:
        parts.append("FROM")
        parts.append(", ".join(_render_from_item(item) for item in node.from_items))
    if node.where is not None:
        parts.append("WHERE")
        parts.append(_render_expr(node.where, 0))
    if node.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(_render_expr(e, 0) for e in node.group_by))
    if node.having is not None:
        parts.append("HAVING")
        parts.append(_render_expr(node.having, 0))
    if node.order_by:
        parts.append("ORDER BY")
        parts.append(
            ", ".join(
                _render_expr(item.expr, 0) + ("" if item.ascending else " DESC")
                for item in node.order_by
            )
        )
    if node.limit is not None:
        parts.append(f"LIMIT {node.limit}")
        if node.offset is not None:
            parts.append(f"OFFSET {node.offset}")
    return " ".join(parts)


def _render_select_item(item: ast.SelectItem) -> str:
    text = _render_expr(item.expr, 0)
    if item.alias is not None:
        text += f" AS {render_identifier(item.alias)}"
    return text


def _render_from_item(item: ast.Node) -> str:
    if isinstance(item, ast.TableRef):
        text = _render_name(item.name)
        if item.alias is not None:
            text += f" AS {render_identifier(item.alias)}"
        return text
    if isinstance(item, ast.Join):
        left = _render_from_item(item.left)
        right = _render_from_item(item.right)
        keyword = {"inner": "JOIN", "left": "LEFT JOIN",
                   "right": "RIGHT JOIN", "cross": "CROSS JOIN"}[item.kind]
        text = f"{left} {keyword} {right}"
        if item.condition is not None:
            text += f" ON {_render_expr(item.condition, 0)}"
        return text
    raise TypeError(f"not a FROM item: {item!r}")  # pragma: no cover


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _parenthesize(text: str, level: int, parent_level: int) -> str:
    return f"({text})" if level < parent_level else text


def _render_expr(node: ast.Node, parent_level: int) -> str:
    if isinstance(node, ast.Literal):
        return _render_literal(node.value)
    if isinstance(node, ast.ColumnRef):
        text = _render_name(node.attribute)
        if node.relation is not None:
            text = f"{_render_name(node.relation)}.{text}"
        return text
    if isinstance(node, ast.Star):
        return f"{_render_name(node.qualifier)}.*" if node.qualifier else "*"
    if isinstance(node, ast.FuncCall):
        inner = ", ".join(_render_expr(a, 0) for a in node.args)
        if node.distinct:
            inner = f"DISTINCT {inner}"
        return f"{node.name}({inner})"
    if isinstance(node, ast.UnaryOp):
        if node.op == "not":
            text = f"NOT {_render_expr(node.operand, _PRECEDENCE['and'])}"
            return _parenthesize(text, _PRECEDENCE["and"], parent_level)
        return f"{node.op}{_render_expr(node.operand, 7)}"
    if isinstance(node, ast.BinaryOp):
        level = _PRECEDENCE[node.op]
        op_text = node.op.upper() if node.op in ("and", "or") else node.op
        left = _render_expr(node.left, level)
        # right side of same-precedence needs parens only for non-associative
        # ops; comparisons never chain so bump the right side's requirement.
        right = _render_expr(node.right, level + (0 if node.op in ("and", "or") else 1))
        return _parenthesize(f"{left} {op_text} {right}", level, parent_level)
    if isinstance(node, ast.Between):
        keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
        text = (
            f"{_render_expr(node.expr, _PREDICATE_LEVEL + 1)} {keyword} "
            f"{_render_expr(node.low, _PREDICATE_LEVEL + 1)} AND "
            f"{_render_expr(node.high, _PREDICATE_LEVEL + 1)}"
        )
        return _parenthesize(text, _PREDICATE_LEVEL, parent_level)
    if isinstance(node, ast.InList):
        keyword = "NOT IN" if node.negated else "IN"
        items = ", ".join(_render_expr(e, 0) for e in node.items)
        text = f"{_render_expr(node.expr, _PREDICATE_LEVEL + 1)} {keyword} ({items})"
        return _parenthesize(text, _PREDICATE_LEVEL, parent_level)
    if isinstance(node, ast.InSubquery):
        keyword = "NOT IN" if node.negated else "IN"
        text = (
            f"{_render_expr(node.expr, _PREDICATE_LEVEL + 1)} {keyword} "
            f"({_render_query(node.query)})"
        )
        return _parenthesize(text, _PREDICATE_LEVEL, parent_level)
    if isinstance(node, ast.Like):
        keyword = "NOT LIKE" if node.negated else "LIKE"
        text = (
            f"{_render_expr(node.expr, _PREDICATE_LEVEL + 1)} {keyword} "
            f"{_render_expr(node.pattern, _PREDICATE_LEVEL + 1)}"
        )
        return _parenthesize(text, _PREDICATE_LEVEL, parent_level)
    if isinstance(node, ast.IsNull):
        keyword = "IS NOT NULL" if node.negated else "IS NULL"
        text = f"{_render_expr(node.expr, _PREDICATE_LEVEL + 1)} {keyword}"
        return _parenthesize(text, _PREDICATE_LEVEL, parent_level)
    if isinstance(node, ast.Exists):
        prefix = "NOT EXISTS" if node.negated else "EXISTS"
        return f"{prefix} ({_render_query(node.query)})"
    if isinstance(node, ast.ScalarSubquery):
        return f"({_render_query(node.query)})"
    if isinstance(node, ast.QuantifiedCompare):
        return (
            f"{_render_expr(node.expr, _PREDICATE_LEVEL + 1)} {node.op} "
            f"{node.quantifier.upper()} ({_render_query(node.query)})"
        )
    if isinstance(node, ast.Case):
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(_render_expr(node.operand, 0))
        for condition, result in node.whens:
            parts.append(
                f"WHEN {_render_expr(condition, 0)} THEN {_render_expr(result, 0)}"
            )
        if node.default is not None:
            parts.append(f"ELSE {_render_expr(node.default, 0)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot render {type(node).__name__}")  # pragma: no cover


def _render_query_maybe(node: Optional[ast.Node]) -> Optional[str]:
    return None if node is None else _render_query(node)
