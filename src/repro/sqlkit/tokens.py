"""Token definitions for the SQL / Schema-free SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import Diagnostic, ReproError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"              # bare identifier, e.g. ``name``
    GUESS = "guess"              # guessed identifier, e.g. ``name?``
    VAR = "var"                  # named placeholder, e.g. ``?x``
    ANON = "anon"                # anonymous placeholder, bare ``?``
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"        # = <> != < <= > >= + - * / || %
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: Reserved words recognised case-insensitively.  Everything else is an
#: identifier.  Aggregate/scalar function names are *not* reserved so they
#: can double as column names (the paper treats them as schema-irrelevant).
KEYWORDS = frozenset(
    {
        "select", "from", "where", "group", "order", "by", "having",
        "limit", "offset", "as", "and", "or", "not", "in", "like",
        "between", "is", "null", "exists", "distinct", "all", "any",
        "union", "asc", "desc", "on", "join", "inner", "left", "right",
        "outer", "cross", "case", "when", "then", "else", "end",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    @property
    def upper(self) -> str:
        return self.value.upper()

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value.lower() in words

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.value}:{self.value!r}@{self.position}"


class SqlSyntaxError(ReproError, SyntaxError):
    """Raised on malformed SQL / Schema-free SQL input."""

    def __init__(self, message: str, sql: str = "", position: int = -1) -> None:
        plain = message
        if position >= 0 and sql:
            prefix = sql[:position].rsplit("\n", 1)[-1]
            message = f"{message} (at position {position}, after {prefix[-40:]!r})"
        span = (position, position + 1) if position >= 0 else None
        super().__init__(
            message,
            diagnostic=Diagnostic(stage="parse", message=plain, input_span=span),
        )
        self.position = position
