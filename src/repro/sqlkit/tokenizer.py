"""Tokenizer for SQL and Schema-free SQL.

Beyond standard SQL lexemes, three Schema-free SQL forms are recognised
(paper Section 2.1):

* ``foo?``  — a *guessed* identifier (the user thinks the name is ``foo``);
* ``?x``    — a placeholder bound to the dummy variable ``x``;
* ``?``     — an anonymous placeholder (fresh dummy variable per occurrence).

The ``?`` must be adjacent to its identifier: ``foo ?`` is a guessed-free
identifier followed by an anonymous placeholder, exactly as a whitespace-
sensitive reading of the paper's grammar implies.
"""

from __future__ import annotations

from .tokens import KEYWORDS, SqlSyntaxError, Token, TokenType

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_BODY = _IDENT_START | frozenset("0123456789$")

#: Multi-character operators, longest first so `<=` wins over `<`.
_OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")

_SINGLE = {
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ";": TokenType.SEMICOLON,
}


def tokenize(sql: str) -> list[Token]:
    """Convert *sql* into a token list terminated by an EOF token."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        # -- whitespace ------------------------------------------------
        if ch.isspace():
            i += 1
            continue
        # -- comments --------------------------------------------------
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SqlSyntaxError("unterminated block comment", sql, i)
            i = end + 2
            continue
        # -- string literals (single quotes, '' escape) ----------------
        if ch == "'":
            token, i = _read_string(sql, i)
            tokens.append(token)
            continue
        if ch == '"':
            token, i = _read_quoted_identifier(sql, i)
            tokens.append(token)
            continue
        # -- numbers ---------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # ``1.name`` is a number then DOT IDENT; require a digit
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        # -- placeholders: ?x and bare ? -------------------------------
        if ch == "?":
            j = i + 1
            if j < n and sql[j] in _IDENT_START:
                k = j
                while k < n and sql[k] in _IDENT_BODY:
                    k += 1
                tokens.append(Token(TokenType.VAR, sql[j:k], i))
                i = k
            else:
                tokens.append(Token(TokenType.ANON, "?", i))
                i = j
            continue
        # -- identifiers / keywords / guesses --------------------------
        if ch in _IDENT_START:
            j = i
            while j < n and sql[j] in _IDENT_BODY:
                j += 1
            word = sql[i:j]
            if j < n and sql[j] == "?":
                tokens.append(Token(TokenType.GUESS, word, i))
                i = j + 1
            elif word.lower() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word, i))
                i = j
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
                i = j
            continue
        # -- operators -------------------------------------------------
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                break
        else:
            if ch in _SINGLE:
                tokens.append(Token(_SINGLE[ch], ch, i))
                i += 1
            else:
                raise SqlSyntaxError(f"unexpected character {ch!r}", sql, i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_quoted_identifier(sql: str, start: int) -> tuple[Token, int]:
    """Read a double-quoted identifier with ``""`` escaping.

    Quoted names are always IDENT tokens, never keywords, so ``"order"``
    is a legal relation name — required for reflected real-world schemas.
    """
    parts: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        if sql[i] == '"':
            if i + 1 < n and sql[i + 1] == '"':
                parts.append('"')
                i += 2
                continue
            return Token(TokenType.IDENT, "".join(parts), start), i + 1
        parts.append(sql[i])
        i += 1
    raise SqlSyntaxError("unterminated quoted identifier", sql, start)


def _read_string(sql: str, start: int) -> tuple[Token, int]:
    """Read a single-quoted string literal with ``''`` escaping.

    Returns the token and the index just past the closing quote.
    """
    parts: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        if sql[i] == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), i + 1
        parts.append(sql[i])
        i += 1
    raise SqlSyntaxError("unterminated string literal", sql, start)
