"""Recursive-descent parser for SQL and Schema-free SQL.

One grammar serves both languages: plain SQL is the special case in which
every name is EXACT and the FROM clause is fully populated.  Schema-free
SQL additionally allows guessed names (``foo?``), placeholders (``?x``,
``?``) anywhere a relation or attribute name may appear, and an absent or
partial FROM clause (paper Section 2.1).

The supported SQL subset covers everything the paper's experiments need:
SELECT [DISTINCT], FROM with comma-lists, aliases and explicit JOIN..ON,
WHERE, GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET, arithmetic, comparisons,
BETWEEN / IN / LIKE / IS NULL / EXISTS / ANY / ALL, CASE, scalar and
aggregate functions, UNION [ALL] and arbitrarily nested sub-queries.
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .ast import Certainty, NameTerm
from .tokens import SqlSyntaxError, Token, TokenType
from .tokenizer import tokenize

_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})


class Parser:
    """Single-use parser over a token stream."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self._anon_counter = 0

    # ------------------------------------------------------------------
    # token-stream helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.accept_keyword(word)
        if token is None:
            self.error(f"expected {word.upper()}")
        return token

    def accept(self, token_type: TokenType, value: Optional[str] = None) -> Optional[Token]:
        token = self.current
        if token.type is token_type and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self.accept(token_type, value)
        if token is None:
            what = value if value is not None else token_type.value
            self.error(f"expected {what!r}, found {self.current.value!r}")
        return token

    def error(self, message: str) -> None:
        raise SqlSyntaxError(message, self.sql, self.current.position)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def parse_query(self) -> ast.Node:
        query = self._query()
        self.accept(TokenType.SEMICOLON)
        if self.current.type is not TokenType.EOF:
            self.error(f"unexpected trailing input {self.current.value!r}")
        return query

    def _query(self) -> ast.Node:
        left: ast.Node = self._select_block()
        while self.accept_keyword("union"):
            all_flag = self.accept_keyword("all") is not None
            right = self._select_block()
            left = ast.SetOp("union", left, right, all=all_flag)
        return left

    # ------------------------------------------------------------------
    # SELECT block
    # ------------------------------------------------------------------
    def _select_block(self) -> ast.Select:
        if self.accept(TokenType.LPAREN):
            query = self._query()
            self.expect(TokenType.RPAREN)
            if not isinstance(query, ast.Select):
                self.error("parenthesised UNION blocks are not supported here")
            return query  # type: ignore[return-value]
        self.expect_keyword("select")
        distinct = False
        if self.accept_keyword("distinct"):
            distinct = True
        else:
            self.accept_keyword("all")
        items = self._select_list()
        from_items: tuple[ast.Node, ...] = ()
        if self.accept_keyword("from"):
            from_items = self._from_list()
        where = self._expr() if self.accept_keyword("where") else None
        group_by: tuple[ast.Node, ...] = ()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = self._expr_list()
        having = self._expr() if self.accept_keyword("having") else None
        order_by: tuple[ast.OrderItem, ...] = ()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self._order_list()
        limit = offset = None
        if self.accept_keyword("limit"):
            limit = int(self.expect(TokenType.NUMBER).value)
            if self.accept_keyword("offset"):
                offset = int(self.expect(TokenType.NUMBER).value)
        return ast.Select(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _select_list(self) -> tuple[ast.SelectItem, ...]:
        items = [self._select_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> ast.SelectItem:
        if self.accept(TokenType.OPERATOR, "*"):
            return ast.SelectItem(ast.Star())
        expr = self._expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self._alias_name()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def _alias_name(self) -> str:
        token = self.current
        if token.type in (TokenType.IDENT, TokenType.GUESS):
            self.advance()
            return token.value
        self.error("expected alias name")
        raise AssertionError  # pragma: no cover - error() always raises

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _from_list(self) -> tuple[ast.Node, ...]:
        items = [self._from_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._from_item())
        return tuple(items)

    def _from_item(self) -> ast.Node:
        item: ast.Node = self._table_ref()
        while True:
            kind = self._join_kind()
            if kind is None:
                return item
            right = self._table_ref()
            condition = self._expr() if self.accept_keyword("on") else None
            item = ast.Join(item, right, kind=kind, condition=condition)

    def _join_kind(self) -> Optional[str]:
        if self.accept_keyword("join"):
            return "inner"
        for kind in ("inner", "left", "right", "cross"):
            if self.current.is_keyword(kind):
                self.advance()
                self.accept_keyword("outer")
                self.expect_keyword("join")
                return kind
        return None

    def _table_ref(self) -> ast.TableRef:
        name = self._name_term()
        alias = None
        if self.accept_keyword("as"):
            alias = self._alias_name()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.TableRef(name, alias)

    # ------------------------------------------------------------------
    # names
    # ------------------------------------------------------------------
    def _name_term(self) -> NameTerm:
        token = self.current
        if token.type is TokenType.IDENT:
            self.advance()
            return NameTerm(token.value, Certainty.EXACT)
        if token.type is TokenType.GUESS:
            self.advance()
            return NameTerm(token.value, Certainty.GUESS)
        if token.type is TokenType.VAR:
            self.advance()
            return NameTerm(token.value, Certainty.VAR)
        if token.type is TokenType.ANON:
            self.advance()
            self._anon_counter += 1
            return NameTerm(f"_anon{self._anon_counter}", Certainty.ANON)
        self.error(f"expected a name, found {token.value!r}")
        raise AssertionError  # pragma: no cover

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expr_list(self) -> tuple[ast.Node, ...]:
        items = [self._expr()]
        while self.accept(TokenType.COMMA):
            items.append(self._expr())
        return tuple(items)

    def _order_list(self) -> tuple[ast.OrderItem, ...]:
        items = []
        while True:
            expr = self._expr()
            ascending = True
            if self.accept_keyword("desc"):
                ascending = False
            else:
                self.accept_keyword("asc")
            items.append(ast.OrderItem(expr, ascending))
            if not self.accept(TokenType.COMMA):
                return tuple(items)

    def _expr(self) -> ast.Node:
        return self._or_expr()

    def _or_expr(self) -> ast.Node:
        left = self._and_expr()
        while self.accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Node:
        left = self._not_expr()
        while self.accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Node:
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Node:
        left = self._additive()
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = self.advance().value
            if op == "!=":
                op = "<>"
            quantifier = None
            if self.current.is_keyword("any", "all"):
                quantifier = self.advance().value.lower()
            if quantifier is not None:
                self.expect(TokenType.LPAREN)
                query = self._query()
                self.expect(TokenType.RPAREN)
                return ast.QuantifiedCompare(left, op, quantifier, query)
            return ast.BinaryOp(op, left, self._additive())
        negated = False
        if self.current.is_keyword("not"):
            after = self.peek()
            if after.is_keyword("between", "in", "like"):
                self.advance()
                negated = True
        if self.accept_keyword("between"):
            low = self._additive()
            self.expect_keyword("and")
            high = self._additive()
            return ast.Between(left, low, high, negated=negated)
        if self.accept_keyword("in"):
            self.expect(TokenType.LPAREN)
            if self.current.is_keyword("select"):
                query = self._query()
                self.expect(TokenType.RPAREN)
                return ast.InSubquery(left, query, negated=negated)
            items = self._expr_list()
            self.expect(TokenType.RPAREN)
            return ast.InList(left, items, negated=negated)
        if self.accept_keyword("like"):
            return ast.Like(left, self._additive(), negated=negated)
        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return ast.IsNull(left, negated=is_negated)
        return left

    def _additive(self) -> ast.Node:
        left = self._multiplicative()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                self.advance()
                left = ast.BinaryOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Node:
        left = self._unary()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                self.advance()
                left = ast.BinaryOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Node:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in ("-", "+"):
            self.advance()
            return ast.UnaryOp(token.value, self._unary())
        return self._primary()

    def _primary(self) -> ast.Node:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            return ast.Literal(float(text) if "." in text else int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("case"):
            return self._case()
        if token.is_keyword("exists"):
            self.advance()
            self.expect(TokenType.LPAREN)
            query = self._query()
            self.expect(TokenType.RPAREN)
            return ast.Exists(query)
        if token.type is TokenType.LPAREN:
            self.advance()
            if self.current.is_keyword("select"):
                query = self._query()
                self.expect(TokenType.RPAREN)
                return ast.ScalarSubquery(query)
            expr = self._expr()
            self.expect(TokenType.RPAREN)
            return expr
        if token.type in (
            TokenType.IDENT,
            TokenType.GUESS,
            TokenType.VAR,
            TokenType.ANON,
        ):
            # function call?
            if (
                token.type is TokenType.IDENT
                and self.peek().type is TokenType.LPAREN
            ):
                return self._func_call()
            return self._column_ref()
        self.error(f"unexpected token {token.value!r}")
        raise AssertionError  # pragma: no cover

    def _case(self) -> ast.Node:
        self.expect_keyword("case")
        operand = None
        if not self.current.is_keyword("when"):
            operand = self._expr()
        whens: list[tuple[ast.Node, ast.Node]] = []
        while self.accept_keyword("when"):
            condition = self._expr()
            self.expect_keyword("then")
            result = self._expr()
            whens.append((condition, result))
        if not whens:
            self.error("CASE requires at least one WHEN branch")
        default = self._expr() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        return ast.Case(tuple(whens), operand, default)

    def _func_call(self) -> ast.Node:
        name = self.expect(TokenType.IDENT).value
        self.expect(TokenType.LPAREN)
        distinct = self.accept_keyword("distinct") is not None
        args: list[ast.Node] = []
        if self.accept(TokenType.OPERATOR, "*"):
            args.append(ast.Star())
        elif self.current.type is not TokenType.RPAREN:
            args.append(self._expr())
            while self.accept(TokenType.COMMA):
                args.append(self._expr())
        self.expect(TokenType.RPAREN)
        return ast.FuncCall(name.lower(), tuple(args), distinct=distinct)

    def _column_ref(self) -> ast.Node:
        first = self._name_term()
        if self.accept(TokenType.DOT):
            if self.accept(TokenType.OPERATOR, "*"):
                return ast.Star(qualifier=first)
            second = self._name_term()
            return ast.ColumnRef(attribute=second, relation=first)
        return ast.ColumnRef(attribute=first)


def parse(sql: str) -> ast.Node:
    """Parse *sql* (SQL or Schema-free SQL) into an AST query node."""
    return Parser(sql).parse_query()


def parse_expression(sql: str) -> ast.Node:
    """Parse a standalone expression (used by tests and the engine)."""
    parser = Parser(sql)
    expr = parser._expr()
    if parser.current.type is not TokenType.EOF:
        parser.error(f"unexpected trailing input {parser.current.value!r}")
    return expr
