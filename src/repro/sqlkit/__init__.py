"""SQL toolkit: tokenizer, AST, parser and renderer for SQL and SF-SQL."""

from . import ast
from .parser import Parser, parse, parse_expression
from .render import render, render_identifier
from .tokenizer import tokenize
from .tokens import SqlSyntaxError, Token, TokenType

__all__ = [
    "Parser",
    "SqlSyntaxError",
    "Token",
    "TokenType",
    "ast",
    "parse",
    "parse_expression",
    "render",
    "render_identifier",
    "tokenize",
]
