"""Differential correctness harness: one workload, two backends.

The strongest correctness check we have for the translator and both
execution paths: load the same dataset into :class:`~repro.backends.
MemoryBackend` and :class:`~repro.backends.SqliteBackend`, run every
workload query end-to-end (SF-SQL → translate → execute) on each, and
compare row *multisets*.  A divergence means one of the backends — or
the translation statistics feeding them — is wrong.

Comparison rules (DESIGN.md §12):

* rows are compared as unordered multisets after normalisation —
  booleans to 0/1, dates to ISO text, floats rounded to 9 decimals —
  because SQLite has no bool/date storage classes and the engine does;
* the translated SQL text is *recorded* but never failed on: both
  backends share one translator and context, so the SQL should match,
  and ``sql_match`` makes a regression visible without coupling the
  harness to rendering details;
* when both backends raise, the pair agrees (``agreed-error``) — error
  *messages* are backend-specific and not compared;
* known, documented semantic divergences are declared up front via
  *expectations* (qid → reason).  An expected divergence that actually
  agrees is itself a failure (``stale-expectation``): expectations must
  not rot into silent skips.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..backends import Backend, as_backend
from ..core.config import DEFAULT_CONFIG, TranslatorConfig
from ..core.translator import SchemaFreeTranslator
from ..workloads.base import WorkloadQuery

__all__ = [
    "DifferentialHarness",
    "DifferentialRecord",
    "DifferentialReport",
    "Outcome",
    "workload_pairs",
]

#: record statuses
MATCH = "match"
DIVERGENT = "divergent"
EXPECTED = "expected-divergence"
STALE_EXPECTATION = "stale-expectation"
AGREED_ERROR = "agreed-error"
TRANSLATION_ERROR = "translation-error"

_AGREEING = frozenset({MATCH, AGREED_ERROR, EXPECTED})


def workload_pairs(
    queries: Iterable[WorkloadQuery],
) -> list[Tuple[str, str]]:
    """Flatten workload queries to ``(qid, sf_sql)`` pairs.

    Queries with simulated-user variants (Figure 14) contribute one pair
    per variant (``S1#u3``); queries without an SF-SQL form fall back to
    their gold SQL, which still exercises both execution paths.
    """
    pairs: list[Tuple[str, str]] = []
    for query in queries:
        if query.user_variants:
            for index, variant in enumerate(query.user_variants, 1):
                pairs.append((f"{query.qid}#u{index}", variant))
        else:
            pairs.append((query.qid, query.sf_sql or query.gold_sql))
    return pairs


def normalize_value(value: object) -> object:
    """Collapse representation differences that are not semantic."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, float):
        return round(value, 9)
    return value


def normalize_rows(rows: Iterable[Sequence[object]]) -> dict:
    """Order-insensitive multiset of normalised rows."""
    counts: dict = {}
    for row in rows:
        key = tuple(normalize_value(v) for v in row)
        counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass
class Outcome:
    """What one backend did with one query."""

    backend: str
    sql: Optional[str] = None
    rows: Optional[list] = None
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "sql": self.sql,
            "row_count": None if self.rows is None else len(self.rows),
            "error": self.error,
            "error_type": self.error_type,
        }


@dataclass
class DifferentialRecord:
    """The agreement verdict for one (qid, query) pair."""

    qid: str
    query: str
    status: str
    reference: Outcome
    candidate: Outcome
    sql_match: Optional[bool] = None
    detail: str = ""
    expected_reason: Optional[str] = None

    @property
    def agreed(self) -> bool:
        return self.status in _AGREEING

    def as_dict(self) -> dict:
        return {
            "qid": self.qid,
            "query": self.query,
            "status": self.status,
            "sql_match": self.sql_match,
            "detail": self.detail,
            "expected_reason": self.expected_reason,
            "reference": self.reference.as_dict(),
            "candidate": self.candidate.as_dict(),
        }


@dataclass
class DifferentialReport:
    """All records of one harness run plus summary accounting."""

    reference: str
    candidate: str
    records: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every query agrees (declared divergences included)."""
        return all(record.agreed for record in self.records)

    @property
    def disagreements(self) -> list:
        return [r for r in self.records if not r.agreed]

    def summary(self) -> dict:
        counts: dict = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "reference": self.reference,
            "candidate": self.candidate,
            "ok": self.ok,
            "total": len(self.records),
            "summary": self.summary(),
            "records": [record.as_dict() for record in self.records],
        }


class DifferentialHarness:
    """Run queries end-to-end on two backends and compare results.

    Each backend gets its own translator (statistics flow from that
    backend alone), so the harness also checks that backend-sourced
    statistics reproduce the reference translation — ``sql_match`` is
    recorded per query.
    """

    def __init__(
        self,
        reference,
        candidate,
        config: TranslatorConfig = DEFAULT_CONFIG,
        expectations: Optional[Mapping[str, str]] = None,
        top_k: int = 1,
    ) -> None:
        self.reference: Backend = as_backend(reference)
        self.candidate: Backend = as_backend(candidate)
        self.expectations = dict(expectations or {})
        self.top_k = top_k
        self._translators = {
            id(self.reference): SchemaFreeTranslator(self.reference, config),
            id(self.candidate): SchemaFreeTranslator(self.candidate, config),
        }

    def _run_one(self, backend: Backend, query: str) -> Outcome:
        outcome = Outcome(backend=backend.kind)
        translator = self._translators[id(backend)]
        try:
            translation = translator.translate_best(query)
            outcome.sql = translation.sql
        except Exception as exc:  # errors are the measurement: recorded so the harness REPL survives
            outcome.error = f"translation: {exc}"
            outcome.error_type = type(exc).__name__
            return outcome
        try:
            result = backend.execute(translation.query)
        except Exception as exc:  # errors are the measurement: recorded so the harness REPL survives
            outcome.error = str(exc)
            outcome.error_type = type(exc).__name__
            return outcome
        outcome.rows = list(result.rows)
        return outcome

    def check(self, qid: str, query: str) -> DifferentialRecord:
        """Translate and execute *query* on both backends; compare."""
        reference = self._run_one(self.reference, query)
        candidate = self._run_one(self.candidate, query)
        sql_match = (
            reference.sql == candidate.sql
            if reference.sql is not None and candidate.sql is not None
            else None
        )
        expected_reason = self.expectations.get(qid)
        status, detail = self._verdict(reference, candidate)
        if expected_reason is not None:
            # A declared divergence must actually diverge — otherwise the
            # expectation is stale and hiding a behavior change.
            status = EXPECTED if status == DIVERGENT else STALE_EXPECTATION
            if status == STALE_EXPECTATION:
                detail = (
                    f"expected divergence ({expected_reason}) but backends agree"
                )
        return DifferentialRecord(
            qid=qid,
            query=query,
            status=status,
            reference=reference,
            candidate=candidate,
            sql_match=sql_match,
            detail=detail,
            expected_reason=expected_reason,
        )

    @staticmethod
    def _verdict(reference: Outcome, candidate: Outcome) -> Tuple[str, str]:
        if reference.failed and candidate.failed:
            if (reference.error or "").startswith("translation:") and (
                candidate.error or ""
            ).startswith("translation:"):
                # Both translators rejected the query: nothing differential
                # was tested, so surface it instead of counting agreement.
                return (
                    TRANSLATION_ERROR,
                    f"both translators rejected the query: {reference.error}",
                )
            return AGREED_ERROR, ""
        if reference.failed or candidate.failed:
            failed = reference if reference.failed else candidate
            return (
                DIVERGENT,
                f"only {failed.backend} failed: "
                f"{failed.error_type}: {failed.error}",
            )
        ref_rows = normalize_rows(reference.rows or [])
        cand_rows = normalize_rows(candidate.rows or [])
        if ref_rows == cand_rows:
            return MATCH, ""
        only_ref = {k: v for k, v in ref_rows.items() if cand_rows.get(k) != v}
        only_cand = {k: v for k, v in cand_rows.items() if ref_rows.get(k) != v}
        sample_ref = list(only_ref)[:3]
        sample_cand = list(only_cand)[:3]
        return (
            DIVERGENT,
            f"{len(only_ref)} row(s) differ on {reference.backend}, "
            f"{len(only_cand)} on {candidate.backend}; "
            f"e.g. {sample_ref!r} vs {sample_cand!r}",
        )

    def run(
        self,
        queries: Union[Iterable[WorkloadQuery], Iterable[Tuple[str, str]]],
    ) -> DifferentialReport:
        """Check every query; accepts WorkloadQuery lists or (qid, sql) pairs."""
        materialised = list(queries)
        if materialised and isinstance(materialised[0], WorkloadQuery):
            pairs = workload_pairs(materialised)
        else:
            pairs = list(materialised)
        report = DifferentialReport(
            reference=self.reference.kind, candidate=self.candidate.kind
        )
        for qid, query in pairs:
            report.records.append(self.check(qid, query))
        return report
