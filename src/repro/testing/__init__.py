"""Test-support utilities shipped with the package: fault injection
(both the virtual-clock injector and the chaos :class:`FaultyBackend`),
the cross-backend differential correctness harness, and the
schema-evolution harness."""

from .differential import (
    DifferentialHarness,
    DifferentialRecord,
    DifferentialReport,
    workload_pairs,
)
from .evolution import (
    DropForeignKey,
    EvolutionHarness,
    EvolutionReport,
    EvolvedSchema,
    MergeTables,
    MutationRecord,
    RenameColumn,
    RenameTable,
    SplitTable,
    VocabularyRecovery,
    evolve,
    recover_vocabulary,
    standard_mutations,
)
from .faults import (
    BACKEND_FAULT_KINDS,
    BACKEND_OPS,
    BackendFault,
    Fault,
    FaultInjector,
    FaultyBackend,
    InjectedFault,
    VirtualClock,
)

__all__ = [
    "BACKEND_FAULT_KINDS",
    "BACKEND_OPS",
    "BackendFault",
    "DifferentialHarness",
    "DifferentialRecord",
    "DifferentialReport",
    "DropForeignKey",
    "EvolutionHarness",
    "EvolutionReport",
    "EvolvedSchema",
    "Fault",
    "FaultInjector",
    "FaultyBackend",
    "InjectedFault",
    "MergeTables",
    "MutationRecord",
    "RenameColumn",
    "RenameTable",
    "SplitTable",
    "VirtualClock",
    "VocabularyRecovery",
    "evolve",
    "recover_vocabulary",
    "standard_mutations",
    "workload_pairs",
]
