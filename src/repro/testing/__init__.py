"""Test-support utilities shipped with the package (fault injection and
the cross-backend differential correctness harness)."""

from .differential import (
    DifferentialHarness,
    DifferentialRecord,
    DifferentialReport,
    workload_pairs,
)
from .faults import Fault, FaultInjector, InjectedFault

__all__ = [
    "DifferentialHarness",
    "DifferentialRecord",
    "DifferentialReport",
    "Fault",
    "FaultInjector",
    "InjectedFault",
    "workload_pairs",
]
