"""Test-support utilities shipped with the package (fault injection)."""

from .faults import Fault, FaultInjector, InjectedFault

__all__ = ["Fault", "FaultInjector", "InjectedFault"]
