"""Deterministic fault injection for the translation pipeline.

A :class:`FaultInjector` is handed to ``SchemaFreeTranslator`` (the
``faults`` parameter); the translator calls :meth:`FaultInjector.fire`
at the entry of every pipeline stage (``parse``, ``map``, ``network``,
``compose``).  A registered fault then either

* **delays** — advances the injector's *virtual clock* by a fixed number
  of seconds.  Budgets built with ``clock=injector.clock`` observe the
  jump and hit their deadline deterministically, with no real sleeping,
  so budget-timeout paths are testable in microseconds;
* **errors** — raises a caller-supplied exception (or a default
  :class:`InjectedFault`) out of the stage; or
* **exhausts the budget** — calls ``Budget.exhaust`` on the active
  budget (or raises :class:`BudgetExceeded` directly when the stage runs
  unbudgeted).

Faults trigger on the *n*-th visit to their stage (``trigger``, 1-based)
and by default fire exactly once; ``repeat=True`` keeps firing from the
trigger-th visit onward, which is how tests starve every rung of the
degradation ladder at once.  Everything is counter-based — no wall
clocks or randomness — so injected runs are fully reproducible.

The virtual clock itself is a standalone, shareable
:class:`VirtualClock`: build one, hand it to ``FaultInjector(clock=...)``
*and* to any other clock-injected component (a
:class:`~repro.server.supervisor.Supervisor` heartbeat watchdog, a
breaker cooldown, a retry sleeper) and they all observe the same
timeline — one ``advance()`` moves every deadline, backoff schedule and
heartbeat decision in lockstep.  Before PR 8 the offset lived inside
each injector, so two components built with different injectors silently
drifted; sharing now takes one object instead of threading bound
methods.  ``VirtualClock(origin=None)`` detaches the clock from wall
time entirely (it reads 0.0 until advanced), which is what fully
deterministic watchdog tests want.

The injector is thread-aware: sites are keyed by their stable stage
name and the visit counter, the per-fault fired count, the fired log and
the virtual-clock offset are all updated under one lock.  When several
service workers hit the same site concurrently, exactly one of them
observes the trigger-th visit, so ``should_fire`` schedules (one firing
per once-only fault, total visit counts) stay deterministic even though
*which* worker draws the fault is scheduler-dependent.

The same discipline extends below the translator: :class:`FaultyBackend`
wraps any :class:`~repro.backends.base.Backend` and injects failures at
its five operation sites (``reflect`` / ``sample`` / ``execute`` /
``count`` / ``version``) — typed transient errors, hangs that advance
the shared virtual clock past :class:`~repro.backends.resilient.
ResilientBackend` timeouts, torn (silently truncated) row batches, and
partial reflection (:class:`~repro.backends.errors.BackendDegraded`
carrying a pruned catalog).  ``schedule_from_seed`` derives a
reproducible multi-fault schedule from one integer, which is how
``scripts/run_chaos.py`` sweeps the fault space deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.resilience import Budget, BudgetExceeded
from ..errors import Diagnostic, ReproError

#: Stages the translator announces to the injector, in pipeline order.
STAGES = ("parse", "map", "network", "compose")


class VirtualClock:
    """A monotonic clock whose time can be advanced manually.

    ``origin`` is the underlying time source (default
    ``time.monotonic``); readings are ``origin() + offset`` where the
    offset grows by :meth:`advance`.  With ``origin=None`` the clock is
    *purely* virtual: it reads ``0.0`` until advanced, so every timeout
    and backoff decision built on it is fully deterministic.

    One instance is safely shareable across components and threads —
    the offset is lock-protected — and the instance is itself callable,
    so it drops in anywhere a ``clock: Callable[[], float]`` is
    expected::

        clock = VirtualClock(origin=None)
        injector = FaultInjector(clock=clock)
        supervisor = Supervisor(specs, config, clock=clock)
        clock.advance(10.0)   # both observe the same jump
    """

    def __init__(self, origin=time.monotonic) -> None:
        self._origin = origin
        self._offset = 0.0
        self._lock = threading.Lock()

    def now(self) -> float:
        base = self._origin() if self._origin is not None else 0.0
        with self._lock:
            return base + self._offset

    __call__ = now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        with self._lock:
            self._offset += seconds

    def reset(self) -> None:
        with self._lock:
            self._offset = 0.0

    @property
    def offset(self) -> float:
        with self._lock:
            return self._offset


class InjectedFault(ReproError):
    """Default exception raised by an ``error`` fault."""


@dataclass
class Fault:
    """One registered fault.

    ``kind`` is ``"delay"``, ``"error"`` or ``"budget"``; ``trigger`` is
    the 1-based stage-visit count on which it fires.
    """

    stage: str
    kind: str
    delay: float = 0.0
    error: Optional[Union[BaseException, type]] = None
    trigger: int = 1
    repeat: bool = False
    fired: int = 0

    def should_fire(self, visit: int) -> bool:
        if self.repeat:
            return visit >= self.trigger
        return visit == self.trigger and self.fired == 0


class FaultInjector:
    """Registry of faults plus the virtual clock they manipulate.

    Pass an existing :class:`VirtualClock` to share one timeline with
    other clock-injected components; by default each injector owns a
    private clock (the pre-PR-8 behaviour).
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self._faults: list[Fault] = []
        #: the shareable timeline behind :meth:`clock`/:meth:`advance`
        self.virtual_clock = clock if clock is not None else VirtualClock()
        self._lock = threading.Lock()
        self.visits: dict[str, int] = {}
        self.log: list[tuple[str, str]] = []  # (stage, kind) of fired faults

    # ------------------------------------------------------------------
    # virtual clock
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Monotonic clock including injected delays.  Pass as
        ``Budget(..., clock=injector.clock)`` to make delay faults count
        against deadlines deterministically."""
        return self.virtual_clock.now()

    def advance(self, seconds: float) -> None:
        """Advance the virtual clock directly.  Also what the query
        service uses as its backoff "sleep", so retry schedules are
        testable without wall-clock waiting."""
        self.virtual_clock.advance(seconds)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def inject(self, fault: Fault) -> Fault:
        if fault.stage not in STAGES:
            raise ValueError(
                f"unknown stage {fault.stage!r}; expected one of {STAGES}"
            )
        if fault.kind not in ("delay", "error", "budget"):
            raise ValueError(f"unknown fault kind {fault.kind!r}")
        self._faults.append(fault)
        return fault

    def inject_delay(
        self, stage: str, seconds: float, trigger: int = 1, repeat: bool = False
    ) -> Fault:
        return self.inject(
            Fault(stage, "delay", delay=seconds, trigger=trigger, repeat=repeat)
        )

    def inject_error(
        self,
        stage: str,
        error: Optional[Union[BaseException, type]] = None,
        trigger: int = 1,
        repeat: bool = False,
    ) -> Fault:
        return self.inject(
            Fault(stage, "error", error=error, trigger=trigger, repeat=repeat)
        )

    def inject_budget_exhaustion(
        self, stage: str, trigger: int = 1, repeat: bool = False
    ) -> Fault:
        return self.inject(Fault(stage, "budget", trigger=trigger, repeat=repeat))

    def reset(self) -> None:
        with self._lock:
            self._faults.clear()
            self.visits.clear()
            self.log.clear()
        # note: resets the (possibly shared) timeline too — a reset
        # mid-scenario would yank time backwards under other components
        self.virtual_clock.reset()

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, stage: str, budget: Optional[Budget] = None) -> None:
        """Called by the translator at each stage entry.

        The visit bump, the should-fire decision, the fired count and
        the log append happen atomically under the injector's lock, so a
        once-only fault fires exactly once no matter how many threads
        race through its site.  Raising (and exhausting budgets) happens
        *outside* the lock — those paths call back into budget locks.
        """
        with self._lock:
            visit = self.visits.get(stage, 0) + 1
            self.visits[stage] = visit
            firing: list[Fault] = []
            for fault in self._faults:
                if fault.stage != stage or not fault.should_fire(visit):
                    continue
                fault.fired += 1
                self.log.append((stage, fault.kind))
                if fault.kind == "delay":
                    self.virtual_clock.advance(fault.delay)
                else:
                    firing.append(fault)
        for fault in firing:
            if fault.kind == "error":
                error = fault.error
                if error is None:
                    error = InjectedFault(
                        f"injected fault in stage {stage!r}",
                        diagnostic=Diagnostic(
                            stage=stage, message="injected fault"
                        ),
                    )
                elif isinstance(error, type):
                    error = error(f"injected fault in stage {stage!r}")
                raise error
            elif fault.kind == "budget":
                if budget is not None:
                    budget.exhaust(stage, "injected budget exhaustion")
                raise BudgetExceeded(
                    f"injected budget exhaustion in stage {stage!r}",
                    diagnostic=Diagnostic(
                        stage=stage, message="injected budget exhaustion"
                    ),
                )


# ---------------------------------------------------------------------------
# backend-layer chaos
# ---------------------------------------------------------------------------

#: Backend operation sites a fault can attach to.
BACKEND_OPS = ("reflect", "sample", "execute", "count", "version")

#: Fault kinds per site (``torn`` needs row batches; ``partial-reflect``
#: needs a catalog to prune).
BACKEND_FAULT_KINDS = ("error", "hang", "torn", "partial-reflect")

_KINDS_BY_OP = {
    "reflect": ("error", "hang", "partial-reflect"),
    "sample": ("error", "hang", "torn"),
    "execute": ("error", "hang", "torn"),
    "count": ("error", "hang"),
    "version": ("error", "hang"),
}


@dataclass
class BackendFault:
    """One registered backend fault.

    ``op`` is a :data:`BACKEND_OPS` site and ``kind`` one of
    :data:`BACKEND_FAULT_KINDS`; ``trigger``/``repeat`` follow
    :class:`Fault` semantics (1-based visit count, once by default).
    ``seconds`` is how far a ``hang`` advances the virtual clock;
    ``drop`` is how many relations ``partial-reflect`` prunes from the
    tail of the reflected catalog.
    """

    op: str
    kind: str
    seconds: float = 0.0
    error: Optional[Union[BaseException, type]] = None
    drop: int = 1
    trigger: int = 1
    repeat: bool = False
    fired: int = 0

    def should_fire(self, visit: int) -> bool:
        if self.repeat:
            return visit >= self.trigger
        return visit == self.trigger and self.fired == 0


class FaultyBackend:
    """A Backend wrapper that injects deterministic failures.

    Composes with :class:`~repro.backends.resilient.ResilientBackend`
    for chaos testing: hangs advance the shared :class:`FaultInjector`
    virtual clock (so resilient timeouts fire with no real waiting),
    ``error`` faults raise :class:`~repro.backends.errors.
    TransientBackendError` by default (so retry paths are exercised),
    ``torn`` faults silently truncate a row batch to its first half
    (what a connection dropped mid-fetch leaves behind), and
    ``partial-reflect`` raises :class:`~repro.backends.errors.
    BackendDegraded` carrying the inner catalog minus its last ``drop``
    relations (and every FK touching them).

    Fault accounting mirrors :class:`FaultInjector`: per-op visit
    counters and fired counts update under one lock, and every firing
    appends ``(op, kind)`` to :attr:`log`.
    """

    def __init__(self, inner, injector: Optional[FaultInjector] = None) -> None:
        from ..backends import as_backend

        self._inner = as_backend(inner)
        self.injector = injector if injector is not None else FaultInjector()
        self.kind = f"faulty[{self._inner.kind}]"
        self._faults: list[BackendFault] = []
        self._lock = threading.Lock()
        self.visits: dict[str, int] = {}
        self.log: list[tuple[str, str]] = []

    # -- registration ---------------------------------------------------
    def inject(self, fault: BackendFault) -> BackendFault:
        if fault.op not in BACKEND_OPS:
            raise ValueError(
                f"unknown backend op {fault.op!r}; expected one of {BACKEND_OPS}"
            )
        if fault.kind not in _KINDS_BY_OP[fault.op]:
            raise ValueError(
                f"fault kind {fault.kind!r} not valid for op {fault.op!r}; "
                f"expected one of {_KINDS_BY_OP[fault.op]}"
            )
        with self._lock:
            self._faults.append(fault)
        return fault

    def inject_error(
        self,
        op: str,
        error: Optional[Union[BaseException, type]] = None,
        trigger: int = 1,
        repeat: bool = False,
    ) -> BackendFault:
        return self.inject(
            BackendFault(op, "error", error=error, trigger=trigger, repeat=repeat)
        )

    def inject_hang(
        self, op: str, seconds: float, trigger: int = 1, repeat: bool = False
    ) -> BackendFault:
        return self.inject(
            BackendFault(op, "hang", seconds=seconds, trigger=trigger, repeat=repeat)
        )

    def inject_torn(
        self, op: str, trigger: int = 1, repeat: bool = False
    ) -> BackendFault:
        return self.inject(BackendFault(op, "torn", trigger=trigger, repeat=repeat))

    def inject_partial_reflect(
        self, drop: int = 1, trigger: int = 1, repeat: bool = False
    ) -> BackendFault:
        return self.inject(
            BackendFault(
                "reflect", "partial-reflect", drop=drop, trigger=trigger, repeat=repeat
            )
        )

    def schedule_from_seed(
        self, seed: int, faults: int = 3, hang_seconds: float = 120.0
    ) -> list[BackendFault]:
        """Register a reproducible pseudo-random fault schedule.

        ``random.Random(seed)`` draws ``faults`` (op, kind, trigger)
        cells — stdlib ``Random`` is stable across Python versions for a
        fixed seed, so a seed fully names a chaos scenario.  Hangs use
        *hang_seconds*, long enough to blow any default resilient
        timeout on the virtual clock.
        """
        import random

        rng = random.Random(seed)
        registered = []
        for _ in range(faults):
            op = rng.choice(BACKEND_OPS)
            kind = rng.choice(_KINDS_BY_OP[op])
            trigger = rng.randint(1, 3)
            fault = BackendFault(op, kind, trigger=trigger)
            if kind == "hang":
                fault.seconds = hang_seconds
            registered.append(self.inject(fault))
        return registered

    def reset(self) -> None:
        with self._lock:
            self._faults.clear()
            self.visits.clear()
            self.log.clear()

    # -- firing ---------------------------------------------------------
    def _fire(self, op: str) -> list[BackendFault]:
        """Bump the op's visit counter and collect firing faults.

        Hangs advance the shared virtual clock inside the lock (like
        injector delays); error/torn/partial faults are returned for the
        call site to apply, because applying them raises or needs the
        operation's data.
        """
        applying: list[BackendFault] = []
        with self._lock:
            visit = self.visits.get(op, 0) + 1
            self.visits[op] = visit
            for fault in self._faults:
                if fault.op != op or not fault.should_fire(visit):
                    continue
                fault.fired += 1
                self.log.append((op, fault.kind))
                if fault.kind == "hang":
                    self.injector.advance(fault.seconds)
                else:
                    applying.append(fault)
        for fault in applying:
            if fault.kind == "error":
                raise self._materialise_error(op, fault)
        return applying

    @staticmethod
    def _materialise_error(op: str, fault: BackendFault) -> BaseException:
        from ..backends.errors import TransientBackendError

        error = fault.error
        if error is None:
            return TransientBackendError(
                f"injected backend fault in op {op!r}",
                diagnostic=Diagnostic(
                    stage="backend", message="injected backend fault", token=op
                ),
            )
        if isinstance(error, type):
            return error(f"injected backend fault in op {op!r}")
        return error

    @staticmethod
    def _tear(rows: list) -> list:
        """What a torn batch leaves behind: the first half, silently."""
        return rows[: max(0, len(rows) // 2)]

    def _pruned_catalog(self, drop: int):
        """The inner catalog minus its last *drop* relations and every
        foreign key with an endpoint among them."""
        from ..catalog import Catalog

        full = self._inner.catalog
        keep = full.relations[: max(1, len(full.relations) - drop)]
        kept_names = {relation.name for relation in keep}
        partial = Catalog(f"{full.name}~partial")
        for relation in keep:
            partial.add_relation(relation)
        for fk in full.foreign_keys:
            if fk.source_relation in kept_names and fk.target_relation in kept_names:
                partial.add_foreign_key(
                    fk.source_relation,
                    fk.source_attribute,
                    fk.target_relation,
                    fk.target_attribute,
                )
        return partial

    # -- Backend protocol -----------------------------------------------
    @property
    def catalog(self):
        for fault in self._fire("reflect"):
            if fault.kind == "partial-reflect":
                from ..backends.errors import BackendDegraded

                partial = self._pruned_catalog(fault.drop)
                raise BackendDegraded(
                    f"injected partial reflection: {len(partial.relations)} of "
                    f"{len(self._inner.catalog.relations)} relations",
                    partial=partial,
                    diagnostic=Diagnostic(
                        stage="backend",
                        message="injected partial reflection",
                        token="reflect",
                        detail={"dropped": fault.drop},
                    ),
                )
        return self._inner.catalog

    @property
    def data_version(self) -> int:
        self._fire("version")
        return self._inner.data_version

    def count(self, relation_name: str) -> int:
        self._fire("count")
        return self._inner.count(relation_name)

    def column_values(self, relation_name: str, attribute_name: str) -> list:
        faults = self._fire("sample")
        values = self._inner.column_values(relation_name, attribute_name)
        for fault in faults:
            if fault.kind == "torn":
                values = self._tear(values)
        return values

    def execute(self, query):
        faults = self._fire("execute")
        result = self._inner.execute(query)
        for fault in faults:
            if fault.kind == "torn":
                from ..engine.executor import Result

                result = Result(result.columns, self._tear(list(result.rows)))
        return result

    def close(self) -> None:
        self._inner.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyBackend({self._inner!r})"
