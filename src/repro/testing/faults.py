"""Deterministic fault injection for the translation pipeline.

A :class:`FaultInjector` is handed to ``SchemaFreeTranslator`` (the
``faults`` parameter); the translator calls :meth:`FaultInjector.fire`
at the entry of every pipeline stage (``parse``, ``map``, ``network``,
``compose``).  A registered fault then either

* **delays** — advances the injector's *virtual clock* by a fixed number
  of seconds.  Budgets built with ``clock=injector.clock`` observe the
  jump and hit their deadline deterministically, with no real sleeping,
  so budget-timeout paths are testable in microseconds;
* **errors** — raises a caller-supplied exception (or a default
  :class:`InjectedFault`) out of the stage; or
* **exhausts the budget** — calls ``Budget.exhaust`` on the active
  budget (or raises :class:`BudgetExceeded` directly when the stage runs
  unbudgeted).

Faults trigger on the *n*-th visit to their stage (``trigger``, 1-based)
and by default fire exactly once; ``repeat=True`` keeps firing from the
trigger-th visit onward, which is how tests starve every rung of the
degradation ladder at once.  Everything is counter-based — no wall
clocks or randomness — so injected runs are fully reproducible.

The injector is thread-aware: sites are keyed by their stable stage
name and the visit counter, the per-fault fired count, the fired log and
the virtual-clock offset are all updated under one lock.  When several
service workers hit the same site concurrently, exactly one of them
observes the trigger-th visit, so ``should_fire`` schedules (one firing
per once-only fault, total visit counts) stay deterministic even though
*which* worker draws the fault is scheduler-dependent.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.resilience import Budget, BudgetExceeded
from ..errors import Diagnostic, ReproError

#: Stages the translator announces to the injector, in pipeline order.
STAGES = ("parse", "map", "network", "compose")


class InjectedFault(ReproError):
    """Default exception raised by an ``error`` fault."""


@dataclass
class Fault:
    """One registered fault.

    ``kind`` is ``"delay"``, ``"error"`` or ``"budget"``; ``trigger`` is
    the 1-based stage-visit count on which it fires.
    """

    stage: str
    kind: str
    delay: float = 0.0
    error: Optional[Union[BaseException, type]] = None
    trigger: int = 1
    repeat: bool = False
    fired: int = 0

    def should_fire(self, visit: int) -> bool:
        if self.repeat:
            return visit >= self.trigger
        return visit == self.trigger and self.fired == 0


class FaultInjector:
    """Registry of faults plus the virtual clock they manipulate."""

    def __init__(self) -> None:
        self._faults: list[Fault] = []
        self._offset = 0.0
        self._lock = threading.Lock()
        self.visits: dict[str, int] = {}
        self.log: list[tuple[str, str]] = []  # (stage, kind) of fired faults

    # ------------------------------------------------------------------
    # virtual clock
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Monotonic clock including injected delays.  Pass as
        ``Budget(..., clock=injector.clock)`` to make delay faults count
        against deadlines deterministically."""
        return time.monotonic() + self._offset

    def advance(self, seconds: float) -> None:
        """Advance the virtual clock directly.  Also what the query
        service uses as its backoff "sleep", so retry schedules are
        testable without wall-clock waiting."""
        with self._lock:
            self._offset += seconds

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def inject(self, fault: Fault) -> Fault:
        if fault.stage not in STAGES:
            raise ValueError(
                f"unknown stage {fault.stage!r}; expected one of {STAGES}"
            )
        if fault.kind not in ("delay", "error", "budget"):
            raise ValueError(f"unknown fault kind {fault.kind!r}")
        self._faults.append(fault)
        return fault

    def inject_delay(
        self, stage: str, seconds: float, trigger: int = 1, repeat: bool = False
    ) -> Fault:
        return self.inject(
            Fault(stage, "delay", delay=seconds, trigger=trigger, repeat=repeat)
        )

    def inject_error(
        self,
        stage: str,
        error: Optional[Union[BaseException, type]] = None,
        trigger: int = 1,
        repeat: bool = False,
    ) -> Fault:
        return self.inject(
            Fault(stage, "error", error=error, trigger=trigger, repeat=repeat)
        )

    def inject_budget_exhaustion(
        self, stage: str, trigger: int = 1, repeat: bool = False
    ) -> Fault:
        return self.inject(Fault(stage, "budget", trigger=trigger, repeat=repeat))

    def reset(self) -> None:
        with self._lock:
            self._faults.clear()
            self.visits.clear()
            self.log.clear()
            self._offset = 0.0

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, stage: str, budget: Optional[Budget] = None) -> None:
        """Called by the translator at each stage entry.

        The visit bump, the should-fire decision, the fired count and
        the log append happen atomically under the injector's lock, so a
        once-only fault fires exactly once no matter how many threads
        race through its site.  Raising (and exhausting budgets) happens
        *outside* the lock — those paths call back into budget locks.
        """
        with self._lock:
            visit = self.visits.get(stage, 0) + 1
            self.visits[stage] = visit
            firing: list[Fault] = []
            for fault in self._faults:
                if fault.stage != stage or not fault.should_fire(visit):
                    continue
                fault.fired += 1
                self.log.append((stage, fault.kind))
                if fault.kind == "delay":
                    self._offset += fault.delay
                else:
                    firing.append(fault)
        for fault in firing:
            if fault.kind == "error":
                error = fault.error
                if error is None:
                    error = InjectedFault(
                        f"injected fault in stage {stage!r}",
                        diagnostic=Diagnostic(
                            stage=stage, message="injected fault"
                        ),
                    )
                elif isinstance(error, type):
                    error = error(f"injected fault in stage {stage!r}")
                raise error
            elif fault.kind == "budget":
                if budget is not None:
                    budget.exhaust(stage, "injected budget exhaustion")
                raise BudgetExceeded(
                    f"injected budget exhaustion in stage {stage!r}",
                    diagnostic=Diagnostic(
                        stage=stage, message="injected budget exhaustion"
                    ),
                )
