"""Schema-evolution chaos harness: mutate the schema, replay the workload.

Schema-free SQL's core promise is robustness to *schema ignorance*: a
query written against a remembered schema should keep working when the
real schema differs.  Schema evolution is the time-axis version of the
same problem — the schema the user remembers is the one that existed
when they learned it.  This module makes that testable:

* **mutations** — programmatic schema changes that rebuild a fresh
  :class:`~repro.engine.Database` carrying the same data under a new
  catalog: :class:`RenameTable`, :class:`RenameColumn`,
  :class:`SplitTable`, :class:`MergeTables`, :class:`DropForeignKey`.
  Each records the ground-truth vocabulary delta (old name -> new home)
  so recovery can be scored;
* **vocabulary recovery** — :func:`recover_vocabulary` mines a query log
  (via :func:`repro.core.query_log.views_from_sql`) against the *old*
  catalog to learn which relations the workload actually exercises,
  then matches old names to their new homes by attribute-fingerprint
  overlap — recovering renames that pure string similarity misses
  (``movie`` -> ``film`` shares no q-gram).  Recovered names are
  registered as aliases on the translator's
  :class:`~repro.core.context.TranslationContext`;
* **the harness** — :class:`EvolutionHarness` translates and executes
  every workload query on the baseline and on each mutated database and
  compares row multisets (the data is unchanged, so a stable
  translation returns identical rows).  Verdicts roll up into a
  per-mutation-class *stability score* reported by ``run_chaos.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..catalog import Attribute, Catalog, Relation, SchemaError, normalize
from ..core.config import DEFAULT_CONFIG, TranslatorConfig
from ..core.query_log import views_from_sql
from ..core.similarity import string_similarity
from ..core.translator import SchemaFreeTranslator
from ..engine.database import Database
from ..workloads.base import WorkloadQuery
from .differential import Outcome, normalize_rows, workload_pairs

__all__ = [
    "DropForeignKey",
    "EvolutionHarness",
    "EvolutionReport",
    "EvolvedSchema",
    "MergeTables",
    "MutationRecord",
    "RenameColumn",
    "RenameTable",
    "SplitTable",
    "VocabularyRecovery",
    "evolve",
    "recover_vocabulary",
    "standard_mutations",
]

#: per-query verdicts
STABLE = "stable"  # both succeed, identical row multisets
CHANGED = "changed"  # both succeed, rows differ
LOST = "lost"  # baseline succeeded, mutated run failed
GAINED = "gained"  # baseline failed, mutated run succeeded
AGREED_ERROR = "agreed-error"  # both failed


# ---------------------------------------------------------------------------
# rebuilding helpers
# ---------------------------------------------------------------------------


def _copy_attr(attribute: Attribute, name: Optional[str] = None) -> Attribute:
    return Attribute(
        name if name is not None else attribute.name,
        attribute.data_type,
        attribute.nullable,
    )


def _copy_relation(relation: Relation) -> Relation:
    return Relation(
        relation.name,
        [_copy_attr(a) for a in relation.attributes],
        relation.primary_key,
    )


@dataclass
class EvolvedSchema:
    """A mutated database plus the ground-truth vocabulary delta."""

    database: Database
    #: old relation name -> the relation that now answers for it
    relation_renames: dict = field(default_factory=dict)
    #: (old relation, old attribute) -> (new relation, new attribute)
    attribute_renames: dict = field(default_factory=dict)

    @property
    def catalog(self) -> Catalog:
        return self.database.catalog


class _Rebuilder:
    """Copies a database's catalog and rows with targeted edits applied.

    FK enforcement is off in the rebuilt database: row copies preserve
    the source data verbatim, and a chaos mutation (dropping a relation
    a dangling reference points at) must not fail the rebuild itself.
    """

    def __init__(self, source: Database) -> None:
        self.source = source
        self.catalog = Catalog(source.catalog.name)

    def build(self, row_sources: Mapping[str, Iterable[Mapping]]) -> Database:
        self.catalog.validate()
        database = Database(self.catalog, enforce_foreign_keys=False)
        for relation in self.catalog.relations:
            rows = row_sources.get(relation.key)
            if rows is None:
                continue
            database.insert_many(relation.name, rows)
        return database


def _copy_foreign_keys(rebuilder, source_catalog, *, skip=(), rename=None):
    """Re-register every FK whose endpoints survived the mutation.

    *skip* drops FKs touching the named relations; *rename* maps old
    relation names to new ones; FKs whose attribute no longer exists on
    either endpoint are silently dropped (that is the mutation's point).
    """
    rename = rename or {}
    skipped = {normalize(name) for name in skip}
    for fk in source_catalog.foreign_keys:
        src_key = normalize(fk.source_relation)
        tgt_key = normalize(fk.target_relation)
        if src_key in skipped or tgt_key in skipped:
            continue
        src = rename.get(src_key, fk.source_relation)
        tgt = rename.get(tgt_key, fk.target_relation)
        try:
            rebuilder.catalog.add_foreign_key(
                src, fk.source_attribute, tgt, fk.target_attribute
            )
        except SchemaError:
            # an endpoint was renamed/moved away by this mutation
            continue


# ---------------------------------------------------------------------------
# mutations
# ---------------------------------------------------------------------------


@dataclass
class RenameTable:
    """Rename one relation; every FK endpoint follows."""

    table: str
    new_name: str
    kind = "rename-table"

    def describe(self) -> str:
        return f"rename table {self.table} -> {self.new_name}"

    def apply(self, database: Database) -> EvolvedSchema:
        old = database.catalog.relation(self.table)
        if database.catalog.has_relation(self.new_name):
            raise SchemaError(f"relation {self.new_name!r} already exists")
        rebuilder = _Rebuilder(database)
        for relation in database.catalog.relations:
            if relation.key == old.key:
                rebuilder.catalog.add_relation(
                    Relation(
                        self.new_name,
                        [_copy_attr(a) for a in old.attributes],
                        old.primary_key,
                    )
                )
            else:
                rebuilder.catalog.add_relation(_copy_relation(relation))
        _copy_foreign_keys(
            rebuilder, database.catalog, rename={old.key: self.new_name}
        )
        rows = {
            relation.key: database.rows(relation.name)
            for relation in database.catalog.relations
        }
        rows[normalize(self.new_name)] = rows.pop(old.key)
        return EvolvedSchema(
            rebuilder.build(rows),
            relation_renames={old.name: self.new_name},
        )


@dataclass
class RenameColumn:
    """Rename one attribute; the primary key and FKs follow."""

    table: str
    column: str
    new_name: str
    kind = "rename-column"

    def describe(self) -> str:
        return f"rename column {self.table}.{self.column} -> {self.new_name}"

    def apply(self, database: Database) -> EvolvedSchema:
        target = database.catalog.relation(self.table)
        old_attr = target.attribute(self.column)
        if target.has_attribute(self.new_name):
            raise SchemaError(
                f"attribute {self.new_name!r} already exists on {self.table!r}"
            )
        rebuilder = _Rebuilder(database)
        for relation in database.catalog.relations:
            if relation.key != target.key:
                rebuilder.catalog.add_relation(_copy_relation(relation))
                continue
            attributes = [
                _copy_attr(
                    a, self.new_name if a.key == old_attr.key else None
                )
                for a in relation.attributes
            ]
            pk = tuple(
                self.new_name if normalize(c) == old_attr.key else c
                for c in relation.primary_key
            )
            rebuilder.catalog.add_relation(
                Relation(relation.name, attributes, pk)
            )
        # FKs touching the renamed column are re-pointed by name
        for fk in database.catalog.foreign_keys:
            src_attr, tgt_attr = fk.source_attribute, fk.target_attribute
            if (
                normalize(fk.source_relation) == target.key
                and normalize(src_attr) == old_attr.key
            ):
                src_attr = self.new_name
            if (
                normalize(fk.target_relation) == target.key
                and normalize(tgt_attr) == old_attr.key
            ):
                tgt_attr = self.new_name
            rebuilder.catalog.add_foreign_key(
                fk.source_relation, src_attr, fk.target_relation, tgt_attr
            )
        rows = {
            relation.key: database.rows(relation.name)
            for relation in database.catalog.relations
        }
        new_key = normalize(self.new_name)
        rows[target.key] = [
            {
                (new_key if column == old_attr.key else column): value
                for column, value in row.items()
            }
            for row in rows[target.key]
        ]
        return EvolvedSchema(
            rebuilder.build(rows),
            attribute_renames={
                (target.name, old_attr.name): (target.name, self.new_name)
            },
        )


@dataclass
class SplitTable:
    """Move *columns* into a new relation keyed by the source's PK."""

    table: str
    columns: Tuple[str, ...]
    new_table: str
    kind = "split-table"

    def describe(self) -> str:
        cols = ", ".join(self.columns)
        return f"split {self.table}({cols}) -> {self.new_table}"

    def apply(self, database: Database) -> EvolvedSchema:
        source = database.catalog.relation(self.table)
        if len(source.primary_key) != 1:
            raise SchemaError(
                f"split requires a single-column primary key on {self.table!r}"
            )
        pk_attr = source.attribute(source.primary_key[0])
        moved = [source.attribute(c) for c in self.columns]
        moved_keys = {a.key for a in moved}
        if pk_attr.key in moved_keys:
            raise SchemaError("cannot split the primary key away")
        rebuilder = _Rebuilder(database)
        for relation in database.catalog.relations:
            if relation.key != source.key:
                rebuilder.catalog.add_relation(_copy_relation(relation))
                continue
            kept = [
                _copy_attr(a)
                for a in relation.attributes
                if a.key not in moved_keys
            ]
            rebuilder.catalog.add_relation(
                Relation(relation.name, kept, relation.primary_key)
            )
        rebuilder.catalog.add_relation(
            Relation(
                self.new_table,
                [_copy_attr(pk_attr)] + [_copy_attr(a) for a in moved],
                (pk_attr.name,),
            )
        )
        _copy_foreign_keys(rebuilder, database.catalog)
        rebuilder.catalog.add_foreign_key(
            self.new_table, pk_attr.name, source.name, pk_attr.name
        )
        rows = {
            relation.key: database.rows(relation.name)
            for relation in database.catalog.relations
        }
        original = rows[source.key]
        rows[source.key] = [
            {c: v for c, v in row.items() if c not in moved_keys}
            for row in original
        ]
        rows[normalize(self.new_table)] = [
            {
                c: v
                for c, v in row.items()
                if c in moved_keys or c == pk_attr.key
            }
            for row in original
        ]
        return EvolvedSchema(
            rebuilder.build(rows),
            attribute_renames={
                (source.name, a.name): (self.new_table, a.name) for a in moved
            },
        )


@dataclass
class MergeTables:
    """Inline an FK target's attributes into the referencing relation.

    Requires an FK ``source.attr -> target.pk``.  The target relation
    disappears; its non-key attributes move onto *source* (prefixed with
    the target's name on collision).  FKs from third relations to the
    dropped target are dropped too — exactly the dangling-reference
    hazard a real denormalisation migration creates.
    """

    source: str
    target: str
    kind = "merge-tables"

    def describe(self) -> str:
        return f"merge {self.target} into {self.source}"

    def _linking_fk(self, catalog: Catalog):
        for fk in catalog.foreign_keys:
            if (
                normalize(fk.source_relation) == normalize(self.source)
                and normalize(fk.target_relation) == normalize(self.target)
            ):
                return fk
        raise SchemaError(
            f"no foreign key from {self.source!r} to {self.target!r}"
        )

    def apply(self, database: Database) -> EvolvedSchema:
        src = database.catalog.relation(self.source)
        tgt = database.catalog.relation(self.target)
        fk = self._linking_fk(database.catalog)
        join_attr = normalize(fk.target_attribute)
        merged_names: dict = {}  # target attribute key -> merged name
        attributes = [_copy_attr(a) for a in src.attributes]
        for attribute in tgt.attributes:
            if attribute.key == join_attr:
                continue  # the join key is already present as the FK column
            name = attribute.name
            if src.has_attribute(name):
                name = f"{tgt.name}_{attribute.name}"
            merged_names[attribute.key] = normalize(name)
            attributes.append(_copy_attr(attribute, name))
        rebuilder = _Rebuilder(database)
        for relation in database.catalog.relations:
            if relation.key == tgt.key:
                continue
            if relation.key == src.key:
                rebuilder.catalog.add_relation(
                    Relation(src.name, attributes, src.primary_key)
                )
            else:
                rebuilder.catalog.add_relation(_copy_relation(relation))
        _copy_foreign_keys(rebuilder, database.catalog, skip=(tgt.name,))
        target_rows = {
            row.get(join_attr): row for row in database.rows(tgt.name)
        }
        fk_attr = normalize(fk.source_attribute)
        rows = {
            relation.key: database.rows(relation.name)
            for relation in database.catalog.relations
            if relation.key != tgt.key
        }
        merged_rows = []
        for row in rows[src.key]:
            match = target_rows.get(row.get(fk_attr), {})
            copy = dict(row)
            for old_key, new_key in merged_names.items():
                copy[new_key] = match.get(old_key)
            merged_rows.append(copy)
        rows[src.key] = merged_rows
        return EvolvedSchema(
            rebuilder.build(rows),
            relation_renames={tgt.name: src.name},
            attribute_renames={
                (tgt.name, tgt.attribute(old).name): (src.name, new)
                for old, new in merged_names.items()
            },
        )


@dataclass
class DropForeignKey:
    """Remove the FK edge between two relations (columns stay)."""

    source: str
    target: str
    kind = "drop-fk"

    def describe(self) -> str:
        return f"drop foreign key {self.source} -> {self.target}"

    def apply(self, database: Database) -> EvolvedSchema:
        src_key = normalize(self.source)
        tgt_key = normalize(self.target)
        doomed = [
            fk
            for fk in database.catalog.foreign_keys
            if normalize(fk.source_relation) == src_key
            and normalize(fk.target_relation) == tgt_key
        ]
        if not doomed:
            raise SchemaError(
                f"no foreign key from {self.source!r} to {self.target!r}"
            )
        doomed_keys = {fk.key for fk in doomed}
        rebuilder = _Rebuilder(database)
        for relation in database.catalog.relations:
            rebuilder.catalog.add_relation(_copy_relation(relation))
        for fk in database.catalog.foreign_keys:
            if fk.key in doomed_keys:
                continue
            rebuilder.catalog.add_foreign_key(
                fk.source_relation,
                fk.source_attribute,
                fk.target_relation,
                fk.target_attribute,
            )
        rows = {
            relation.key: database.rows(relation.name)
            for relation in database.catalog.relations
        }
        return EvolvedSchema(rebuilder.build(rows))


Mutation = Union[
    RenameTable, RenameColumn, SplitTable, MergeTables, DropForeignKey
]


def evolve(
    database: Database, mutations: Sequence[Mutation]
) -> EvolvedSchema:
    """Apply *mutations* in order, composing the vocabulary deltas.

    A name renamed twice (``a -> b``, then ``b -> c``) reports the
    end-to-end delta ``a -> c``.
    """
    current = database
    relation_renames: dict = {}
    attribute_renames: dict = {}
    for mutation in mutations:
        step = mutation.apply(current)
        current = step.database
        for old, new in relation_renames.items():
            relation_renames[old] = step.relation_renames.get(new, new)
        for old, new in step.relation_renames.items():
            relation_renames.setdefault(old, new)
        for old, new in attribute_renames.items():
            attribute_renames[old] = step.attribute_renames.get(new, new)
        for old, new in step.attribute_renames.items():
            attribute_renames.setdefault(old, new)
    return EvolvedSchema(current, relation_renames, attribute_renames)


# ---------------------------------------------------------------------------
# vocabulary recovery
# ---------------------------------------------------------------------------


@dataclass
class VocabularyRecovery:
    """Aliases recovered from a query log across a schema change."""

    #: (relation in the new catalog, recovered old name)
    relation_aliases: list = field(default_factory=list)
    #: (relation, attribute in the new catalog, recovered old name)
    attribute_aliases: list = field(default_factory=list)

    def apply(self, context) -> None:
        """Register every recovered name on a TranslationContext."""
        for relation, alias in self.relation_aliases:
            context.add_relation_alias(relation, alias)
        for relation, attribute, alias in self.attribute_aliases:
            context.add_attribute_alias(relation, attribute, alias)

    def as_dict(self) -> dict:
        return {
            "relation_aliases": [list(t) for t in self.relation_aliases],
            "attribute_aliases": [list(t) for t in self.attribute_aliases],
        }


def _usage_weights(catalog: Catalog, logged_sql: Iterable[str]) -> dict:
    """Relation key -> how often the log's join structures touch it."""
    usage: dict = {}
    for sql in logged_sql:
        try:
            views = views_from_sql(catalog, sql)
        except Exception:  # malformed log line: skipped so the harness REPL survives
            continue
        for view in views:
            for relation_name in view.relations:
                key = normalize(relation_name)
                usage[key] = usage.get(key, 0) + 1
    return usage


def _fingerprint_overlap(old: Relation, new: Relation) -> float:
    """Jaccard overlap of attribute-name sets: the rename signal."""
    old_attrs = {a.key for a in old.attributes}
    new_attrs = {a.key for a in new.attributes}
    union = old_attrs | new_attrs
    if not union:
        return 0.0
    return len(old_attrs & new_attrs) / len(union)


def _match_attributes(
    recovery: VocabularyRecovery,
    old: Relation,
    new: Relation,
    qgram: int,
    token_damp: float,
) -> None:
    """Alias old-only attribute names onto new-only attributes.

    A unique remainder on both sides is matched outright (this is what
    string similarity misses: ``year`` -> ``released_in`` shares
    nothing); several remainders are paired greedily by string
    similarity so a batch rename still mostly lands.
    """
    old_only = [
        a for a in old.attributes if not new.has_attribute(a.name)
    ]
    new_only = [
        a for a in new.attributes if not old.has_attribute(a.name)
    ]
    if not old_only or not new_only:
        return
    if len(old_only) == 1 and len(new_only) == 1:
        recovery.attribute_aliases.append(
            (new.name, new_only[0].name, old_only[0].name)
        )
        return
    scored = sorted(
        (
            (string_similarity(o.name, n.name, qgram, token_damp), o, n)
            for o in old_only
            for n in new_only
        ),
        key=lambda item: (-item[0], item[1].key, item[2].key),
    )
    used_old: set = set()
    used_new: set = set()
    for score, o, n in scored:
        if score <= 0.0 or o.key in used_old or n.key in used_new:
            continue
        used_old.add(o.key)
        used_new.add(n.key)
        recovery.attribute_aliases.append((new.name, n.name, o.name))


def recover_vocabulary(
    old_catalog: Catalog,
    new_catalog: Catalog,
    logged_sql: Iterable[str] = (),
    config: TranslatorConfig = DEFAULT_CONFIG,
    min_overlap: float = 0.3,
) -> VocabularyRecovery:
    """Recover renamed vocabulary across ``old_catalog -> new_catalog``.

    Relations that vanished from the old catalog are matched to their
    new home by attribute-fingerprint overlap; ties break toward the
    relation the query log uses most (then lexicographically), so a
    workload-critical rename wins over an incidental one.  Matched
    relation pairs then contribute attribute aliases for their renamed
    columns, as do relations that survived with columns renamed in
    place.
    """
    recovery = VocabularyRecovery()
    usage = _usage_weights(old_catalog, logged_sql)
    new_relations = new_catalog.relations
    for old in old_catalog.relations:
        if new_catalog.has_relation(old.name):
            # survived: look for in-place column renames only
            _match_attributes(
                recovery,
                old,
                new_catalog.relation(old.name),
                config.qgram,
                config.token_damp,
            )
            continue
        candidates = sorted(
            (
                (_fingerprint_overlap(old, new), new)
                for new in new_relations
            ),
            key=lambda item: (-item[0], item[1].key),
        )
        if not candidates or candidates[0][0] < min_overlap:
            continue
        best_score, best = candidates[0]
        # the log's most-used relations deserve the alias on a tie
        tied = [n for s, n in candidates if s == best_score]
        if len(tied) > 1:
            best = max(
                tied,
                key=lambda n: (usage.get(n.key, 0), n.key),
            )
        recovery.relation_aliases.append((best.name, old.name))
        _match_attributes(
            recovery, old, best, config.qgram, config.token_damp
        )
    return recovery


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------


@dataclass
class MutationRecord:
    """One mutation's replay outcome over the whole workload."""

    kind: str
    description: str
    verdicts: dict = field(default_factory=dict)  # qid -> verdict
    details: dict = field(default_factory=dict)  # qid -> detail line
    recovery: Optional[VocabularyRecovery] = None

    @property
    def stability(self) -> float:
        """Fraction of baseline-successful queries that stayed stable."""
        relevant = [
            v for v in self.verdicts.values() if v in (STABLE, CHANGED, LOST)
        ]
        if not relevant:
            return 1.0
        return sum(1 for v in relevant if v == STABLE) / len(relevant)

    def counts(self) -> dict:
        counts: dict = {}
        for verdict in self.verdicts.values():
            counts[verdict] = counts.get(verdict, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "stability": round(self.stability, 4),
            "counts": self.counts(),
            "verdicts": dict(sorted(self.verdicts.items())),
            "details": {
                qid: detail
                for qid, detail in sorted(self.details.items())
                if detail
            },
            "recovery": self.recovery.as_dict() if self.recovery else None,
        }


@dataclass
class EvolutionReport:
    """All mutation records plus the per-class stability roll-up."""

    records: list = field(default_factory=list)

    def by_class(self) -> dict:
        """Mutation kind -> mean stability across its mutations."""
        grouped: dict = {}
        for record in self.records:
            grouped.setdefault(record.kind, []).append(record.stability)
        return {
            kind: round(sum(scores) / len(scores), 4)
            for kind, scores in sorted(grouped.items())
        }

    @property
    def ok(self) -> bool:
        """True when every query of every mutation got *a* verdict.

        Stability below 1.0 is a measurement, not a failure — the score
        is the deliverable.  A missing verdict means the harness itself
        broke.
        """
        return all(record.verdicts for record in self.records)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "stability_by_class": self.by_class(),
            "mutations": [record.as_dict() for record in self.records],
        }


class EvolutionHarness:
    """Replay one workload across schema mutations and score stability.

    The baseline database is translated and executed once; each mutation
    rebuilds the same data under a changed schema, optionally recovers
    vocabulary from the workload's gold SQL (standing in for a query
    log), and replays every query.  Row multisets are compared with the
    differential harness's normalisation rules.
    """

    def __init__(
        self,
        database: Database,
        queries: Union[Iterable[WorkloadQuery], Iterable[Tuple[str, str]]],
        config: TranslatorConfig = DEFAULT_CONFIG,
        log_sql: Optional[Sequence[str]] = None,
        recover: bool = True,
    ) -> None:
        self.database = database
        self.config = config
        self.recover = recover
        materialised = list(queries)
        if materialised and isinstance(materialised[0], WorkloadQuery):
            self.pairs = workload_pairs(materialised)
            if log_sql is None:
                log_sql = [
                    q.gold_sql for q in materialised if q.gold_sql
                ]
        else:
            self.pairs = list(materialised)
        self.log_sql = list(log_sql or [])
        self._baseline: Optional[dict] = None

    # -- execution ------------------------------------------------------
    def _run_one(
        self, translator: SchemaFreeTranslator, database: Database, sql: str
    ) -> Outcome:
        outcome = Outcome(backend=database.catalog.name)
        try:
            translation = translator.translate_best(sql)
            outcome.sql = translation.sql
        except Exception as exc:  # errors are the measurement: recorded so the harness REPL survives
            outcome.error = f"translation: {exc}"
            outcome.error_type = type(exc).__name__
            return outcome
        try:
            result = database.execute(translation.query)
        except Exception as exc:  # errors are the measurement: recorded so the harness REPL survives
            outcome.error = str(exc)
            outcome.error_type = type(exc).__name__
            return outcome
        outcome.rows = list(result.rows)
        return outcome

    def baseline(self) -> dict:
        """qid -> baseline Outcome, computed once and cached."""
        if self._baseline is None:
            translator = SchemaFreeTranslator(self.database, self.config)
            self._baseline = {
                qid: self._run_one(translator, self.database, sql)
                for qid, sql in self.pairs
            }
        return self._baseline

    @staticmethod
    def _verdict(base: Outcome, mutated: Outcome) -> Tuple[str, str]:
        if base.failed and mutated.failed:
            return AGREED_ERROR, ""
        if base.failed:
            return GAINED, "mutated run succeeded where baseline failed"
        if mutated.failed:
            return (
                LOST,
                f"{mutated.error_type}: {mutated.error}",
            )
        if normalize_rows(base.rows or []) == normalize_rows(
            mutated.rows or []
        ):
            return STABLE, ""
        return (
            CHANGED,
            f"{len(base.rows or [])} baseline row(s) vs "
            f"{len(mutated.rows or [])} after mutation "
            f"(sql: {mutated.sql!r})",
        )

    # -- driving --------------------------------------------------------
    def check(self, mutation: Mutation) -> MutationRecord:
        """Apply one mutation (or a pre-built sequence) and replay."""
        if isinstance(mutation, (list, tuple)):
            evolved = evolve(self.database, mutation)
            kind = "+".join(m.kind for m in mutation)
            description = "; ".join(m.describe() for m in mutation)
        else:
            evolved = mutation.apply(self.database)
            kind = mutation.kind
            description = mutation.describe()
        record = MutationRecord(kind=kind, description=description)
        translator = SchemaFreeTranslator(evolved.database, self.config)
        if self.recover:
            recovery = recover_vocabulary(
                self.database.catalog,
                evolved.catalog,
                self.log_sql,
                self.config,
            )
            recovery.apply(translator.context)
            record.recovery = recovery
        base = self.baseline()
        for qid, sql in self.pairs:
            outcome = self._run_one(translator, evolved.database, sql)
            verdict, detail = self._verdict(base[qid], outcome)
            record.verdicts[qid] = verdict
            record.details[qid] = detail
        return record

    def run(self, mutations: Sequence) -> EvolutionReport:
        report = EvolutionReport()
        for mutation in mutations:
            report.records.append(self.check(mutation))
        return report


def standard_mutations(catalog: Catalog) -> list:
    """A representative mutation per class, derived from the catalog.

    Deterministic: picks the first relation (by key) that satisfies each
    mutation's preconditions, so chaos runs are reproducible without a
    seed.
    """
    mutations: list = []
    relations = sorted(catalog.relations, key=lambda r: r.key)
    fks = catalog.foreign_keys
    if relations:
        first = relations[0]
        mutations.append(RenameTable(first.name, f"{first.name}_v2"))
        non_pk = [
            a
            for a in first.attributes
            if a.name not in first.primary_key
        ]
        if non_pk:
            mutations.append(
                RenameColumn(
                    first.name, non_pk[0].name, f"{non_pk[0].name}_v2"
                )
            )
    for relation in relations:
        non_pk = [
            a
            for a in relation.attributes
            if a.name not in relation.primary_key
        ]
        if len(relation.primary_key) == 1 and len(non_pk) >= 2:
            mutations.append(
                SplitTable(
                    relation.name,
                    (non_pk[-1].name,),
                    f"{relation.name}_detail",
                )
            )
            break
    if fks:
        fk = sorted(fks, key=lambda f: f.key)[0]
        mutations.append(MergeTables(fk.source_relation, fk.target_relation))
        mutations.append(
            DropForeignKey(fk.source_relation, fk.target_relation)
        )
    return mutations
