"""Schema catalog: relations, attributes, and FK-PK relationships.

The catalog is the single source of truth consumed by every layer of the
reproduction:

* the execution engine validates tuples and join conditions against it;
* the Relation Tree Mapper (paper Section 4) matches guessed names against
  catalog names and checks value conditions against column contents;
* the view graph (paper Section 5) is built from its FK-PK edges.

Identifiers are case-insensitive, as in SQL, but the catalog preserves the
declared spelling for rendering translated queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from .types import DataType


class SchemaError(ValueError):
    """Raised for inconsistent schema definitions or unknown identifiers."""


def normalize(name: str) -> str:
    """Canonical (case-insensitive) form of a SQL identifier."""
    return name.lower()


@dataclass(frozen=True)
class Attribute:
    """A typed column of a relation."""

    name: str
    data_type: DataType = DataType.TEXT
    nullable: bool = True

    @property
    def key(self) -> str:
        """Case-insensitive lookup key for this attribute."""
        return normalize(self.name)


@dataclass(frozen=True)
class ForeignKey:
    """A single-column FK-PK reference between two relations.

    The paper's schema graph has one undirected edge per FK-PK pair
    (Section 5.1); the direction here records which side holds the
    foreign key, which the composer needs to emit join conditions.
    """

    source_relation: str
    source_attribute: str
    target_relation: str
    target_attribute: str

    @property
    def key(self) -> tuple[str, str, str, str]:
        return (
            normalize(self.source_relation),
            normalize(self.source_attribute),
            normalize(self.target_relation),
            normalize(self.target_attribute),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.source_relation}.{self.source_attribute} -> "
            f"{self.target_relation}.{self.target_attribute}"
        )


class Relation:
    """A named relation with ordered, typed attributes and a primary key."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        primary_key: Sequence[str] = (),
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self._attributes: dict[str, Attribute] = {}
        self._order: list[str] = []
        for attribute in attributes:
            if attribute.key in self._attributes:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} in relation {name!r}"
                )
            self._attributes[attribute.key] = attribute
            self._order.append(attribute.key)
        self.primary_key = tuple(primary_key)
        for pk_column in self.primary_key:
            if normalize(pk_column) not in self._attributes:
                raise SchemaError(
                    f"primary key column {pk_column!r} not in relation {name!r}"
                )

    @property
    def key(self) -> str:
        """Case-insensitive lookup key for this relation."""
        return normalize(self.name)

    @property
    def attributes(self) -> list[Attribute]:
        """Attributes in declaration order."""
        return [self._attributes[k] for k in self._order]

    @property
    def attribute_names(self) -> list[str]:
        return [a.name for a in self.attributes]

    def has_attribute(self, name: str) -> bool:
        return normalize(name) in self._attributes

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[normalize(name)]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, {len(self)} attributes)"


class Catalog:
    """A database schema: a set of relations plus FK-PK relationships."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._relations: dict[str, Relation] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._fk_keys: set[tuple[str, str, str, str]] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation) -> Relation:
        if relation.key in self._relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self._relations[relation.key] = relation
        return relation

    def create_relation(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType] | Attribute],
        primary_key: Sequence[str] = (),
    ) -> Relation:
        """Convenience wrapper building :class:`Relation` from tuples."""
        attributes = [
            column if isinstance(column, Attribute) else Attribute(*column)
            for column in columns
        ]
        return self.add_relation(Relation(name, attributes, primary_key))

    def add_foreign_key(
        self,
        source_relation: str,
        source_attribute: str,
        target_relation: str,
        target_attribute: Optional[str] = None,
    ) -> ForeignKey:
        """Register an FK-PK pair after validating both endpoints.

        If *target_attribute* is omitted, the target relation's
        single-column primary key is used.
        """
        source = self.relation(source_relation)
        target = self.relation(target_relation)
        if target_attribute is None:
            if len(target.primary_key) != 1:
                raise SchemaError(
                    f"relation {target.name!r} has no single-column primary "
                    f"key; specify target_attribute explicitly"
                )
            target_attribute = target.primary_key[0]
        source.attribute(source_attribute)
        target.attribute(target_attribute)
        foreign_key = ForeignKey(
            source.name,
            source.attribute(source_attribute).name,
            target.name,
            target.attribute(target_attribute).name,
        )
        if foreign_key.key in self._fk_keys:
            raise SchemaError(f"duplicate foreign key {foreign_key}")
        self._fk_keys.add(foreign_key.key)
        self._foreign_keys.append(foreign_key)
        return foreign_key

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def relations(self) -> list[Relation]:
        return list(self._relations.values())

    @property
    def relation_names(self) -> list[str]:
        return [r.name for r in self._relations.values()]

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        return list(self._foreign_keys)

    def has_relation(self, name: str) -> bool:
        return normalize(name) in self._relations

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[normalize(name)]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return self.has_relation(name)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    # ------------------------------------------------------------------
    # graph views (consumed by repro.core.view_graph)
    # ------------------------------------------------------------------
    def foreign_keys_between(
        self, first: str, second: str
    ) -> list[ForeignKey]:
        """All FK-PK pairs connecting two relations, in either direction."""
        a, b = normalize(first), normalize(second)
        return [
            fk
            for fk in self._foreign_keys
            if {normalize(fk.source_relation), normalize(fk.target_relation)}
            == ({a, b} if a != b else {a})
        ]

    def neighbors(self, name: str) -> list[Relation]:
        """Relations that *name* refers to or is referred by (paper §4.2)."""
        center = self.relation(name).key
        seen: dict[str, Relation] = {}
        for fk in self._foreign_keys:
            src = normalize(fk.source_relation)
            dst = normalize(fk.target_relation)
            if src == center and dst != center:
                seen.setdefault(dst, self.relation(dst))
            elif dst == center and src != center:
                seen.setdefault(src, self.relation(src))
        return list(seen.values())

    def edges(self) -> list[tuple[str, str]]:
        """Undirected schema-graph edges as (relation, relation) name pairs,
        one per FK-PK pair (parallel edges collapse)."""
        seen: set[frozenset[str]] = set()
        result: list[tuple[str, str]] = []
        for fk in self._foreign_keys:
            edge = frozenset(
                (normalize(fk.source_relation), normalize(fk.target_relation))
            )
            if edge not in seen:
                seen.add(edge)
                result.append((fk.source_relation, fk.target_relation))
        return result

    def validate(self) -> None:
        """Check overall schema consistency; raises :class:`SchemaError`."""
        for fk in self._foreign_keys:
            source = self.relation(fk.source_relation)
            target = self.relation(fk.target_relation)
            source.attribute(fk.source_attribute)
            target.attribute(fk.target_attribute)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Catalog({self.name!r}, {len(self)} relations, "
            f"{len(self._foreign_keys)} foreign keys)"
        )
