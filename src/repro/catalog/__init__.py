"""Schema catalog: relations, typed attributes, and FK-PK relationships."""

from .schema import Attribute, Catalog, ForeignKey, Relation, SchemaError, normalize
from .types import DataType, TypeError_, coerce, infer_type

__all__ = [
    "Attribute",
    "Catalog",
    "DataType",
    "ForeignKey",
    "Relation",
    "SchemaError",
    "TypeError_",
    "coerce",
    "infer_type",
    "normalize",
]
