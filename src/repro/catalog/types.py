"""Column data types for the schema catalog and execution engine.

The paper's translation pipeline only needs enough of a type system to
(a) store and compare column values when checking whether a value condition
is satisfied by the tuples of an attribute (Section 4.3 of the paper) and
(b) evaluate the translated full SQL.  We therefore support the small set
of scalar types that cover both experimental databases.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any


class DataType(enum.Enum):
    """Scalar column types supported by the catalog and engine."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type order and compare numerically."""
        return self in (DataType.INTEGER, DataType.FLOAT)


_PYTHON_TYPES = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (int, float),
    DataType.TEXT: (str,),
    DataType.BOOLEAN: (bool,),
    DataType.DATE: (datetime.date, str),
}


class TypeError_(TypeError):
    """Raised when a value does not conform to its declared column type."""


def coerce(value: Any, data_type: DataType) -> Any:
    """Validate *value* against *data_type* and return its canonical form.

    ``None`` is always accepted (SQL NULL).  Integers are accepted for
    FLOAT columns and widened; ISO-format strings are accepted for DATE
    columns and parsed.  Anything else raises :class:`TypeError_`.
    """
    if value is None:
        return None
    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        raise TypeError_(f"expected bool, got {type(value).__name__}: {value!r}")
    if data_type is DataType.INTEGER:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError_(f"expected int, got {type(value).__name__}: {value!r}")
        return value
    if data_type is DataType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_(f"expected number, got {type(value).__name__}: {value!r}")
        return float(value)
    if data_type is DataType.TEXT:
        if not isinstance(value, str):
            raise TypeError_(f"expected str, got {type(value).__name__}: {value!r}")
        return value
    if data_type is DataType.DATE:
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeError_(f"invalid ISO date: {value!r}") from exc
        raise TypeError_(f"expected date, got {type(value).__name__}: {value!r}")
    raise TypeError_(f"unknown data type {data_type!r}")  # pragma: no cover


def infer_type(value: Any) -> DataType:
    """Infer the narrowest :class:`DataType` that can hold *value*."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, datetime.date):
        return DataType.DATE
    if isinstance(value, str):
        return DataType.TEXT
    raise TypeError_(f"cannot infer a column type for {value!r}")
