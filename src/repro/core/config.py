"""Tuning parameters for the Schema-free SQL translator.

Defaults follow the paper's Section 7.1: ``sigma = kref = c = 0.7`` and
``kdef = 0.3``.  The q-gram size is not stated in the paper; 3 is the
standard choice for schema-name matching and is what we use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TranslatorConfig:
    """All knobs of the translation pipeline in one immutable bundle."""

    #: relative mapping-set threshold σ (Definition 1)
    sigma: float = 0.7
    #: damping constant for neighbour-relation similarity Sim' = kref * Sim
    kref: float = 0.7
    #: default root similarity when the relation name is unspecified (§4.2)
    kdef: float = 0.3
    #: default edge weight c in the view graph (§5.2)
    c: float = 0.7
    #: q-gram length for the Jaccard string similarity
    qgram: int = 3
    #: how many translations to produce (top-k MTJNs, §6)
    top_k: int = 1
    #: cap on mapping-set size per relation tree (keeps the extended view
    #: graph tractable on large schemas; the paper's σ rule rarely exceeds it)
    max_mappings: int = 6
    #: cap on distinct values sampled per column when checking condition
    #: satisfaction.  The sample is a deterministic stride across the
    #: *whole* column (not its first rows), so evidence is unbiased with
    #: respect to insertion order; raising it trades mapping time for
    #: sensitivity to rare values
    condition_sample: int = 2000
    #: safety cap on join-network search (paper prunes by potential; this
    #: bounds worst cases on adversarial inputs)
    max_expansions: int = 200_000
    #: additive smoothing for attribute-name similarity: keeps condition
    #: evidence alive when the guessed attribute name shares no q-grams
    #: with the true one (mirrors the paper's own +1 smoothing in the
    #: (m+1)/(n+1) condition factor; §4 frames similarity as a framework)
    attr_smooth: float = 0.1
    #: multiplicative penalty per *type-incompatible* condition — a text
    #: constant can never be satisfied by an integer column, which is
    #: stronger evidence against the column than a merely unsatisfied
    #: condition
    k_incompat: float = 0.1
    #: damping for token-level matches in the string similarity: compound
    #: identifiers match on their best underscore-token pair (e.g.
    #: ``produce_company`` ~ ``company``) at this fraction of a full match
    token_damp: float = 0.85
    #: smoothing of the condition-satisfaction factor: (m + β)/(n + β).
    #: The paper uses β = 1; a smaller β makes satisfied conditions more
    #: decisive, which the larger 43/53-relation schemas need
    cond_smooth: float = 0.5
    #: bonus when an attribute tree matches a relation's primary-key
    #: column — matching a relation's key is evidence the user means that
    #: relation itself rather than one of the bridges referencing it
    pk_bonus: float = 1.1
    #: translation result cache entries per database context (0 disables).
    #: Off by default at the library level — the serving tiers (CLI,
    #: ``repro.server`` workers) enable it; see docs/CACHING.md for the
    #: key tuple, admission rules and invalidation contract
    result_cache_size: int = 0
    #: byte budget for the result cache (rendered-SQL cost estimate);
    #: whichever of the entry cap and this budget is hit first evicts
    result_cache_bytes: int = 4 << 20

    def __post_init__(self) -> None:
        if self.result_cache_size < 0:
            raise ValueError(
                f"result_cache_size must be >= 0, got {self.result_cache_size}"
            )
        if self.result_cache_bytes < 0:
            raise ValueError(
                f"result_cache_bytes must be >= 0, "
                f"got {self.result_cache_bytes}"
            )
        if not 0.0 < self.sigma <= 1.0:
            raise ValueError(f"sigma must be in (0, 1], got {self.sigma}")
        for name in ("kref", "kdef", "c"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.qgram < 1:
            raise ValueError(f"qgram must be >= 1, got {self.qgram}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")


DEFAULT_CONFIG = TranslatorConfig()
