"""Cooperative budgets and the degradation ladder for translation.

The MTJN search (§6.1) is worst-case exponential and the extended view
graph's view-instance enumeration is combinatorial, so a production
deployment needs every translation to run under an explicit *budget*: a
wall-clock deadline plus counters on mapping candidates and network
expansions.  Stages check the budget cooperatively in their hot loops and
raise :class:`BudgetExceeded` — a :class:`~repro.errors.ReproError` — when
it runs out, which the translator turns into a rung of the degradation
ladder (see ``translator.SchemaFreeTranslator._generate_networks``):

    full top-k MTJN search
      → reduced search (k=1, truncated mapping sets, views pruned)
        → greedy single join path
          → best-effort partial translation (no join search at all)

``Budget.clock`` is injectable so tests (and the fault-injection harness
in ``repro.testing.faults``) can advance time deterministically.

Failures that survive past the ladder surface as typed
:class:`~repro.errors.ReproError` subclasses, which the CLI maps onto
process exit codes (0 ok, 2 syntax, 3 translation, 4 engine,
5 internal, 6 shed by admission control, 7 backend unavailable; 1 is an
unhandled crash outside the CLI's guard) — the full table with each
error class lives in :mod:`repro.service`'s module docstring.  When tracing is enabled
every rung attempt is a ``rung:<name>`` span recording its outcome
(``ok`` / ``budget-exhausted`` / ``no-network`` / ``disconnected``);
see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from ..errors import Diagnostic, ReproError

#: Names of the degradation-ladder rungs, strongest first.
LADDER = ("full", "reduced", "greedy", "partial")


class BudgetExceeded(ReproError):
    """A translation stage ran out of wall-clock time or search quota."""


class Budget:
    """A cooperative translation budget.

    ``deadline`` is seconds of wall-clock time from construction;
    ``max_candidates`` bounds mapping/assignment candidates considered and
    ``max_expansions`` bounds join-network expansions.  ``None`` means
    unlimited.  Stages call :meth:`check` (time) and
    :meth:`charge_candidates` / :meth:`charge_expansions` (quota), all of
    which raise :class:`BudgetExceeded` once the budget is spent.

    Budgets are thread-safe: every budget and all of its :meth:`slice`
    descendants share one lock, so charging a child and noting the charge
    on its ancestors is a single atomic step.  Parent counter totals are
    therefore exact even when several worker threads hammer sliced
    children of the same request budget concurrently.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_candidates: Optional[int] = None,
        max_expansions: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        parent: Optional["Budget"] = None,
    ) -> None:
        self.clock = clock
        self.deadline = deadline
        self.max_candidates = max_candidates
        self.max_expansions = max_expansions
        self.started_at = clock()
        self.deadline_at = None if deadline is None else self.started_at + deadline
        self.candidates = 0
        self.expansions = 0
        self.exhausted_reason: Optional[str] = None
        #: instrumentation linkage: charges against a sliced child budget
        #: are *noted* on the parent's counters (without enforcing the
        #: parent's caps), so the top-level budget totals the work done
        #: across every degradation rung — TranslationStats reads it
        self._parent = parent
        #: one lock per slice family (the root allocates, children share)
        self._lock = threading.Lock() if parent is None else parent._lock

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @classmethod
    def unlimited(cls) -> "Budget":
        return cls()

    @property
    def is_exhausted(self) -> bool:
        return self.exhausted_reason is not None

    def elapsed(self) -> float:
        return self.clock() - self.started_at

    def remaining_time(self) -> Optional[float]:
        """Seconds left before the deadline, or None when unlimited."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - self.clock())

    def time_exceeded(self) -> bool:
        return self.deadline_at is not None and self.clock() >= self.deadline_at

    def snapshot(self) -> dict[str, Any]:
        return {
            "elapsed": round(self.elapsed(), 6),
            "deadline": self.deadline,
            "candidates": self.candidates,
            "max_candidates": self.max_candidates,
            "expansions": self.expansions,
            "max_expansions": self.max_expansions,
        }

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def check(self, stage: str) -> None:
        """Raise when the deadline has passed (or the budget was already
        marked exhausted, e.g. by fault injection)."""
        if self.exhausted_reason is not None:
            self._raise(stage, self.exhausted_reason)
        if self.time_exceeded():
            self.exhaust(stage, f"deadline of {self.deadline:.3f}s passed")

    def _note(self, candidates: int = 0, expansions: int = 0) -> None:
        """Count work charged to a child slice (never raises).

        Callers must hold the family lock; the whole ancestor chain
        shares it, so the recursion stays lock-free.
        """
        self.candidates += candidates
        self.expansions += expansions
        if self._parent is not None:
            self._parent._note(candidates, expansions)

    def charge_candidates(self, n: int = 1, stage: str = "map") -> None:
        with self._lock:
            self.candidates += n
            if self._parent is not None:
                self._parent._note(candidates=n)
            over = (
                self.max_candidates is not None
                and self.candidates > self.max_candidates
            )
            total = self.candidates
        if over:
            self.exhaust(
                stage,
                f"candidate budget exhausted "
                f"({total} > {self.max_candidates})",
            )
        self.check(stage)

    def charge_expansions(self, n: int = 1, stage: str = "network") -> None:
        with self._lock:
            self.expansions += n
            if self._parent is not None:
                self._parent._note(expansions=n)
            over = (
                self.max_expansions is not None
                and self.expansions > self.max_expansions
            )
            total = self.expansions
        if over:
            self.exhaust(
                stage,
                f"expansion budget exhausted "
                f"({total} > {self.max_expansions})",
            )
        self.check(stage)

    def exhaust(self, stage: str, reason: str = "budget exhausted") -> None:
        """Mark the budget spent and raise.  Sticky: every later
        :meth:`check` re-raises, so a stage cannot limp past exhaustion."""
        self.exhausted_reason = reason
        self._raise(stage, reason)

    def _raise(self, stage: str, reason: str) -> None:
        raise BudgetExceeded(
            f"translation budget exceeded in stage {stage!r}: {reason}",
            diagnostic=Diagnostic(
                stage=stage,
                message=reason,
                candidates=self.candidates,
                detail=self.snapshot(),
            ),
        )

    # ------------------------------------------------------------------
    # sub-budgets (one per degradation rung)
    # ------------------------------------------------------------------
    def slice(
        self, time_fraction: float = 1.0, counter_scale: float = 1.0
    ) -> "Budget":
        """A child budget spending a fraction of what remains.

        The child gets ``time_fraction`` of the remaining wall-clock time
        (never extending past the parent's own deadline) and fresh
        counters scaled by ``counter_scale``.  The degradation ladder
        slices the incoming budget so that an exhausted rung always
        leaves time for the cheaper rungs below it.
        """
        remaining = self.remaining_time()
        deadline = None if remaining is None else remaining * time_fraction

        def scaled(cap: Optional[int]) -> Optional[int]:
            if cap is None:
                return None
            return max(1, int(cap * counter_scale))

        return Budget(
            deadline=deadline,
            max_candidates=scaled(self.max_candidates),
            max_expansions=scaled(self.max_expansions),
            clock=self.clock,
            parent=self,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Budget(deadline={self.deadline}, "
            f"candidates={self.candidates}/{self.max_candidates}, "
            f"expansions={self.expansions}/{self.max_expansions})"
        )
