"""The paper's contribution: the Schema-free SQL translation pipeline."""

from ..errors import Diagnostic, ReproError
from .composer import ComposedQuery, Composer, NoJoinNetworkError, TranslationError
from .resilience import LADDER, Budget, BudgetExceeded
from .context import ContextStats, NameIndex, TranslationContext, TranslationStats
from .cost import full_sql_cost, gui_cost, sfsql_cost
from .explain import describe_network, describe_translation
from .config import DEFAULT_CONFIG, TranslatorConfig
from .join_network import JoinNetwork
from .mapper import RelationMapping, RelationTreeMapper, TreeMappings
from .mtjn import GenerationStats, MTJNGenerator
from .query_log import QueryLog, views_from_sql
from .relation_tree import (
    AttributeTree,
    RelationTree,
    attribute_key,
    build_relation_trees,
    relation_key,
)
from .similarity import SimilarityEvaluator, qgrams, string_similarity
from .translator import SchemaFreeTranslator, Translation
from .triples import Condition, ExpressionTriple, JoinFragment, extract
from .view_graph import (
    ExtendedViewGraph,
    View,
    ViewGraph,
    ViewInstance,
    ViewJoin,
    XEdge,
    XNode,
)

__all__ = [
    "AttributeTree",
    "Budget",
    "BudgetExceeded",
    "ComposedQuery",
    "Diagnostic",
    "LADDER",
    "NoJoinNetworkError",
    "ReproError",
    "describe_network",
    "describe_translation",
    "full_sql_cost",
    "gui_cost",
    "sfsql_cost",
    "Composer",
    "Condition",
    "ContextStats",
    "DEFAULT_CONFIG",
    "ExpressionTriple",
    "ExtendedViewGraph",
    "GenerationStats",
    "JoinFragment",
    "JoinNetwork",
    "MTJNGenerator",
    "NameIndex",
    "QueryLog",
    "RelationMapping",
    "RelationTree",
    "RelationTreeMapper",
    "SchemaFreeTranslator",
    "SimilarityEvaluator",
    "Translation",
    "TranslationContext",
    "TranslationError",
    "TranslationStats",
    "TranslatorConfig",
    "TreeMappings",
    "View",
    "ViewGraph",
    "ViewInstance",
    "ViewJoin",
    "XEdge",
    "XNode",
    "attribute_key",
    "build_relation_trees",
    "extract",
    "qgrams",
    "relation_key",
    "string_similarity",
    "views_from_sql",
]
