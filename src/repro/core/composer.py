"""Standard SQL Composer (paper Section 6.2).

Given one MTJN, translation of a Schema-free SQL block is a three-step
rewrite:

1. every uncertain relation / attribute name is replaced by the exact
   name of the corresponding relation (per the MTJN's node-per-tree
   assignment) and attribute (per the mapper's argmax record, §4.3);
2. all relations of the MTJN are placed in the FROM clause, with ``AS``
   aliases whenever a relation occurs more than once;
3. every edge of the MTJN contributes an FK-PK join condition, ANDed
   into the WHERE clause.

Only the current block is rewritten; nested sub-queries are handled by
the translator one block at a time (§2.2.5), so the rewrite never
descends through sub-query boundaries.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..catalog import Catalog
from ..errors import Diagnostic, ReproError
from ..sqlkit import ast, render
from .join_network import JoinNetwork
from .mapper import TreeMappings
from .relation_tree import RelationTree, TreeKey, attribute_key, relation_key
from .view_graph import XNode


class TranslationError(ReproError, RuntimeError):
    """Raised when a Schema-free SQL query cannot be translated."""


class NoJoinNetworkError(TranslationError):
    """No join network connects all relation trees of a block.

    Kept distinct from the base error because the degradation ladder can
    recover from it (greedy path / partial composition) while mapping and
    composition failures are terminal."""


@dataclasses.dataclass
class ComposedQuery:
    """One full-SQL interpretation of a schema-free block."""

    select: ast.Select
    network: JoinNetwork
    weight: float
    #: binding name (lower) -> relation key, for correlated inner blocks
    bindings: dict[str, str]

    @property
    def sql(self) -> str:
        return render(self.select)


def transform_block(
    node: ast.Node, fn: Callable[[ast.Node], Optional[ast.Node]]
) -> ast.Node:
    """Like :func:`ast.transform` but does not descend into sub-queries."""
    if isinstance(node, (ast.Select, ast.SetOp)):
        return node
    replacements = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        new_value = _transform_value(value, fn)
        if new_value is not value:
            replacements[field.name] = new_value
    if replacements:
        node = dataclasses.replace(node, **replacements)
    replaced = fn(node)
    return node if replaced is None else replaced


def _transform_value(value, fn):
    if isinstance(value, (ast.Select, ast.SetOp)):
        return value
    if isinstance(value, ast.Node):
        return transform_block(value, fn)
    if isinstance(value, tuple):
        items = tuple(_transform_value(item, fn) for item in value)
        if any(a is not b for a, b in zip(items, value)):
            return items
        return value
    return value


class Composer:
    """Translates one block + one MTJN into full SQL."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def compose(
        self,
        select: ast.Select,
        trees: list[RelationTree],
        mappings: dict[TreeKey, TreeMappings],
        network: JoinNetwork,
        from_bindings: dict[str, ast.TableRef],
        outer_bindings: Optional[dict[str, str]] = None,
        weight: Optional[float] = None,
    ) -> ComposedQuery:
        outer_bindings = outer_bindings or {}
        node_by_tree: dict[TreeKey, XNode] = {}
        for node in network.nodes.values():
            if node.tree_key is not None:
                node_by_tree[node.tree_key] = node
        for tree in trees:
            if tree.key not in node_by_tree:
                raise TranslationError(
                    f"join network does not cover relation tree {tree.label}",
                    diagnostic=Diagnostic(
                        stage="compose",
                        message="join network misses a relation tree",
                        token=tree.label,
                        candidates=len(network.nodes),
                    ),
                )
        bindings = self._assign_bindings(network, trees, node_by_tree)
        rewritten = self._rewrite_names(
            select,
            trees,
            mappings,
            node_by_tree,
            bindings,
            from_bindings,
            outer_bindings,
        )
        from_items = self._build_from(network, bindings)
        where = self._add_join_conditions(rewritten.where, network, bindings)
        final = dataclasses.replace(
            rewritten, from_items=from_items, where=where
        )
        if weight is None:
            weight = network.best_weight(())
        return ComposedQuery(
            select=final,
            network=network,
            weight=weight,
            bindings={
                binding.lower(): node.relation
                for node, binding in bindings.items()
            },
        )

    # ------------------------------------------------------------------
    # step 2 support: binding assignment
    # ------------------------------------------------------------------
    def _assign_bindings(
        self,
        network: JoinNetwork,
        trees: list[RelationTree],
        node_by_tree: dict[TreeKey, XNode],
    ) -> dict[XNode, str]:
        """Choose a FROM-clause binding name for every MTJN node.

        User-supplied aliases are kept; relations occurring once keep
        their plain name; repeated relations get ``Name_rtK`` aliases in
        the paper's style.
        """
        occurrences: dict[str, list[XNode]] = {}
        for node in network.nodes.values():
            occurrences.setdefault(node.relation, []).append(node)
        tree_by_key = {tree.key: tree for tree in trees}
        bindings: dict[XNode, str] = {}
        used: set[str] = set()
        for relation_name, nodes in occurrences.items():
            declared = self.catalog.relation(relation_name).name
            for node in sorted(nodes, key=lambda n: n.node_id):
                tree = (
                    tree_by_key.get(node.tree_key)
                    if node.tree_key is not None
                    else None
                )
                if tree is not None and tree.alias:
                    candidate = tree.alias
                elif len(nodes) == 1:
                    candidate = declared
                elif tree is not None:
                    candidate = f"{declared}_{tree.label}"
                else:
                    candidate = f"{declared}_{node.node_id}"
                base = candidate
                suffix = 2
                while candidate.lower() in used:
                    candidate = f"{base}_{suffix}"
                    suffix += 1
                used.add(candidate.lower())
                bindings[node] = candidate
        return bindings

    # ------------------------------------------------------------------
    # step 1: exact-name instantiation
    # ------------------------------------------------------------------
    def _rewrite_names(
        self,
        select: ast.Select,
        trees: list[RelationTree],
        mappings: dict[TreeKey, TreeMappings],
        node_by_tree: dict[TreeKey, XNode],
        bindings: dict[XNode, str],
        from_bindings: dict[str, ast.TableRef],
        outer_bindings: dict[str, str],
    ) -> ast.Select:
        tree_by_key = {tree.key: tree for tree in trees}

        def rewrite(node: ast.Node) -> Optional[ast.Node]:
            if not isinstance(node, ast.ColumnRef):
                return None
            qualifier = node.relation
            key = relation_key(qualifier, node.attribute, from_bindings)
            tree = tree_by_key.get(key)
            if tree is None:
                if (
                    qualifier is not None
                    and qualifier.is_known
                    and qualifier.text.lower() in outer_bindings
                    and qualifier.text.lower() not in from_bindings
                ):
                    # correlated reference into an enclosing, already-
                    # translated block: resolve only the attribute,
                    # against the outer binding's relation
                    return self._rewrite_outer_ref(node, outer_bindings)
                return None
            xnode = node_by_tree[tree.key]
            mapping = mappings[tree.key].candidate_for(xnode.relation)
            if mapping is None:
                raise TranslationError(
                    f"no mapping of {tree.label} onto {xnode.relation!r}",
                    diagnostic=Diagnostic(
                        stage="compose",
                        message="mapped relation lost its candidate entry",
                        token=tree.label,
                    ),
                )
            relation = mapping.relation
            attr_term = node.attribute
            attr_name = mapping.attribute_map.get(attribute_key(attr_term))
            if attr_name is None and attr_term.is_known:
                if relation.has_attribute(attr_term.text):
                    attr_name = relation.attribute(attr_term.text).name
            if attr_name is None:
                raise TranslationError(
                    f"cannot resolve attribute {attr_term.render()!r} "
                    f"in relation {relation.name!r}",
                    diagnostic=Diagnostic(
                        stage="compose",
                        message="no attribute of the mapped relation matches",
                        token=attr_term.render(),
                        candidates=len(relation.attribute_names),
                    ),
                )
            return ast.ColumnRef(
                attribute=ast.exact(attr_name),
                relation=ast.exact(bindings[xnode]),
            )

        rewritten = transform_block_select(select, rewrite)
        return rewritten

    def _rewrite_outer_ref(
        self, node: ast.ColumnRef, outer_bindings: dict[str, str]
    ) -> ast.ColumnRef:
        assert node.relation is not None
        relation = self.catalog.relation(outer_bindings[node.relation.text.lower()])
        attr_term = node.attribute
        if attr_term.is_known and relation.has_attribute(attr_term.text):
            attr_name = relation.attribute(attr_term.text).name
        elif attr_term.is_known:
            # fuzzy attribute against a fixed outer relation: best q-gram match
            from .similarity import string_similarity

            attr_name = max(
                relation.attribute_names,
                key=lambda a: string_similarity(attr_term.text, a),
            )
        else:
            raise TranslationError(
                f"cannot resolve outer reference {node.render()!r}",
                diagnostic=Diagnostic(
                    stage="compose",
                    message="correlated reference has no resolvable attribute",
                    token=node.render(),
                ),
            )
        return ast.ColumnRef(
            attribute=ast.exact(attr_name),
            relation=ast.exact(node.relation.text),
        )

    # ------------------------------------------------------------------
    # step 2: FROM clause
    # ------------------------------------------------------------------
    def _build_from(
        self, network: JoinNetwork, bindings: dict[XNode, str]
    ) -> tuple[ast.Node, ...]:
        items = []
        for node in sorted(network.nodes.values(), key=lambda n: n.node_id):
            declared = self.catalog.relation(node.relation).name
            binding = bindings[node]
            alias = None if binding.lower() == declared.lower() else binding
            items.append(ast.TableRef(ast.exact(declared), alias))
        return tuple(items)

    # ------------------------------------------------------------------
    # step 3: join conditions
    # ------------------------------------------------------------------
    def _add_join_conditions(
        self,
        where: Optional[ast.Node],
        network: JoinNetwork,
        bindings: dict[XNode, str],
    ) -> Optional[ast.Node]:
        conditions: list[ast.Node] = []
        seen: set[frozenset[str]] = set()
        if where is not None:
            for conjunct in _conjuncts(where):
                conditions.append(conjunct)
                seen.add(_condition_key(conjunct))
        for edge in network.all_edges:
            condition = ast.BinaryOp(
                "=",
                ast.ColumnRef(
                    ast.exact(edge.left_attribute),
                    ast.exact(bindings[edge.left]),
                ),
                ast.ColumnRef(
                    ast.exact(edge.right_attribute),
                    ast.exact(bindings[edge.right]),
                ),
            )
            key = _condition_key(condition)
            if key in seen:
                continue
            seen.add(key)
            conditions.append(condition)
        if not conditions:
            return None
        combined = conditions[0]
        for condition in conditions[1:]:
            combined = ast.BinaryOp("and", combined, condition)
        return combined


def transform_block_select(
    select: ast.Select, fn: Callable[[ast.Node], Optional[ast.Node]]
) -> ast.Select:
    """Apply *fn* to every expression of the block without entering
    sub-queries, returning the rewritten Select."""
    replacements = {}
    for field in dataclasses.fields(select):
        value = getattr(select, field.name)
        new_value = _transform_value(value, fn)
        if new_value is not value:
            replacements[field.name] = new_value
    if replacements:
        return dataclasses.replace(select, **replacements)
    return select


def _conjuncts(expr: ast.Node) -> list[ast.Node]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _condition_key(expr: ast.Node) -> frozenset[str]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "=":
        return frozenset(
            (render(expr.left).lower(), render(expr.right).lower())
        )
    return frozenset((render(expr).lower(),))
