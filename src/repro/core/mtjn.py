"""Top-k MTJN generation — Algorithms 1, 2 and 3 of the paper (§6.1).

Algorithm 1 (InitMTJNGen) ranks the nodes mapped by the first relation
tree by potential and expands each as a root, removing the root from the
graph afterwards to avoid regenerating isomorphic networks from a
different starting point.

Algorithm 2 (KMTJNUpdate) best-first expands partial join networks from a
priority queue ordered by *potential*, pushing only expansions that pass
the legality test and whose potential still beats the current k-th MTJN.

Algorithm 3 (PotentialEstimate) upper-bounds the weight of any MTJN
reachable from a partial network: for every uncovered relation tree it
adds the strongest path from one of the tree's mapped nodes, with view
edges optimistically reweighted to their square roots.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

from ..obs import NULL_TRACER
from .config import DEFAULT_CONFIG, TranslatorConfig
from .join_network import JoinNetwork
from .relation_tree import RelationTree, TreeKey
from .resilience import Budget
from .view_graph import ExtendedViewGraph, ViewInstance, XNode


@dataclass
class GenerationStats:
    """Counters exposed for the efficiency experiment (Figure 17)."""

    expanded: int = 0
    pushed: int = 0
    pruned: int = 0
    emitted: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


@dataclass(order=True)
class _QueueEntry:
    negative_potential: float
    sequence: int
    network: JoinNetwork = field(compare=False)


class MTJNGenerator:
    """Generates the top-k minimal total join networks for a query."""

    def __init__(
        self,
        graph: ExtendedViewGraph,
        config: TranslatorConfig = DEFAULT_CONFIG,
        budget: Optional[Budget] = None,
        stats: Optional[GenerationStats] = None,
        tracer=None,  # Optional[repro.obs.Tracer]
    ) -> None:
        self.graph = graph
        self.config = config
        self.budget = budget
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # an injected accumulator lets the translator total the search
        # counters across degradation rungs (each rung is one generator)
        self.stats = stats if stats is not None else GenerationStats()
        self._required: list[TreeKey] = [tree.key for tree in graph.trees]
        self._path_cache: dict[int, dict[int, float]] = {}
        self._path_version = 0
        self._instances_by_node: dict[int, list[ViewInstance]] = {}
        for instance in graph.view_instances:
            for node in instance.nodes:
                self._instances_by_node.setdefault(node.node_id, []).append(
                    instance
                )

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def generate(self, k: Optional[int] = None) -> list[JoinNetwork]:
        k = k or self.config.top_k
        with self.tracer.span("mtjn") as span:
            base = self.stats.as_dict() if span.enabled else None
            try:
                networks = self._generate(k)
            finally:
                if span.enabled:
                    now = self.stats.as_dict()
                    span.set(
                        k=k,
                        **{key: now[key] - base[key] for key in now},
                    )
            if span.enabled:
                span.set(networks=len(networks))
            return networks

    def _generate(self, k: int) -> list[JoinNetwork]:
        if not self._required:
            return []
        first_key = self._required[0]
        roots = list(self.graph.nodes_for_tree(first_key))
        if not roots:
            return []
        top: list[tuple[float, JoinNetwork]] = []
        seen: set[frozenset] = set()
        roots.sort(
            key=lambda node: -self._potential(JoinNetwork.single(node), top, k)
        )
        removed: list[XNode] = []
        try:
            for root in roots:
                if self.budget is not None:
                    self.budget.check("network")
                self._expand_root(root, k, top, seen)
                self.graph.remove_node(root)
                removed.append(root)
                self._invalidate_paths()
        finally:
            for node in removed:
                self.graph.restore_node(node)
            self._invalidate_paths()
        top.sort(key=lambda pair: -pair[0])
        return [network for _, network in top[:k]]

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def _expand_root(
        self,
        root: XNode,
        k: int,
        top: list[tuple[float, JoinNetwork]],
        seen: set[frozenset],
    ) -> None:
        counter = itertools.count()
        start = JoinNetwork.single(root)
        queue: list[_QueueEntry] = []
        self._consider(start, k, top, seen, queue, counter)
        while queue:
            if self.stats.expanded >= self.config.max_expansions:
                break
            if self.budget is not None:
                self.budget.check("network")
            entry = heapq.heappop(queue)
            network = entry.network
            # re-check: the k-th weight may have risen since this was pushed
            if -entry.negative_potential <= self._kth_weight(top, k):
                self.stats.pruned += 1
                continue
            for expanded in self._expansions(network):
                self.stats.expanded += 1
                if self.budget is not None:
                    self.budget.charge_expansions(1, stage="network")
                self._consider(expanded, k, top, seen, queue, counter)

    def _expansions(self, network: JoinNetwork) -> Iterable[JoinNetwork]:
        for node_id in network.rightmost:
            node = network.nodes[node_id]
            if self.graph.is_removed(node):
                continue
            for edge in self.graph.incident_edges(node):
                expanded = network.expand_edge(edge, node)
                if expanded is not None:
                    yield expanded
            for instance in self._instances_by_node.get(node_id, ()):
                if any(self.graph.is_removed(n) for n in instance.nodes):
                    continue
                expanded = network.expand_view(instance, node)
                if expanded is not None:
                    yield expanded

    def _consider(
        self,
        network: JoinNetwork,
        k: int,
        top: list[tuple[float, JoinNetwork]],
        seen: set[frozenset],
        queue: list[_QueueEntry],
        counter,
    ) -> None:
        canonical = network.canonical
        if canonical in seen:
            return
        if network.is_total(self._required):
            if network.is_minimal():
                seen.add(canonical)
                weight = network.best_weight(self.graph.view_instances)
                top.append((weight, network))
                top.sort(key=lambda pair: -pair[0])
                del top[max(k, 1) :]
                self.stats.emitted += 1
            return
        potential = self._potential(network, top, k)
        if potential <= self._kth_weight(top, k):
            self.stats.pruned += 1
            return
        seen.add(canonical)
        heapq.heappush(
            queue, _QueueEntry(-potential, next(counter), network)
        )
        self.stats.pushed += 1

    @staticmethod
    def _kth_weight(top: list[tuple[float, JoinNetwork]], k: int) -> float:
        if len(top) < k:
            return 0.0
        return top[k - 1][0]

    # ------------------------------------------------------------------
    # Algorithm 3
    # ------------------------------------------------------------------
    def _potential(
        self,
        network: JoinNetwork,
        top: list[tuple[float, JoinNetwork]],
        k: int,
    ) -> float:
        """Algorithm 3: add, per uncovered relation tree, the strongest
        path from one of its mapped nodes — and add the *whole* path to
        the growing member set (``jn'.add(p)``), so that path segments
        shared between trees are charged only once and the estimate stays
        an upper bound."""
        weight = network.construction_weight
        member_ids = set(network.nodes)
        for key in self._required:
            if key in network.tree_keys:
                continue
            best_path = 0.0
            best_candidate: Optional[int] = None
            best_member: Optional[int] = None
            for candidate in self.graph.nodes_for_tree(key):
                paths, _parents = self._paths_from(candidate)
                for node_id in member_ids:
                    path_weight = paths.get(node_id, 0.0)
                    if path_weight > best_path:
                        best_path = path_weight
                        best_candidate = candidate.node_id
                        best_member = node_id
            if best_path <= 0.0:
                return 0.0  # this tree is unreachable from the network
            weight *= best_path
            if best_candidate is not None and best_member is not None:
                member_ids.update(
                    self._path_nodes(best_candidate, best_member)
                )
        return weight

    def _path_nodes(self, source_id: int, target_id: int) -> list[int]:
        """Node ids on the strongest path from *source* to *target*."""
        _paths, parents = self._path_cache[source_id]
        nodes = [target_id]
        current = target_id
        while current != source_id:
            current = parents.get(current)
            if current is None:
                break
            nodes.append(current)
        return nodes

    def _paths_from(self, node: XNode):
        cached = self._path_cache.get(node.node_id)
        if cached is None:
            cached = self.graph.strongest_paths_from(node, with_parents=True)
            self._path_cache[node.node_id] = cached
        return cached

    def _invalidate_paths(self) -> None:
        self._path_cache.clear()
        self._path_version += 1
