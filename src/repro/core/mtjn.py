"""Top-k MTJN generation — Algorithms 1, 2 and 3 of the paper (§6.1).

Algorithm 1 (InitMTJNGen) ranks the nodes mapped by the first relation
tree by potential and expands each as a root, removing the root from the
graph afterwards to avoid regenerating isomorphic networks from a
different starting point.

Algorithm 2 (KMTJNUpdate) best-first expands partial join networks from a
priority queue ordered by *potential*, pushing only expansions that pass
the legality test and whose potential still beats the current k-th MTJN.

Algorithm 3 (PotentialEstimate) upper-bounds the weight of any MTJN
reachable from a partial network: for every uncovered relation tree it
adds the strongest path from one of the tree's mapped nodes, with view
edges optimistically reweighted to their square roots.

Three performance layers sit on top of the paper's algorithms (DESIGN.md
§14):

* per-tree *reach arrays* — the strongest-path maps of all of a tree's
  candidate nodes folded into one ``node id -> weight`` array per path
  epoch, so Algorithm 3 scores a partial network with one dict probe per
  member instead of a candidates × members double loop;
* *dominance pruning* — ``construction_weight`` already upper-bounds the
  potential (every path factor is ≤ 1), so a partial network whose
  construction weight cannot beat the current k-th MTJN is rejected
  before the potential is even computed;
* a *schema-skeleton reachability oracle* — the context's precomputed
  FK-component table proves trees unreachable without running a single
  extended-graph Dijkstra, valid whenever the graph contains no
  synthesised (non-FK) view edge.

Generated networks are memoized on the shared TranslationContext keyed
by :func:`network_signature`; the generator itself stays memo-free so
each rung's search remains independently testable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

from ..obs import NULL_TRACER
from .config import DEFAULT_CONFIG, TranslatorConfig
from .join_network import JoinNetwork
from .mapper import TreeMappings
from .relation_tree import RelationTree, TreeKey
from .resilience import Budget
from .view_graph import ExtendedViewGraph, View, ViewInstance, XNode


@dataclass
class GenerationStats:
    """Counters exposed for the efficiency experiment (Figure 17) and the
    ``--stats`` / ``repro_mtjn_search_total`` observability surface.

    The frontier accounting is conservation-exact: every network pushed
    onto a root's priority queue is later popped-and-expanded
    (``expanded``), popped-and-discarded because the k-th weight rose
    while it waited (``pruned``), or still enqueued when the root's
    search ends (``leftover``) — so ``pushed == expanded + pruned +
    leftover`` always holds.  ``dominated`` counts candidates rejected at
    admission (construction-weight dominance or potential bound) that
    therefore never entered the frontier; ``memo_hits`` counts whole
    generations answered from the context's network memo.
    """

    #: frontier entries popped and expanded
    expanded: int = 0
    #: networks admitted to a frontier
    pushed: int = 0
    #: frontier entries discarded stale at pop time
    pruned: int = 0
    #: candidates rejected at admission by the dominance/potential bound
    dominated: int = 0
    #: frontier entries abandoned when a root's search ended
    leftover: int = 0
    #: total minimal join networks emitted into the top-k
    emitted: int = 0
    #: generations answered from the context network memo (set by the
    #: translator — a memo hit never constructs a generator)
    memo_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


@dataclass(order=True)
class _QueueEntry:
    negative_potential: float
    sequence: int
    network: JoinNetwork = field(compare=False)


def network_signature(
    trees: Sequence[RelationTree],
    mappings: dict[TreeKey, TreeMappings],
    views: Sequence[View],
    k: int,
    max_expansions: int,
    config: TranslatorConfig,
) -> tuple:
    """Memo key capturing everything MTJN generation reads.

    The extended view graph is a pure function of the tree shapes and
    name evidence, the *ordered* candidate relations of every mapping,
    the view set, and the similarity constants — node ids are assigned
    deterministically from exactly these inputs — and the search result
    is additionally a function of ``k`` and the expansion cap.  Two
    queries that differ only in conditions or selected attributes
    therefore share one signature, which is what makes the context-level
    network memo correct (see TranslationContext.cached_networks).
    """
    tree_parts = []
    for tree in trees:
        mapping = mappings.get(tree.key)
        candidates = (
            tuple(candidate.relation.key for candidate in mapping.candidates)
            if mapping is not None
            else ()
        )
        names = tuple(
            attribute.known_name
            for attribute in tree.attribute_trees
            if attribute.known_name
        )
        tree_parts.append((tree.key, tree.known_name, names, candidates))
    view_parts = tuple(
        (view.name, view.signature, view.source, view.strength)
        for view in views
    )
    return (
        tuple(tree_parts),
        view_parts,
        k,
        max_expansions,
        (config.c, config.kref, config.qgram),
    )


class MTJNGenerator:
    """Generates the top-k minimal total join networks for a query."""

    def __init__(
        self,
        graph: ExtendedViewGraph,
        config: TranslatorConfig = DEFAULT_CONFIG,
        budget: Optional[Budget] = None,
        stats: Optional[GenerationStats] = None,
        tracer=None,  # Optional[repro.obs.Tracer]
    ) -> None:
        self.graph = graph
        self.config = config
        self.budget = budget
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # an injected accumulator lets the translator total the search
        # counters across degradation rungs (each rung is one generator)
        self.stats = stats if stats is not None else GenerationStats()
        #: expansion products generated by *this* generator — the
        #: ``max_expansions`` cap must be per-search, not per-accumulator,
        #: or a degraded rung inherits the exhausted counter of the rung
        #: it is rescuing and gives up immediately
        self._generated = 0
        self._required: list[TreeKey] = [tree.key for tree in graph.trees]
        self._path_cache: dict[int, dict[int, float]] = {}
        self._reach_cache: dict[TreeKey, tuple[dict, dict]] = {}
        self._path_version = 0
        self._instances_by_node: dict[int, list[ViewInstance]] = {}
        for instance in graph.view_instances:
            for node in instance.nodes:
                self._instances_by_node.setdefault(node.node_id, []).append(
                    instance
                )
        # schema-skeleton reachability oracle: node id -> FK-component id,
        # sound as a *negative* oracle only while every extended edge
        # lifts a real FK skeleton edge
        self._component_of: Optional[list[int]] = None
        context = graph.context
        if (
            context is not None
            and not graph.has_synthetic_edges
            and context.database.catalog is graph.catalog
        ):
            components = getattr(context, "schema_components", None)
            if components is not None:
                self._component_of = [
                    components.get(node.relation, -1) for node in graph.nodes
                ]

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def generate(self, k: Optional[int] = None) -> list[JoinNetwork]:
        k = k or self.config.top_k
        with self.tracer.span("mtjn") as span:
            base = self.stats.as_dict() if span.enabled else None
            try:
                networks = self._generate(k)
            finally:
                if span.enabled:
                    now = self.stats.as_dict()
                    span.set(
                        k=k,
                        **{key: now[key] - base[key] for key in now},
                    )
            if span.enabled:
                span.set(networks=len(networks))
            return networks

    def _generate(self, k: int) -> list[JoinNetwork]:
        if not self._required:
            return []
        first_key = self._required[0]
        roots = list(self.graph.nodes_for_tree(first_key))
        if not roots:
            return []
        top: list[tuple[float, JoinNetwork]] = []
        seen: set[frozenset] = set()
        roots.sort(
            key=lambda node: -self._potential(JoinNetwork.single(node), top, k)
        )
        removed: list[XNode] = []
        try:
            for root in roots:
                if self.budget is not None:
                    self.budget.check("network")
                self._expand_root(root, k, top, seen)
                self.graph.remove_node(root)
                removed.append(root)
                self._invalidate_paths()
        finally:
            for node in removed:
                self.graph.restore_node(node)
            self._invalidate_paths()
        top.sort(key=lambda pair: (-pair[0], pair[1].sort_key))
        return [network for _, network in top[:k]]

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def _expand_root(
        self,
        root: XNode,
        k: int,
        top: list[tuple[float, JoinNetwork]],
        seen: set[frozenset],
    ) -> None:
        counter = itertools.count()
        start = JoinNetwork.single(root)
        queue: list[_QueueEntry] = []
        self._consider(start, k, top, seen, queue, counter)
        try:
            while queue:
                if self._generated >= self.config.max_expansions:
                    break
                if self.budget is not None:
                    self.budget.check("network")
                entry = heapq.heappop(queue)
                network = entry.network
                # re-check: the k-th weight may have risen since the push;
                # ties survive (strict <) so equal-weight networks reach
                # the deterministic sort-key comparison in _consider
                if -entry.negative_potential < self._kth_weight(top, k):
                    self.stats.pruned += 1
                    continue
                self.stats.expanded += 1
                for expanded in self._expansions(network):
                    self._generated += 1
                    if self.budget is not None:
                        self.budget.charge_expansions(1, stage="network")
                    self._consider(expanded, k, top, seen, queue, counter)
        finally:
            self.stats.leftover += len(queue)

    def _expansions(self, network: JoinNetwork) -> Iterable[JoinNetwork]:
        max_label = network.max_view_label
        for node_id in network.rightmost:
            node = network.nodes[node_id]
            if self.graph.is_removed(node):
                continue
            for edge in self.graph.incident_edges(node):
                expanded = network.expand_edge(edge, node)
                if expanded is not None:
                    yield expanded
            for instance in self._instances_by_node.get(node_id, ()):
                if instance.label <= max_label:
                    continue  # expand_view would reject: labels must grow
                if any(self.graph.is_removed(n) for n in instance.nodes):
                    continue
                expanded = network.expand_view(instance, node)
                if expanded is not None:
                    yield expanded

    def _consider(
        self,
        network: JoinNetwork,
        k: int,
        top: list[tuple[float, JoinNetwork]],
        seen: set[frozenset],
        queue: list[_QueueEntry],
        counter,
    ) -> None:
        canonical = network.canonical
        if canonical in seen:
            return
        if network.is_total(self._required):
            if network.is_minimal():
                seen.add(canonical)
                weight = network.best_weight(self.graph.view_instances)
                top.append((weight, network))
                # equal weights order on the canonical signature, so the
                # surviving k are independent of emission order
                top.sort(key=lambda pair: (-pair[0], pair[1].sort_key))
                del top[max(k, 1) :]
                self.stats.emitted += 1
            return
        kth = self._kth_weight(top, k)
        # dominance pre-filter: every Algorithm 3 path factor is <= 1, so
        # the construction weight already upper-bounds the potential — a
        # partial network it cannot rescue never pays for the estimate
        if network.construction_weight < kth:
            self.stats.dominated += 1
            return
        potential = self._potential(network, top, k)
        if potential <= 0.0 or potential < kth:
            self.stats.dominated += 1
            return
        seen.add(canonical)
        heapq.heappush(
            queue, _QueueEntry(-potential, next(counter), network)
        )
        self.stats.pushed += 1

    @staticmethod
    def _kth_weight(top: list[tuple[float, JoinNetwork]], k: int) -> float:
        if len(top) < k:
            return 0.0
        return top[k - 1][0]

    # ------------------------------------------------------------------
    # Algorithm 3
    # ------------------------------------------------------------------
    def _potential(
        self,
        network: JoinNetwork,
        top: list[tuple[float, JoinNetwork]],
        k: int,
    ) -> float:
        """Algorithm 3: add, per uncovered relation tree, the strongest
        path from one of its mapped nodes — and add the *whole* path to
        the growing member set (``jn'.add(p)``), so that path segments
        shared between trees are charged only once and the estimate stays
        an upper bound."""
        weight = network.construction_weight
        member_ids = set(network.nodes)
        component_of = self._component_of
        for key in self._required:
            if key in network.tree_keys:
                continue
            if component_of is not None and not self._components_touch(
                key, member_ids
            ):
                return 0.0  # unreachable already at the FK-skeleton level
            reach, sources = self._tree_reach(key)
            best_path = 0.0
            best_member = -1
            for node_id in member_ids:
                path_weight = reach.get(node_id, 0.0)
                if path_weight > best_path:
                    best_path = path_weight
                    best_member = node_id
            if best_path <= 0.0:
                return 0.0  # this tree is unreachable from the network
            weight *= best_path
            member_ids.update(
                self._path_nodes(sources[best_member], best_member)
            )
        return weight

    def _components_touch(self, key: TreeKey, member_ids: set[int]) -> bool:
        """Negative oracle: can any candidate node of *key* possibly reach
        any current member, judged on precomputed FK-skeleton components?"""
        component_of = self._component_of
        tree_components = {
            component_of[node.node_id]
            for node in self.graph.nodes_for_tree(key)
        }
        return any(
            component_of[member] in tree_components for member in member_ids
        )

    def _tree_reach(self, key: TreeKey) -> tuple[dict[int, float], dict[int, int]]:
        """Batch-scored reach arrays for one tree: ``reach[node]`` is the
        strongest path weight from any of the tree's candidate nodes to
        *node* and ``sources[node]`` the candidate attaining it (first
        candidate wins ties, matching Algorithm 3's scan order).  Folding
        the per-candidate Dijkstra maps once per path epoch turns the
        potential estimate's candidates × members double loop into a
        single dict probe per member."""
        cached = self._reach_cache.get(key)
        if cached is None:
            reach: dict[int, float] = {}
            sources: dict[int, int] = {}
            for candidate in self.graph.nodes_for_tree(key):
                paths, _parents = self._paths_from(candidate)
                candidate_id = candidate.node_id
                for node_id, path_weight in paths.items():
                    if path_weight > reach.get(node_id, 0.0):
                        reach[node_id] = path_weight
                        sources[node_id] = candidate_id
            cached = (reach, sources)
            self._reach_cache[key] = cached
        return cached

    def _path_nodes(self, source_id: int, target_id: int) -> list[int]:
        """Node ids on the strongest path from *source* to *target*."""
        _paths, parents = self._path_cache[source_id]
        nodes = [target_id]
        current = target_id
        while current != source_id:
            current = parents.get(current)
            if current is None:
                break
            nodes.append(current)
        return nodes

    def _paths_from(self, node: XNode):
        cached = self._path_cache.get(node.node_id)
        if cached is None:
            cached = self.graph.strongest_paths_from(node, with_parents=True)
            self._path_cache[node.node_id] = cached
        return cached

    def _invalidate_paths(self) -> None:
        self._path_cache.clear()
        self._reach_cache.clear()
        self._path_version += 1
