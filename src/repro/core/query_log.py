"""Mining views from query logs (paper §5.1, Figure 5).

Each logged full-SQL query is reduced to the join structure it exercised:
one occurrence per FROM binding, one view join per equality predicate
between two bindings (WHERE conjuncts and explicit JOIN..ON conditions).
Connected components with at least two occurrences become views; cyclic
components are reduced to a spanning tree, since views are defined as
connected trees of relations.
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from ..catalog import Catalog
from ..sqlkit import ast, parse
from .triples import conjuncts_of
from .view_graph import View, ViewJoin


def views_from_sql(
    catalog: Catalog,
    query: Union[str, ast.Node],
    name: str = "log",
    source: str = "log",
) -> list[View]:
    """Extract the views implied by one logged full-SQL query.

    Only the outermost block is mined (nested blocks describe separate
    join structures and can be mined by calling this on them directly).
    """
    if isinstance(query, str):
        query = parse(query)
    while isinstance(query, ast.SetOp):
        query = query.left
    if not isinstance(query, ast.Select):
        return []
    bindings: dict[str, str] = {}  # binding name -> relation name
    order: list[str] = []
    join_conditions: list[ast.Node] = []

    def visit_from(item: ast.Node) -> None:
        if isinstance(item, ast.TableRef):
            if not catalog.has_relation(item.name.text):
                return
            binding = item.binding.lower()
            if binding not in bindings:
                bindings[binding] = catalog.relation(item.name.text).name
                order.append(binding)
        elif isinstance(item, ast.Join):
            visit_from(item.left)
            visit_from(item.right)
            if item.condition is not None:
                join_conditions.extend(conjuncts_of(item.condition))

    for item in query.from_items:
        visit_from(item)
    if len(order) < 2:
        return []
    join_conditions.extend(conjuncts_of(query.where))

    index_of = {binding: i for i, binding in enumerate(order)}
    edges: list[ViewJoin] = []
    for conjunct in join_conditions:
        resolved = _as_binding_join(conjunct, bindings, catalog)
        if resolved is None:
            continue
        left_binding, left_attr, right_binding, right_attr = resolved
        edges.append(
            ViewJoin(
                index_of[left_binding],
                left_attr,
                index_of[right_binding],
                right_attr,
            )
        )

    return _components_to_views(order, bindings, edges, name, source)


def _as_binding_join(
    conjunct: ast.Node, bindings: dict[str, str], catalog: Catalog
) -> Optional[tuple[str, str, str, str]]:
    if not (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        return None
    left = _resolve(conjunct.left, bindings, catalog)
    right = _resolve(conjunct.right, bindings, catalog)
    if left is None or right is None or left[0] == right[0]:
        return None
    return (*left, *right)


def _resolve(
    column: ast.ColumnRef, bindings: dict[str, str], catalog: Catalog
) -> Optional[tuple[str, str]]:
    attribute = column.attribute.text
    if column.relation is not None:
        binding = column.relation.text.lower()
        if binding not in bindings:
            return None
        relation = catalog.relation(bindings[binding])
        if not relation.has_attribute(attribute):
            return None
        return binding, relation.attribute(attribute).name
    owners = [
        binding
        for binding, relation_name in bindings.items()
        if catalog.relation(relation_name).has_attribute(attribute)
    ]
    if len(owners) != 1:
        return None
    relation = catalog.relation(bindings[owners[0]])
    return owners[0], relation.attribute(attribute).name


def _components_to_views(
    order: list[str],
    bindings: dict[str, str],
    edges: list[ViewJoin],
    name: str,
    source: str,
) -> list[View]:
    count = len(order)
    parent = list(range(count))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    spanning: list[ViewJoin] = []
    for edge in edges:
        a, b = find(edge.left), find(edge.right)
        if a == b:
            continue  # cycle: drop (views are trees)
        parent[a] = b
        spanning.append(edge)

    components: dict[int, list[int]] = {}
    for index in range(count):
        components.setdefault(find(index), []).append(index)

    views: list[View] = []
    counter = itertools.count(1)
    for members in components.values():
        if len(members) < 2:
            continue
        member_set = set(members)
        local = {old: new for new, old in enumerate(members)}
        joins = tuple(
            ViewJoin(
                local[edge.left],
                edge.left_attribute,
                local[edge.right],
                edge.right_attribute,
            )
            for edge in spanning
            if edge.left in member_set and edge.right in member_set
        )
        relations = tuple(bindings[order[index]] for index in members)
        views.append(
            View(
                name=f"{name}#{next(counter)}",
                relations=relations,
                joins=joins,
                source=source,
            )
        )
    return views


class QueryLog:
    """An accumulating query log that feeds views to a ViewGraph.

    Structurally identical patterns are counted rather than duplicated,
    and a pattern's view *strength* grows with its frequency — the weight
    management the paper sketches in §5.2 and defers to future work
    ("query patterns mined from the query log can have different weights
    according to their frequency").
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._views: dict[tuple, View] = {}
        self._frequency: dict[tuple, int] = {}
        self._count = 0

    @property
    def views(self) -> list[View]:
        return list(self._views.values())

    def frequency(self, view: View) -> int:
        return self._frequency.get(view.signature, 0)

    @staticmethod
    def _strength(frequency: int) -> float:
        """1.0 for a once-seen pattern (Definition 5's square root),
        growing gently and capped so weights stay meaningful."""
        import math

        return min(3.0, 1.0 + math.log2(max(frequency, 1)))

    def record(self, query: Union[str, ast.Node]) -> list[View]:
        """Mine *query*, count pattern frequencies, return fresh views."""
        import dataclasses

        self._count += 1
        mined = views_from_sql(
            self.catalog, query, name=f"log{self._count}", source="log"
        )
        recorded = []
        for view in mined:
            signature = view.signature
            self._frequency[signature] = self._frequency.get(signature, 0) + 1
            strengthened = dataclasses.replace(
                view, strength=self._strength(self._frequency[signature])
            )
            self._views[signature] = strengthened
            recorded.append(strengthened)
        return recorded
