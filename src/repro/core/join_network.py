"""Join networks over the extended view graph (paper §5.2 and §6.1).

A join network (JN) is a rooted, ordered tree of extended-graph nodes.
Expansion follows the paper's adaptation of rightmost-path expansion:
only nodes currently marked *rightmost* may grow, a newly added node (or
view subtree) becomes the new rightmost branch and everything to its left
is frozen.  A frozen unmapped leaf can never be repaired, so expansions
that create one are rejected outright (Example 9).

Weights implement Definitions 4-7:

* ``w_basic(jn)``   — product of all member edge weights;
* ``w_view(v)``     — square root of the product of the view's edges;
* ``w_con(jn)``     — product of used view weights and loose edge weights;
* ``w(jn)``         — the maximum construction weight over all ways of
  tiling the network with edge-disjoint contained views.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from .relation_tree import TreeKey
from .view_graph import ViewInstance, XEdge, XNode


@dataclass(frozen=True)
class JoinNetwork:
    """An (immutable) partially- or fully-expanded join network."""

    root_id: int
    nodes: dict[int, XNode]
    parents: dict[int, Optional[int]]
    children: dict[int, tuple[int, ...]]
    rightmost: frozenset[int]
    edges: tuple[XEdge, ...]  # loose edges of this construction
    views: tuple[ViewInstance, ...]  # views of this construction
    #: (source node id, fk id) pairs already used — Definition 2's
    #: one-target-per-foreign-key constraint
    fk_used: frozenset[tuple[int, tuple[str, str, str, str]]]
    construction_weight: float
    tree_keys: frozenset[TreeKey]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def single(node: XNode) -> "JoinNetwork":
        keys = frozenset([node.tree_key]) if node.tree_key else frozenset()
        return JoinNetwork(
            root_id=node.node_id,
            nodes={node.node_id: node},
            parents={node.node_id: None},
            children={node.node_id: ()},
            rightmost=frozenset([node.node_id]),
            edges=(),
            views=(),
            fk_used=frozenset(),
            construction_weight=1.0,
            tree_keys=keys,
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def contains_node(self, node: XNode) -> bool:
        return node.node_id in self.nodes

    @property
    def all_edges(self) -> list[XEdge]:
        collected = list(self.edges)
        for view in self.views:
            collected.extend(view.edges)
        return collected

    def member_edges_within(self) -> list[XEdge]:
        """Edges realised by this network's tree structure."""
        return self.all_edges

    @property
    def canonical(self) -> frozenset[frozenset[int]]:
        """Identity of the network regardless of construction or root."""
        cached = self.__dict__.get("_canonical")
        if cached is None:
            cached = frozenset(edge.key for edge in self.all_edges) | frozenset(
                frozenset([node_id]) for node_id in self.nodes
            )
            object.__setattr__(self, "_canonical", cached)
        return cached

    @property
    def sort_key(self) -> tuple:
        """Total order on canonical identities, used to break equal-weight
        ties in the top-k deterministically (independent of expansion or
        insertion order)."""
        cached = self.__dict__.get("_sort_key")
        if cached is None:
            cached = tuple(sorted(tuple(sorted(part)) for part in self.canonical))
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def is_total(self, required: Iterable[TreeKey]) -> bool:
        """Total: contains a node for every relation tree (Definition 3)."""
        return all(key in self.tree_keys for key in required)

    def is_minimal(self) -> bool:
        """Minimal: every leaf carries a relation tree (removing an
        unmapped leaf would keep the network total, Definition 3)."""
        return all(
            self.nodes[node_id].is_mapped
            for node_id, kids in self.children.items()
            if not kids
        )

    @property
    def max_view_label(self) -> int:
        return max((view.label for view in self.views), default=-1)

    # ------------------------------------------------------------------
    # weights (Definitions 4, 6, 7)
    # ------------------------------------------------------------------
    @property
    def basic_weight(self) -> float:
        return math.prod(edge.weight for edge in self.all_edges)

    def best_weight(self, applicable_views: Sequence[ViewInstance]) -> float:
        """Definition 7: the maximum construction weight over all tilings
        of the network with edge-disjoint contained views."""
        # the tiling search is exponential in contained views and the
        # translator re-scores the same (immutable) network against the
        # same view-instance list once per emitted translation; keying the
        # cache on list identity is safe because the strong reference
        # stored here keeps the list's id from being reused
        cached = self.__dict__.get("_best_weight")
        if cached is not None and cached[0] is applicable_views:
            return cached[1]
        edge_keys = frozenset(edge.key for edge in self.all_edges)
        node_ids = set(self.nodes)
        contained = [
            view
            for view in applicable_views
            if view.edge_keys <= edge_keys
            and all(node.node_id in node_ids for node in view.nodes)
        ]
        edge_weights = {edge.key: edge.weight for edge in self.all_edges}
        best = math.prod(edge_weights.values())  # edges-only construction

        def search(index: int, covered: frozenset, weight_so_far: float,
                   uncovered_product: float) -> float:
            nonlocal best
            if index == len(contained):
                total = weight_so_far * uncovered_product
                if total > best:
                    best = total
                return best
            search(index + 1, covered, weight_so_far, uncovered_product)
            view = contained[index]
            if view.edge_keys & covered:
                return best
            removed = math.prod(edge_weights[k] for k in view.edge_keys)
            search(
                index + 1,
                covered | view.edge_keys,
                weight_so_far * view.weight,
                uncovered_product / removed if removed else 0.0,
            )
            return best

        if contained:
            search(0, frozenset(), 1.0, best)
        object.__setattr__(self, "_best_weight", (applicable_views, best))
        return best

    # ------------------------------------------------------------------
    # expansion (legality test of §6.1)
    # ------------------------------------------------------------------
    def expand_edge(
        self, edge: XEdge, at: XNode, legality: bool = True
    ) -> Optional["JoinNetwork"]:
        """Attach ``edge.other(at)`` as the new rightmost child of *at*;
        returns None when the expansion is illegal.  ``legality=False``
        disables the rightmost-path test (used by the DISCOVER-style
        baseline of §7.3, which expands JNs arbitrarily)."""
        if at.node_id not in self.nodes:
            return None
        if legality and at.node_id not in self.rightmost:
            return None
        new_node = edge.other(at)
        if new_node.node_id in self.nodes:
            return None
        if new_node.tree_key is not None and new_node.tree_key in self.tree_keys:
            return None  # one occurrence per relation tree
        fk_key = self._fk_key(edge)
        if fk_key in self.fk_used:
            return None
        demoted = self._demote_under(at.node_id)
        if legality and self._creates_dead_leaf(demoted):
            return None
        nodes = dict(self.nodes)
        nodes[new_node.node_id] = new_node
        parents = dict(self.parents)
        parents[new_node.node_id] = at.node_id
        children = dict(self.children)
        children[at.node_id] = children[at.node_id] + (new_node.node_id,)
        children[new_node.node_id] = ()
        rightmost = (self.rightmost - demoted) | {new_node.node_id}
        keys = self.tree_keys
        if new_node.tree_key is not None:
            keys = keys | {new_node.tree_key}
        return replace(
            self,
            nodes=nodes,
            parents=parents,
            children=children,
            rightmost=frozenset(rightmost),
            edges=self.edges + (edge,),
            fk_used=self.fk_used | {fk_key},
            construction_weight=self.construction_weight * edge.weight,
            tree_keys=keys,
        )

    def expand_view(
        self, instance: ViewInstance, at: XNode, legality: bool = True
    ) -> Optional["JoinNetwork"]:
        """Graft a view instance sharing exactly the node *at* with this
        network (the paper's view expansion rule)."""
        if at.node_id not in self.nodes:
            return None
        if legality and at.node_id not in self.rightmost:
            return None
        if legality and instance.label <= self.max_view_label:
            return None  # view labels must increase
        shared = [n for n in instance.nodes if n.node_id in self.nodes]
        if len(shared) != 1 or shared[0].node_id != at.node_id:
            return None
        new_keys = set()
        for node in instance.nodes:
            if node.node_id == at.node_id:
                continue
            if node.tree_key is not None:
                if node.tree_key in self.tree_keys or node.tree_key in new_keys:
                    return None
                new_keys.add(node.tree_key)
        fk_used = set(self.fk_used)
        for edge in instance.edges:
            fk_key = self._fk_key(edge)
            if fk_key in fk_used:
                return None
            fk_used.add(fk_key)
        demoted = self._demote_under(at.node_id)
        if legality and self._creates_dead_leaf(demoted):
            return None
        # orient the view as a tree rooted at the shared node
        adjacency: dict[int, list[tuple[XEdge, XNode]]] = {}
        for edge in instance.edges:
            adjacency.setdefault(edge.left.node_id, []).append(
                (edge, edge.right)
            )
            adjacency.setdefault(edge.right.node_id, []).append(
                (edge, edge.left)
            )
        nodes = dict(self.nodes)
        parents = dict(self.parents)
        children = dict(self.children)
        added: list[int] = []
        visited = {at.node_id}
        stack = [at.node_id]
        while stack:
            current = stack.pop()
            kids = sorted(
                (
                    (edge, neighbor)
                    for edge, neighbor in adjacency.get(current, ())
                    if neighbor.node_id not in visited
                ),
                key=lambda pair: pair[1].node_id,
            )
            for _, neighbor in kids:
                visited.add(neighbor.node_id)
                nodes[neighbor.node_id] = neighbor
                parents[neighbor.node_id] = current
                children[current] = children.get(current, ()) + (
                    neighbor.node_id,
                )
                children.setdefault(neighbor.node_id, ())
                added.append(neighbor.node_id)
                stack.append(neighbor.node_id)
        if len(visited) != len(instance.nodes):
            return None  # disconnected assignment (defensive)
        rightmost = (self.rightmost - demoted) | set(added)
        return replace(
            self,
            nodes=nodes,
            parents=parents,
            children=children,
            rightmost=frozenset(rightmost),
            views=self.views + (instance,),
            fk_used=frozenset(fk_used),
            construction_weight=self.construction_weight * instance.weight,
            tree_keys=self.tree_keys | new_keys,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _fk_key(edge: XEdge) -> tuple[int, tuple[str, str, str, str]]:
        """A foreign key instance is identified by its source occurrence:
        the same FK column of one occurrence may join only one target."""
        source = (
            edge.left
            if edge.left.relation == edge.fk_id[0]
            and edge.left_attribute.lower() == edge.fk_id[1]
            else edge.right
        )
        return (source.node_id, edge.fk_id)

    def _demote_under(self, at_id: int) -> frozenset[int]:
        """Nodes losing rightmost status when *at_id* gains a new child:
        the subtrees of its existing children (they are now 'left of' the
        new branch)."""
        demoted: set[int] = set()
        stack = list(self.children.get(at_id, ()))
        while stack:
            current = stack.pop()
            demoted.add(current)
            stack.extend(self.children.get(current, ()))
        return frozenset(demoted)

    def _creates_dead_leaf(self, demoted: frozenset[int]) -> bool:
        """True when demoting would freeze an unmapped leaf forever
        (such a network can never satisfy minimality — Example 9)."""
        for node_id in demoted:
            if not self.children.get(node_id) and not self.nodes[node_id].is_mapped:
                return True
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        def fmt(node_id: int) -> str:
            node = self.nodes[node_id]
            kids = self.children.get(node_id, ())
            inner = ", ".join(fmt(k) for k in kids)
            return f"{node}({inner})" if inner else str(node)

        return fmt(self.root_id)
