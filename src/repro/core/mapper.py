"""Relation Tree Mapper: mapping sets via the relative threshold σ.

Definition 1 of the paper: the mapping set of a relation tree rt is

    MAP(rt) = { Ri | Sim(rt, Ri) > σ * max_j Sim(rt, Rj) }.

The relative threshold keeps exactly one relation in play when the user
named it well, and several plausible candidates when the guess was poor —
the paper's stated design intent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..catalog import Relation
from ..engine import Database
from .config import DEFAULT_CONFIG, TranslatorConfig
from .relation_tree import AttrKey, RelationTree, TreeKey
from .resilience import Budget
from .similarity import SimilarityEvaluator


@dataclass
class RelationMapping:
    """One candidate relation for a relation tree."""

    relation: Relation
    similarity: float
    #: attribute tree key -> argmax attribute name in ``relation`` (§4.3)
    attribute_map: dict[AttrKey, str] = field(default_factory=dict)


@dataclass
class TreeMappings:
    """All candidates of one relation tree, best first."""

    tree: RelationTree
    candidates: list[RelationMapping] = field(default_factory=list)

    @property
    def best(self) -> Optional[RelationMapping]:
        return self.candidates[0] if self.candidates else None

    def candidate_for(self, relation_name: str) -> Optional[RelationMapping]:
        lowered = relation_name.lower()
        for candidate in self.candidates:
            if candidate.relation.key == lowered:
                return candidate
        return None

    def __iter__(self):
        return iter(self.candidates)


class RelationTreeMapper:
    """Maps relation trees to database relations by similarity."""

    def __init__(
        self,
        database: Database,
        config: TranslatorConfig = DEFAULT_CONFIG,
        evaluator: Optional[SimilarityEvaluator] = None,
    ) -> None:
        self.database = database
        self.config = config
        self.evaluator = evaluator or SimilarityEvaluator(database, config)

    def map_tree(
        self, tree: RelationTree, budget: Optional[Budget] = None
    ) -> TreeMappings:
        scored: list[RelationMapping] = []
        for relation in self.database.catalog:
            if budget is not None:
                # every relation scored against the tree is one candidate
                budget.charge_candidates(1, stage="map")
            similarity, attribute_map = self.evaluator.tree_similarity(
                tree, relation
            )
            if similarity > 0.0:
                scored.append(
                    RelationMapping(relation, similarity, attribute_map)
                )
        scored.sort(key=lambda m: (-m.similarity, m.relation.key))
        if not scored:
            return TreeMappings(tree, [])
        threshold = self.config.sigma * scored[0].similarity
        kept = [m for m in scored if m.similarity > threshold or m is scored[0]]
        return TreeMappings(tree, kept[: self.config.max_mappings])

    def map_trees(
        self, trees: list[RelationTree], budget: Optional[Budget] = None
    ) -> dict[TreeKey, TreeMappings]:
        return {tree.key: self.map_tree(tree, budget) for tree in trees}
