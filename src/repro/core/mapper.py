"""Relation Tree Mapper: mapping sets via the relative threshold σ.

Definition 1 of the paper: the mapping set of a relation tree rt is

    MAP(rt) = { Ri | Sim(rt, Ri) > σ * max_j Sim(rt, Rj) }.

The relative threshold keeps exactly one relation in play when the user
named it well, and several plausible candidates when the guess was poor —
the paper's stated design intent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..catalog import Relation
from ..obs import NULL_TRACER
from .config import DEFAULT_CONFIG, TranslatorConfig
from .relation_tree import AttrKey, RelationTree, TreeKey
from .resilience import Budget
from .similarity import SimilarityEvaluator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..backends.base import Backend
    from .context import TranslationContext


@dataclass
class RelationMapping:
    """One candidate relation for a relation tree."""

    relation: Relation
    similarity: float
    #: attribute tree key -> argmax attribute name in ``relation`` (§4.3)
    attribute_map: dict[AttrKey, str] = field(default_factory=dict)


@dataclass
class TreeMappings:
    """All candidates of one relation tree, best first."""

    tree: RelationTree
    candidates: list[RelationMapping] = field(default_factory=list)

    @property
    def best(self) -> Optional[RelationMapping]:
        return self.candidates[0] if self.candidates else None

    def candidate_for(self, relation_name: str) -> Optional[RelationMapping]:
        lowered = relation_name.lower()
        for candidate in self.candidates:
            if candidate.relation.key == lowered:
                return candidate
        return None

    def __iter__(self):
        return iter(self.candidates)


class RelationTreeMapper:
    """Maps relation trees to database relations by similarity."""

    def __init__(
        self,
        database: "Backend",
        config: TranslatorConfig = DEFAULT_CONFIG,
        evaluator: Optional[SimilarityEvaluator] = None,
        context: Optional["TranslationContext"] = None,
        tracer=None,  # Optional[repro.obs.Tracer]
    ) -> None:
        self.database = database
        self.config = config
        if evaluator is None:
            evaluator = SimilarityEvaluator(database, config, context)
        elif context is None:
            context = evaluator.context
        self.evaluator = evaluator
        self.context = context
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _scoring_order(self, tree: RelationTree):
        """Candidates best-affinity-first (budget-friendly), or catalog
        order without a context.  Never affects the mapping set: scored
        candidates are re-sorted by similarity below."""
        if self.context is not None:
            return self.context.scoring_order(tree)
        return self.database.catalog

    def map_tree(
        self, tree: RelationTree, budget: Optional[Budget] = None
    ) -> TreeMappings:
        with self.tracer.span("map.tree") as span:
            probed = 0
            scored: list[RelationMapping] = []
            for relation in self._scoring_order(tree):
                if budget is not None:
                    # every relation scored against the tree is one candidate
                    budget.charge_candidates(1, stage="map")
                probed += 1
                similarity, attribute_map = self.evaluator.tree_similarity(
                    tree, relation
                )
                if similarity > 0.0:
                    scored.append(
                        RelationMapping(relation, similarity, attribute_map)
                    )
            scored.sort(key=lambda m: (-m.similarity, m.relation.key))
            if not scored:
                if span.enabled:
                    span.set(tree=tree.label, scored=probed, kept=0)
                return TreeMappings(tree, [])
            best = scored[0].similarity
            threshold = self.config.sigma * best
            # Definition 1 uses a strict inequality, which with sigma = 1.0
            # (or exact score ties at the top) would drop co-maximal
            # candidates: nothing is strictly greater than sigma * max when
            # it *is* the max.  Candidates tied with the maximum always
            # belong to MAP(rt).
            kept = [
                m
                for m in scored
                if m.similarity > threshold or m.similarity == best
            ]
            mappings = TreeMappings(tree, kept[: self.config.max_mappings])
            if span.enabled:
                chosen = {id(m) for m in mappings.candidates}
                span.set(
                    tree=tree.label,
                    evidence=str(tree),
                    scored=probed,
                    kept=len(mappings.candidates),
                    sigma_threshold=round(threshold, 6),
                    candidates=[
                        {
                            "relation": m.relation.name,
                            "sigma": m.similarity,
                            "kept": id(m) in chosen,
                        }
                        for m in scored[: max(8, len(mappings.candidates))]
                    ],
                )
            return mappings

    def map_trees(
        self, trees: list[RelationTree], budget: Optional[Budget] = None
    ) -> dict[TreeKey, TreeMappings]:
        with self.tracer.span("map") as span:
            memo_base = (
                self.context.stats.as_dict()
                if span.enabled and self.context is not None
                else None
            )
            result = {tree.key: self.map_tree(tree, budget) for tree in trees}
            if span.enabled:
                span.set(trees=len(trees))
                if memo_base is not None:
                    now = self.context.stats.as_dict()
                    span.set(
                        memo_hits=now["tree_sim_hits"]
                        - memo_base["tree_sim_hits"],
                        memo_misses=now["tree_sim_misses"]
                        - memo_base["tree_sim_misses"],
                    )
            return result
