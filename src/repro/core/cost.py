"""Information-unit cost model (paper §7.1).

The paper quantifies user burden by counting *information units*: every
schema element (relation name or attribute name) the user must specify.
Approximately or partially specified elements count as one full unit
("we significantly overestimate the cost of our system").

Three interfaces are modelled:

* **SF-SQL** — the distinct schema-element names the user typed.  A
  repeated guess (``year?`` twice in Figure 2) is one unit; ``?x``
  placeholders carry one unit of linking information; anonymous ``?``
  carries none.  Figure 2's query costs 6 (actor, gender, name,
  director_name, year, produce_company) — reproduced exactly.
* **Full SQL** — relation occurrences in FROM, plus one unit per
  attribute occurrence in projections / conditions / grouping / ordering,
  plus two units per FK-PK join condition (both sides must be spelled
  out).
* **GUI builder** (Flyspeed-style) — like full SQL, but join conditions
  are free: the builder auto-completes them when relations are dropped
  onto the canvas (§7.1).
"""

from __future__ import annotations

from typing import Union

from ..sqlkit import ast, parse


def _blocks(query: ast.Node):
    """All SELECT blocks of a query, outermost first."""
    pending = [query]
    while pending:
        node = pending.pop(0)
        if isinstance(node, ast.SetOp):
            pending.extend((node.left, node.right))
            continue
        assert isinstance(node, ast.Select)
        yield node
        pending.extend(ast.subqueries_of(node))


def _walk_block(node: ast.Node):
    yield node
    for child in node.children():
        if isinstance(child, (ast.Select, ast.SetOp)):
            continue
        yield from _walk_block(child)


def _binding_names(select: ast.Select) -> set[str]:
    names = set()
    stack = list(select.from_items)
    while stack:
        item = stack.pop()
        if isinstance(item, ast.TableRef):
            names.add(item.binding.lower())
        elif isinstance(item, ast.Join):
            stack.extend((item.left, item.right))
    return names


def _join_and_value_conjuncts(select: ast.Select):
    bindings = _binding_names(select)
    joins, values = [], []
    stack = [select.where] if select.where is not None else []
    for item in select.from_items:
        stack.extend(_on_conditions(item))
    while stack:
        expr = stack.pop()
        if expr is None:
            continue
        if isinstance(expr, ast.BinaryOp) and expr.op == "and":
            stack.extend((expr.left, expr.right))
            continue
        if (
            isinstance(expr, ast.BinaryOp)
            and expr.op == "="
            and isinstance(expr.left, ast.ColumnRef)
            and isinstance(expr.right, ast.ColumnRef)
            and expr.left.relation is not None
            and expr.right.relation is not None
            and expr.left.relation.text.lower() in bindings
            and expr.right.relation.text.lower() in bindings
            and expr.left.relation.text.lower()
            != expr.right.relation.text.lower()
        ):
            joins.append(expr)
        else:
            values.append(expr)
    return joins, values


def _on_conditions(item: ast.Node):
    if isinstance(item, ast.Join):
        if item.condition is not None:
            yield item.condition
        yield from _on_conditions(item.left)
        yield from _on_conditions(item.right)


def _attribute_occurrences(roots) -> int:
    count = 0
    for root in roots:
        for node in _walk_block(root):
            if isinstance(node, ast.ColumnRef):
                count += 1
    return count


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def sfsql_cost(query: Union[str, ast.Node]) -> int:
    """Distinct schema-element names specified in a Schema-free SQL query."""
    if isinstance(query, str):
        query = parse(query)
    units: set[tuple[str, str]] = set()
    for node in query.walk():
        if isinstance(node, ast.TableRef):
            _add_term(units, node.name)
        elif isinstance(node, ast.ColumnRef):
            if node.relation is not None:
                _add_term(units, node.relation)
            _add_term(units, node.attribute)
    return len(units)


def _add_term(units: set, term: ast.NameTerm) -> None:
    if term.certainty in (ast.Certainty.EXACT, ast.Certainty.GUESS):
        units.add(("name", term.text.lower()))
    elif term.certainty is ast.Certainty.VAR:
        units.add(("var", term.text))
    # anonymous ``?`` carries no schema information: zero units


def full_sql_cost(query: Union[str, ast.Node]) -> int:
    """Information units of a fully-specified SQL query."""
    if isinstance(query, str):
        query = parse(query)
    total = 0
    for select in _blocks(query):
        total += len(list(_relation_occurrences(select)))
        joins, values = _join_and_value_conjuncts(select)
        total += 2 * len(joins)
        roots = [item.expr for item in select.items]
        roots.extend(values)
        roots.extend(select.group_by)
        if select.having is not None:
            roots.append(select.having)
        roots.extend(item.expr for item in select.order_by)
        total += _attribute_occurrences(roots)
    return total


def gui_cost(query: Union[str, ast.Node]) -> int:
    """Information units when using a visual query builder: as full SQL,
    but FK-PK join paths are auto-completed (zero units)."""
    if isinstance(query, str):
        query = parse(query)
    total = 0
    for select in _blocks(query):
        total += len(list(_relation_occurrences(select)))
        _joins, values = _join_and_value_conjuncts(select)
        roots = [item.expr for item in select.items]
        roots.extend(values)
        roots.extend(select.group_by)
        if select.having is not None:
            roots.append(select.having)
        roots.extend(item.expr for item in select.order_by)
        total += _attribute_occurrences(roots)
    return total


def _relation_occurrences(select: ast.Select):
    stack = list(select.from_items)
    while stack:
        item = stack.pop()
        if isinstance(item, ast.TableRef):
            yield item
        elif isinstance(item, ast.Join):
            stack.extend((item.left, item.right))
