"""Expression-triple extraction (paper Section 3.1).

Every schema-relevant expression in a Schema-free SQL block is reduced to
an *expression triple* ``(relation name, attribute name, value condition)``
with unspecified entries marked ``None`` (the paper's ``*``).  Three kinds
of expressions contribute (verbatim from the paper):

(a) relation names in the FROM clause (with aliases),
(b) attribute names (with relation names if specified) in all other
    clauses,
(c) value constraint conditions in the WHERE clause.

Everything else — SQL keywords, aggregation functions, computation
symbols — is schema-irrelevant and passes through translation untouched.

Extraction works block-at-a-time: sub-queries are not descended into here;
the translator processes them as separate blocks (§2.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..sqlkit import ast


@dataclass(frozen=True)
class Condition:
    """One value constraint whose subject is a single column reference.

    ``predicate`` is the original WHERE predicate node; ``column`` is the
    subject occurrence inside it.  The similarity layer checks whether any
    value of a candidate column satisfies the predicate by re-evaluating
    it with the column reference bound to each candidate value (§4.3).
    """

    predicate: ast.Node
    column: ast.ColumnRef


@dataclass(frozen=True)
class ExpressionTriple:
    """(relation, attribute, condition) with None for unspecified entries."""

    relation: Optional[ast.NameTerm] = None
    alias: Optional[str] = None
    attribute: Optional[ast.NameTerm] = None
    condition: Optional[Condition] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rel = self.relation.render() if self.relation else "*"
        attr = self.attribute.render() if self.attribute else "*"
        cond = "..." if self.condition else "*"
        return f"({rel}, {attr}, {cond})"


@dataclass(frozen=True)
class JoinFragment:
    """A user-specified join-path fragment: equality between two qualified
    column references in the WHERE clause.  Fragments become views on the
    view graph (§5.1) rather than value conditions."""

    left: ast.ColumnRef
    right: ast.ColumnRef


@dataclass
class ExtractionResult:
    """All schema-relevant content of one query block."""

    triples: list[ExpressionTriple] = field(default_factory=list)
    fragments: list[JoinFragment] = field(default_factory=list)
    #: binding name (lower) -> TableRef for the block's FROM entries
    from_bindings: dict[str, ast.TableRef] = field(default_factory=dict)


def extract(select: ast.Select) -> ExtractionResult:
    """Extract expression triples and join fragments from one SELECT block."""
    result = ExtractionResult()
    for table in _from_tables(select.from_items):
        binding = table.binding.lower()
        result.from_bindings[binding] = table
        result.triples.append(
            ExpressionTriple(relation=table.name, alias=table.alias)
        )

    conditions, fragments = _analyze_where(select.where)
    result.fragments = fragments
    condition_columns = {id(c.column): c for c in conditions}

    for column in _column_refs(select):
        condition = condition_columns.get(id(column))
        result.triples.append(_triple_for(column, condition))
    return result


# ---------------------------------------------------------------------------
# walking (block-local: never descends into sub-queries)
# ---------------------------------------------------------------------------


def _from_tables(from_items: tuple[ast.Node, ...]) -> Iterator[ast.TableRef]:
    for item in from_items:
        if isinstance(item, ast.TableRef):
            yield item
        elif isinstance(item, ast.Join):
            yield from _from_tables((item.left, item.right))


def walk_block(node: ast.Node) -> Iterator[ast.Node]:
    """Walk an expression or block without entering nested sub-queries."""
    yield node
    for child in node.children():
        if isinstance(child, (ast.Select, ast.SetOp)):
            continue
        yield from walk_block(child)


def _column_refs(select: ast.Select) -> Iterator[ast.ColumnRef]:
    """All column references of the block, in clause order (SELECT first,
    so the paper's rt1 ordering matches Figure 4)."""
    roots: list[ast.Node] = [item.expr for item in select.items]
    if select.where is not None:
        roots.append(select.where)
    roots.extend(select.group_by)
    if select.having is not None:
        roots.append(select.having)
    roots.extend(item.expr for item in select.order_by)
    # ON conditions of explicit joins are join fragments by construction,
    # but any column they mention is still schema-relevant content.
    for item in select.from_items:
        for node in _from_join_conditions(item):
            roots.append(node)
    for root in roots:
        for node in walk_block(root):
            if isinstance(node, ast.ColumnRef):
                yield node


def _from_join_conditions(item: ast.Node) -> Iterator[ast.Node]:
    if isinstance(item, ast.Join):
        if item.condition is not None:
            yield item.condition
        yield from _from_join_conditions(item.left)
        yield from _from_join_conditions(item.right)


# ---------------------------------------------------------------------------
# WHERE analysis
# ---------------------------------------------------------------------------


def conjuncts_of(expr: Optional[ast.Node]) -> list[ast.Node]:
    """Split a boolean expression into top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return conjuncts_of(expr.left) + conjuncts_of(expr.right)
    return [expr]


def _is_value_expr(node: ast.Node) -> bool:
    """True when *node* contains no column references or sub-queries, so it
    can be evaluated to a constant for condition-satisfaction checks."""
    for descendant in walk_block(node):
        if isinstance(descendant, (ast.ColumnRef, ast.Select, ast.SetOp)):
            return False
        if isinstance(descendant, ast.SUBQUERY_NODES):
            return False
    return True


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _analyze_where(
    where: Optional[ast.Node],
) -> tuple[list[Condition], list[JoinFragment]]:
    """Classify top-level WHERE conjuncts into value conditions (attached
    to their subject column) and join-path fragments."""
    conditions: list[Condition] = []
    fragments: list[JoinFragment] = []
    for conjunct in conjuncts_of(where):
        condition = _as_condition(conjunct)
        if condition is not None:
            conditions.append(condition)
            continue
        fragment = _as_fragment(conjunct)
        if fragment is not None:
            fragments.append(fragment)
    return conditions, fragments


def _as_condition(conjunct: ast.Node) -> Optional[Condition]:
    """A conjunct is a value condition when its subject is a single bare
    column reference and every other operand is a constant expression."""
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in _FLIP:
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and _is_value_expr(right):
            return Condition(conjunct, left)
        if isinstance(right, ast.ColumnRef) and _is_value_expr(left):
            flipped = ast.BinaryOp(_FLIP[conjunct.op], right, left)
            return Condition(flipped, right)
        return None
    if isinstance(conjunct, ast.Between) and isinstance(conjunct.expr, ast.ColumnRef):
        if _is_value_expr(conjunct.low) and _is_value_expr(conjunct.high):
            return Condition(conjunct, conjunct.expr)
    if isinstance(conjunct, ast.InList) and isinstance(conjunct.expr, ast.ColumnRef):
        if all(_is_value_expr(item) for item in conjunct.items):
            return Condition(conjunct, conjunct.expr)
    if isinstance(conjunct, ast.Like) and isinstance(conjunct.expr, ast.ColumnRef):
        if _is_value_expr(conjunct.pattern):
            return Condition(conjunct, conjunct.expr)
    if isinstance(conjunct, ast.IsNull) and isinstance(conjunct.expr, ast.ColumnRef):
        return Condition(conjunct, conjunct.expr)
    return None


def _as_fragment(conjunct: ast.Node) -> Optional[JoinFragment]:
    if (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
        and conjunct.left.relation is not None
        and conjunct.right.relation is not None
    ):
        return JoinFragment(conjunct.left, conjunct.right)
    return None


def _triple_for(
    column: ast.ColumnRef, condition: Optional[Condition]
) -> ExpressionTriple:
    return ExpressionTriple(
        relation=column.relation,
        alias=None,
        attribute=column.attribute,
        condition=condition,
    )
