"""Relation trees: merging expression triples (paper Section 3.2).

Expression triples are merged into *relation trees* by the paper's three
rules:

1. triples with identical relation name (and identical alias, when one is
   specified) merge at the relation level;
2. triples with identical relation name *and* identical attribute name
   merge at the attribute level;
3. triples with identical attribute name but no relation name merge at
   the attribute level (forming a tree whose root is ``*``).

Placeholders follow their binding semantics: ``?x`` occurrences with the
same variable name denote the same element and merge; each anonymous
``?`` is a fresh element and never merges (§2.1).

The merge key of a column reference is a pure function of its name terms
plus the block's FROM bindings, so the Standard SQL Composer can later
re-derive which tree (and attribute tree) any occurrence belongs to
without tracking node identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sqlkit import ast, render
from .triples import Condition, ExpressionTriple, ExtractionResult

#: Merge keys are small tagged tuples; the tag keeps the namespaces of
#: FROM bindings, guessed names, variables and anonymous elements apart.
TreeKey = tuple[str, str]
AttrKey = tuple[str, str]


@dataclass
class AttributeTree:
    """One attribute-level subtree: a name plus accumulated conditions."""

    key: AttrKey
    name: ast.NameTerm
    conditions: list[Condition] = field(default_factory=list)

    @property
    def known_name(self) -> Optional[str]:
        """The attribute name, when the user supplied one (exact or guess)."""
        return self.name.text if self.name.is_known else None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name.render()}[{len(self.conditions)} cond]"


@dataclass
class RelationTree:
    """One relation-level tree: root name (or ``*``) plus attribute trees."""

    key: TreeKey
    index: int
    name: Optional[ast.NameTerm] = None
    alias: Optional[str] = None
    attributes: dict[AttrKey, AttributeTree] = field(default_factory=dict)

    @property
    def known_name(self) -> Optional[str]:
        """The root relation name, when the user supplied one."""
        if self.name is not None and self.name.is_known:
            return self.name.text
        return None

    @property
    def attribute_trees(self) -> list[AttributeTree]:
        return list(self.attributes.values())

    @property
    def label(self) -> str:
        """Short display / alias label, e.g. ``rt1``."""
        return f"rt{self.index + 1}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        root = self.name.render() if self.name else "*"
        attrs = ", ".join(str(a) for a in self.attributes.values())
        return f"{self.label}:{root}({attrs})"


#: Canonical tree identity for cross-query memoization; see
#: :func:`tree_fingerprint`.
TreeFingerprint = tuple


def tree_fingerprint(tree: RelationTree) -> TreeFingerprint:
    """Canonical, query-independent identity of a relation tree.

    Two trees with equal fingerprints score identically against every
    relation: the fingerprint captures exactly what the similarity layer
    reads — the rendered root name term, and per attribute tree its merge
    key, rendered name term, and the rendered condition predicates
    (order-insensitive; the (m+1)/(n+1) factor is a count).  Everything
    else about a tree (index, alias, originating query) is irrelevant to
    ``Sim(rt, R)``, so results keyed by fingerprint may be shared across
    queries.  The fingerprint is cached on the tree after the first call
    (trees are immutable once :func:`build_relation_trees` returns).
    """
    cached = getattr(tree, "_fingerprint", None)
    if cached is not None:
        return cached
    attrs = []
    for attribute_tree in tree.attribute_trees:
        conditions = tuple(
            sorted(
                (render(c.predicate), render(c.column))
                for c in attribute_tree.conditions
            )
        )
        attrs.append(
            (attribute_tree.key, attribute_tree.name.render().lower(), conditions)
        )
    fingerprint = (
        # name matching is case-insensitive, so case variants share a slot
        # (condition predicates are NOT lowered: literals are case-exact)
        tree.name.render().lower() if tree.name is not None else None,
        tuple(sorted(attrs)),
    )
    tree._fingerprint = fingerprint
    return fingerprint


def relation_key(
    qualifier: Optional[ast.NameTerm],
    attribute: Optional[ast.NameTerm],
    from_bindings: dict[str, ast.TableRef],
) -> TreeKey:
    """Merge key of the relation tree an occurrence belongs to.

    Pure function of the occurrence's name terms and the FROM bindings —
    both the merger and the composer call this, guaranteeing agreement.
    """
    if qualifier is not None:
        lowered = qualifier.text.lower()
        if qualifier.is_known and lowered in from_bindings:
            return ("from", lowered)
        if qualifier.certainty is ast.Certainty.VAR:
            return ("var", qualifier.text)
        if qualifier.certainty is ast.Certainty.ANON:
            return ("anon", qualifier.text)
        return ("name", lowered)
    # Unqualified with exactly one FROM relation: standard SQL scoping says
    # the column belongs to that relation, so the occurrence joins its tree.
    assert attribute is not None
    if len(from_bindings) == 1:
        return ("from", next(iter(from_bindings)))
    # Unqualified otherwise: rule 3 groups by attribute name; placeholders
    # are their own namespace so ``?x = 5`` twice merges while two bare
    # ``?`` do not.
    if attribute.certainty is ast.Certainty.VAR:
        return ("attrvar", attribute.text)
    if attribute.certainty is ast.Certainty.ANON:
        return ("attranon", attribute.text)
    return ("attr", attribute.text.lower())


def attribute_key(attribute: ast.NameTerm) -> AttrKey:
    if attribute.certainty is ast.Certainty.VAR:
        return ("var", attribute.text)
    if attribute.certainty is ast.Certainty.ANON:
        return ("anon", attribute.text)
    return ("name", attribute.text.lower())


def build_relation_trees(extraction: ExtractionResult) -> list[RelationTree]:
    """Merge the block's expression triples into an l-relation-tree query."""
    trees: dict[TreeKey, RelationTree] = {}

    def tree_for(
        key: TreeKey,
        name: Optional[ast.NameTerm],
        alias: Optional[str],
    ) -> RelationTree:
        tree = trees.get(key)
        if tree is None:
            tree = RelationTree(key=key, index=len(trees), name=name, alias=alias)
            trees[key] = tree
        else:
            if tree.name is None and name is not None:
                tree.name = name
            if tree.alias is None and alias is not None:
                tree.alias = alias
        return tree

    for triple in extraction.triples:
        key = _triple_key(triple, extraction.from_bindings)
        name, alias = _root_name(triple, extraction.from_bindings)
        tree = tree_for(key, name, alias)
        if triple.attribute is None:
            continue
        attr_key = attribute_key(triple.attribute)
        attr_tree = tree.attributes.get(attr_key)
        if attr_tree is None:
            attr_tree = AttributeTree(key=attr_key, name=triple.attribute)
            tree.attributes[attr_key] = attr_tree
        if triple.condition is not None:
            attr_tree.conditions.append(triple.condition)
    return list(trees.values())


def _triple_key(
    triple: ExpressionTriple, from_bindings: dict[str, ast.TableRef]
) -> TreeKey:
    if triple.attribute is None:
        # a FROM-clause relation triple: keyed by its binding name
        assert triple.relation is not None
        binding = (triple.alias or triple.relation.text).lower()
        return ("from", binding)
    return relation_key(triple.relation, triple.attribute, from_bindings)


def _root_name(
    triple: ExpressionTriple, from_bindings: dict[str, ast.TableRef]
) -> tuple[Optional[ast.NameTerm], Optional[str]]:
    """The root NameTerm and alias a triple contributes to its tree."""
    if triple.attribute is None:
        return triple.relation, triple.alias
    if triple.relation is None:
        return None, None
    lowered = triple.relation.text.lower()
    if triple.relation.is_known and lowered in from_bindings:
        table = from_bindings[lowered]
        return table.name, table.alias
    if triple.relation.certainty in (ast.Certainty.VAR, ast.Certainty.ANON):
        return None, None  # placeholder roots carry no name information
    return triple.relation, None
