"""End-to-end Schema-free SQL translation (the paper's Figure 3 pipeline).

``SchemaFreeTranslator`` wires the four architecture modules together:

* Schema-free SQL Parser  — ``repro.sqlkit`` + ``repro.core.triples``
* Relation Tree Mapper    — ``repro.core.mapper`` (+ similarity)
* Network Builder         — ``repro.core.view_graph`` + ``repro.core.mtjn``
* Standard SQL Composer   — ``repro.core.composer``

Nested queries are processed one block at a time, outermost first, so
correlated references resolve against already-translated outer bindings
(paper §2.2.5).  ``translate`` returns the top-k full-SQL interpretations
best-first; ``execute`` evaluates the best one on the database.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from ..engine import Result
from ..errors import Diagnostic, ReproError
from ..obs import NULL_TRACER
from ..sqlkit import ast, parse, render
from .composer import (
    ComposedQuery,
    Composer,
    NoJoinNetworkError,
    TranslationError,
    transform_block_select,
)
from .config import DEFAULT_CONFIG, TranslatorConfig
from .context import TranslationContext, TranslationStats
from .join_network import JoinNetwork
from .mapper import RelationTreeMapper, TreeMappings
from .mtjn import GenerationStats, MTJNGenerator, network_signature
from .query_log import QueryLog, views_from_sql
from .relation_tree import RelationTree, TreeKey, build_relation_trees
from .rescache import fingerprint_parsed
from .resilience import LADDER, Budget, BudgetExceeded
from .similarity import SimilarityEvaluator
from .triples import ExtractionResult, JoinFragment, extract
from .view_graph import ExtendedViewGraph, View, ViewGraph, ViewJoin, XNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.base import Backend


@dataclass
class Translation:
    """One full-SQL interpretation of a schema-free query.

    ``degradation`` lists the ladder rungs taken to produce this result
    (empty for a full-strength translation); ``diagnostic`` carries the
    structured record of what was skipped, when anything was.
    """

    query: ast.Node  # Select or SetOp, fully exact
    weight: float
    network: Optional[JoinNetwork] = None
    degradation: tuple[str, ...] = ()
    diagnostic: Optional[Diagnostic] = None
    #: per-stage wall time and search counters for the translate() call
    #: that produced this interpretation (shared by its siblings)
    stats: Optional[TranslationStats] = None
    #: the degradation-ladder rung that produced this interpretation
    #: (one of resilience.LADDER; for set operations, the weaker of the
    #: two operands' rungs)
    rung: str = "full"
    #: True when this interpretation was served from the context's
    #: translation result cache instead of running the pipeline
    cached: bool = False

    @property
    def is_degraded(self) -> bool:
        return bool(self.degradation)

    @property
    def sql(self) -> str:
        return render(self.query)


class SchemaFreeTranslator:
    """Translates Schema-free SQL into full SQL over one database."""

    def __init__(
        self,
        database: "Backend",
        config: TranslatorConfig = DEFAULT_CONFIG,
        views: Iterable[View] = (),
        faults=None,  # Optional[repro.testing.faults.FaultInjector]
        context: Optional[TranslationContext] = None,
        tracer=None,  # Optional[repro.obs.Tracer]
    ) -> None:
        self.database = database
        self.config = config
        if context is None:
            context = TranslationContext(database, config)
        elif context.database is not database:
            raise ValueError(
                "TranslationContext was built for a different database"
            )
        elif context.config != config:
            raise ValueError(
                "TranslationContext was built for a different TranslatorConfig"
            )
        self.context = context
        self._static_views: list[View] = list(views)
        self.view_graph = ViewGraph(database.catalog, self._static_views)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.similarity = SimilarityEvaluator(database, config, context)
        self.mapper = RelationTreeMapper(
            database, config, self.similarity, tracer=self.tracer
        )
        self.composer = Composer(database.catalog)
        self.query_log = QueryLog(database.catalog)
        self.faults = faults
        self.last_stats: Optional[GenerationStats] = None
        self.last_degradation: list[str] = []
        self.last_diagnostic: Optional[Diagnostic] = None
        #: why the backend demoted the current translation's start rung
        self._backend_note: Optional[str] = None
        self.last_translation_stats: Optional[TranslationStats] = None
        self._active_stats: Optional[TranslationStats] = None

    # ------------------------------------------------------------------
    # resilience plumbing
    # ------------------------------------------------------------------
    def _fire(self, stage: str, budget: Optional[Budget] = None) -> None:
        if self.faults is not None:
            self.faults.fire(stage, budget)

    @contextmanager
    def _timed(self, stage: str):
        """Accumulate wall-clock time into the active TranslationStats."""
        stats = self._active_stats
        if stats is None:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            stats.add_stage(stage, time.perf_counter() - started)

    @contextmanager
    def _stage_guard(self, stage: str):
        """Convert unexpected stage failures into typed ReproErrors so a
        misbehaving stage (or an injected fault) never leaks a foreign
        exception to callers."""
        try:
            yield
        except ReproError:
            raise
        except Exception as exc:  # re-raises as a typed ReproError
            raise TranslationError(
                f"stage {stage!r} failed unexpectedly: "
                f"{type(exc).__name__}: {exc}",
                diagnostic=Diagnostic(
                    stage=stage, message=f"{type(exc).__name__}: {exc}"
                ),
            ) from exc

    # ------------------------------------------------------------------
    # view management
    # ------------------------------------------------------------------
    def add_view(self, view: View) -> View:
        self._static_views.append(view)
        return self.view_graph.add_view(view)

    def record_query_log(self, sql: Union[str, ast.Node]) -> list[View]:
        """Mine a logged full-SQL query into views on the view graph.

        Repeated patterns are not duplicated: their frequency (and hence
        their view strength) increases instead.
        """
        views = self.query_log.record(sql)
        # rebuild: static views plus the log's deduplicated, re-weighted set
        rebuilt = ViewGraph(self.database.catalog, self._static_views)
        for view in self.query_log.views:
            rebuilt.add_view(view)
        self.view_graph = rebuilt
        return views

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def _fold_backend_advice(self, start_rung: str) -> str:
        """Demote the start rung when the backend says it is unwell.

        A :class:`~repro.backends.ResilientBackend` exposes
        ``recommended_start_rung`` — the pinned rung of a tripped
        circuit breaker, or ``"reduced"`` after statistics/reflection
        degradation (an expensive search over missing statistics just
        burns budget).  Plain backends expose nothing and translation
        is unaffected.  The demotion reason is recorded as a
        degradation step on every translated block.
        """
        self._backend_note = None
        advised = getattr(self.database, "recommended_start_rung", None)
        if advised is None or advised not in LADDER:
            return start_rung
        if LADDER.index(advised) <= LADDER.index(start_rung):
            return start_rung
        health = getattr(self.database, "health", None)
        reason = "circuit breaker open"
        if health is not None and getattr(health, "degraded", False):
            causes = []
            if getattr(health, "stats_degraded", False):
                causes.append("statistics sampling failed")
            if getattr(health, "catalog_partial", False):
                causes.append("partial catalog")
            if getattr(health, "version_stale", False):
                causes.append("stale data version")
            if causes:
                reason = ", ".join(causes)
        self._backend_note = (
            f"backend degraded ({reason}): start rung demoted to {advised!r}"
        )
        return advised

    # ------------------------------------------------------------------
    # translation result cache (policy in docs/CACHING.md)
    # ------------------------------------------------------------------
    def _result_cache_key(
        self,
        query: ast.Node,
        raw_text: Optional[str],
        k: int,
        start_rung: str,
    ) -> Optional[tuple]:
        """The full consistency-contract key for this call, or None when
        the call is not cacheable.

        Not cacheable: the cache is disabled, a fault injector is
        attached (injected faults must keep firing on every call), or
        the start rung is pinned below ``full`` (a pinned caller asked
        for a *cheap* translation; serving the cached full-strength one
        would change the rung the breaker machinery observes).
        """
        if (
            self.config.result_cache_size <= 0
            or self.faults is not None
            or start_rung != "full"
        ):
            return None
        with self._stage_guard("cache"), self._timed("cache"):
            view_parts = tuple(
                (view.name, view.signature, view.source, view.strength)
                for view in self.view_graph.views
            )
            return self.context.result_cache_key(
                (fingerprint_parsed(query, raw_text), k, view_parts)
            )

    def _result_cache_lookup(self, key: tuple) -> Optional[tuple]:
        with self._timed("cache"), \
                self.tracer.span("cache.lookup") as span:
            payload = self.context.cached_result(key)
            if span.enabled:
                span.set(
                    hit=payload is not None,
                    entries=self.context.result_cache_entries(),
                )
            return payload

    def _result_cache_store(
        self, key: tuple, translations: list[Translation]
    ) -> None:
        """Admission control: only complete, full-strength results enter.

        A degraded, partial, or diagnostic-carrying translation is the
        budget/fault machinery talking — caching it would replay one
        call's bad luck at full strength forever.  Payloads are
        immutable tuples, never the Translation objects themselves
        (``translate`` reassigns ``.stats`` per call).
        """
        if not translations or self.last_degradation:
            return
        for translation in translations:
            if (
                translation.rung != "full"
                or translation.degradation
                or translation.diagnostic is not None
            ):
                return
        with self._timed("cache"):
            payload = tuple(
                (t.query, t.weight, t.network, t.rung) for t in translations
            )
            cost = sum(len(render(t.query)) for t in translations)
            self.context.remember_result(key, payload, cost)

    def translate(
        self,
        query: Union[str, ast.Node],
        top_k: Optional[int] = None,
        budget: Optional[Budget] = None,
        degrade: Optional[bool] = None,
        start_rung: str = "full",
    ) -> list[Translation]:
        """Translate to full SQL; returns the top-k interpretations.

        With a :class:`Budget` the hot loops of every stage check it
        cooperatively; when it runs out and ``degrade`` is enabled
        (the default whenever a budget is given) the translator walks the
        degradation ladder — reduced search, greedy join path, partial
        composition — instead of failing, recording each rung in the
        returned translations' ``degradation`` / ``diagnostic`` fields.
        Every failure raises a :class:`~repro.errors.ReproError`.

        ``start_rung`` pins the ladder: translation starts at that rung
        (one of :data:`~repro.core.resilience.LADDER`) instead of the
        full top-k search.  The query service's circuit breaker uses
        this to keep serving cheap translations while a database is
        under budget pressure.

        Every call is instrumented: the returned translations carry a
        shared :class:`TranslationStats` (per-stage wall time, candidate
        and expansion counters, memo effectiveness), also available as
        ``last_translation_stats`` — including after a failure.
        """
        if start_rung not in LADDER:
            raise ValueError(
                f"unknown ladder rung {start_rung!r}; expected one of {LADDER}"
            )
        start_rung = self._fold_backend_advice(start_rung)
        if degrade is None:
            degrade = budget is not None
        self.context.ensure_current()
        # one memo-accounting window per query: ladder re-mapping and
        # repeated sub-query trees must not double-count cache lookups
        self.similarity.begin_query()
        stats = TranslationStats()
        meter = budget
        if meter is None and self.faults is None:
            # an unlimited metering budget: it never raises, but its
            # counters record the mapping/search work for the stats.
            # Left off under fault injection, where an injected "budget"
            # fault must keep ignoring budget-less translations.
            meter = Budget.unlimited()
        base = (
            (meter.candidates, meter.expansions) if meter is not None else (0, 0)
        )
        memo_base = self.context.stats.as_dict()
        previous_stats = self._active_stats
        self._active_stats = stats
        started = time.perf_counter()
        self.last_degradation = []
        self.last_diagnostic = None
        root = self.tracer.span("translate")
        if root.enabled:
            text = query if isinstance(query, str) else render(query)
            root.set(
                query=str(text)[:200],
                database=self.database.catalog.name,
                top_k=top_k or self.config.top_k,
                start_rung=start_rung,
            )
        with root:
            try:
                raw_text = query if isinstance(query, str) else None
                if isinstance(query, str):
                    self._fire("parse", meter)
                    with self._stage_guard("parse"), self._timed("parse"), \
                            self.tracer.span("parse"):
                        query = parse(query)
                k = top_k or self.config.top_k
                cache_key = self._result_cache_key(
                    query, raw_text, k, start_rung
                )
                if cache_key is not None:
                    hit = self._result_cache_lookup(cache_key)
                    if hit is not None:
                        translations = [
                            Translation(
                                query=q,
                                weight=weight,
                                network=network,
                                rung=rung,
                                stats=stats,
                                cached=True,
                            )
                            for q, weight, network, rung in hit
                        ]
                        if root.enabled:
                            root.set(
                                cached=True,
                                rung=translations[0].rung,
                                results=len(translations),
                                weight=round(translations[0].weight, 6),
                            )
                        return translations
                translations = self._translate_query(
                    query, {}, k, meter, degrade, start_rung
                )
                for translation in translations:
                    translation.stats = stats
                if cache_key is not None:
                    self._result_cache_store(cache_key, translations)
                if root.enabled and translations:
                    root.set(
                        rung=translations[0].rung,
                        results=len(translations),
                        weight=round(translations[0].weight, 6),
                    )
                return translations
            except ReproError as exc:
                if exc.diagnostic is None:
                    exc.diagnostic = Diagnostic(
                        stage="translate", message=str(exc)
                    )
                if self.last_degradation and not exc.diagnostic.degradation:
                    exc.diagnostic.degradation = tuple(self.last_degradation)
                self.last_diagnostic = exc.diagnostic
                raise
            except Exception as exc:  # re-raises as a typed ReproError
                diagnostic = Diagnostic(
                    stage="translate",
                    message=f"unexpected {type(exc).__name__}: {exc}",
                    degradation=tuple(self.last_degradation),
                )
                self.last_diagnostic = diagnostic
                raise TranslationError(
                    f"internal translation failure: "
                    f"{type(exc).__name__}: {exc}",
                    diagnostic=diagnostic,
                ) from exc
            finally:
                stats.total_seconds = time.perf_counter() - started
                if meter is not None:
                    stats.candidates = meter.candidates - base[0]
                    stats.expansions = meter.expansions - base[1]
                memo_now = self.context.stats.as_dict()
                stats.memo = {
                    key: memo_now[key] - memo_base.get(key, 0)
                    for key in memo_now
                }
                self.last_translation_stats = stats
                self._active_stats = previous_stats
                if root.enabled:
                    root.set(
                        candidates_charged=stats.candidates,
                        expansions_charged=stats.expansions,
                        degraded=bool(self.last_degradation),
                        memo_hits=stats.memo.get("tree_sim_hits", 0),
                        memo_misses=stats.memo.get("tree_sim_misses", 0),
                    )

    def translate_many(
        self,
        queries: Sequence[Union[str, ast.Node]],
        top_k: Optional[int] = None,
        budget: Optional[Budget] = None,
        degrade: Optional[bool] = None,
        start_rung: str = "full",
    ) -> list[list[Translation]]:
        """Translate a whole workload over one shared context and budget.

        Returns one top-k translation list per query, in order; each
        result is exactly what :meth:`translate` returns for that query
        (the shared context memoizes, it never changes outcomes).  A
        single :class:`Budget` covers the *entire* batch: its deadline
        and counters span all queries, so with ``degrade`` enabled (the
        default when a budget is given) later queries degrade rather
        than fail once the budget runs dry.  Errors propagate — wrap
        individual calls when partial batch results are wanted.
        """
        results = []
        batch = TranslationStats(queries=0, total_seconds=0.0)
        for query in queries:
            results.append(
                self.translate(
                    query,
                    top_k=top_k,
                    budget=budget,
                    degrade=degrade,
                    start_rung=start_rung,
                )
            )
            if self.last_translation_stats is not None:
                batch.merge(self.last_translation_stats)
        self.last_translation_stats = batch
        return results

    def translate_best(
        self,
        query: Union[str, ast.Node],
        budget: Optional[Budget] = None,
        degrade: Optional[bool] = None,
        start_rung: str = "full",
    ) -> Translation:
        translations = self.translate(
            query, top_k=1, budget=budget, degrade=degrade, start_rung=start_rung
        )
        if not translations:
            text = query if isinstance(query, str) else render(query)
            raise TranslationError(
                f"no translation found for {text!r}: "
                "the pipeline produced no interpretation",
                diagnostic=Diagnostic(
                    stage="translate",
                    message="empty interpretation list",
                    token=str(text)[:80],
                ),
            )
        return translations[0]

    def execute(
        self, query: Union[str, ast.Node], budget: Optional[Budget] = None
    ) -> Result:
        """Translate the best interpretation and evaluate it."""
        return self.database.execute(
            self.translate_best(query, budget=budget).query
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _translate_query(
        self,
        query: ast.Node,
        outer_bindings: dict[str, str],
        k: int,
        budget: Optional[Budget] = None,
        degrade: bool = False,
        start_rung: str = "full",
    ) -> list[Translation]:
        if isinstance(query, ast.SetOp):
            left = self._translate_query(
                query.left, outer_bindings, 1, budget, degrade, start_rung
            )
            right = self._translate_query(
                query.right, outer_bindings, 1, budget, degrade, start_rung
            )
            if not left or not right:
                side = "left" if not left else "right"
                raise TranslationError(
                    f"could not translate the {side} operand of "
                    f"{query.op.upper()}",
                    diagnostic=Diagnostic(
                        stage="translate",
                        message=f"{side} set-operation operand untranslatable",
                        token=query.op,
                    ),
                )
            combined = ast.SetOp(
                query.op, left[0].query, right[0].query, all=query.all
            )
            degradation = left[0].degradation + right[0].degradation
            rung = max(
                left[0].rung, right[0].rung, key=LADDER.index
            )
            return [
                Translation(
                    combined,
                    left[0].weight * right[0].weight,
                    degradation=degradation,
                    rung=rung,
                )
            ]
        if not isinstance(query, ast.Select):
            raise TranslationError(
                f"not a query: {type(query).__name__}",
                diagnostic=Diagnostic(
                    stage="parse",
                    message="top-level node is not SELECT or a set operation",
                    token=type(query).__name__,
                ),
            )
        return self._translate_block(
            query, outer_bindings, k, budget, degrade, start_rung
        )

    def _translate_block(
        self,
        select: ast.Select,
        outer_bindings: dict[str, str],
        k: int,
        budget: Optional[Budget] = None,
        degrade: bool = False,
        start_rung: str = "full",
    ) -> list[Translation]:
        with self._stage_guard("parse"), self._timed("parse"), \
                self.tracer.span("extract") as extract_span:
            extraction = extract(select)
            all_trees = build_relation_trees(extraction)
            if extract_span.enabled:
                extract_span.set(
                    trees=len(all_trees),
                    labels=", ".join(tree.label for tree in all_trees),
                )
        trees = [
            tree
            for tree in all_trees
            if not self._is_outer_tree(tree, extraction, outer_bindings)
        ]
        if not trees and all_trees:
            # every tree matches an enclosing binding: a block must query
            # *something*, so resolve them locally instead (e.g. the inner
            # block of ``... = (SELECT max(movie?.gross?))`` scans movies)
            trees = all_trees
            outer_bindings = {}
        if not trees:
            # constant block: nothing to map, but outer references and
            # nested sub-queries still need resolving
            rewritten = self._rewrite_outer_only(select, outer_bindings)
            rewritten = self._translate_subqueries(
                rewritten, outer_bindings, k, budget, degrade, start_rung
            )
            return [Translation(rewritten, 1.0)]

        steps: list[str] = []
        gen_stats = GenerationStats()
        mappings, xgraph, networks, rung = self._generate_networks(
            trees, extraction, k, budget, degrade, steps, gen_stats, start_rung
        )
        if self._active_stats is not None:
            for key, value in gen_stats.as_dict().items():
                self._active_stats.generator[key] = (
                    self._active_stats.generator.get(key, 0) + value
                )
        self.last_degradation.extend(steps)
        diagnostic = (
            Diagnostic(
                stage="translate",
                message=f"degraded translation (rung: {rung})",
                degradation=tuple(steps),
            )
            if steps
            else None
        )
        self._fire("compose", budget)
        translations: list[Translation] = []
        with self._stage_guard("compose"), \
                self.tracer.span("compose") as compose_span:
            for network in networks:
                weight = (
                    0.0
                    if rung == "partial"
                    else network.best_weight(xgraph.view_instances)
                )
                with self._timed("compose"):
                    composed = self.composer.compose(
                        select,
                        trees,
                        mappings,
                        network,
                        extraction.from_bindings,
                        outer_bindings,
                        weight=weight,
                    )
                inner_context = dict(outer_bindings)
                inner_context.update(composed.bindings)
                final = self._translate_subqueries(
                    composed.select, inner_context, 1, budget, degrade, start_rung
                )
                translations.append(
                    Translation(
                        final,
                        weight,
                        network,
                        degradation=tuple(steps),
                        diagnostic=diagnostic,
                        rung=rung,
                    )
                )
            if compose_span.enabled:
                compose_span.set(
                    rung=rung,
                    networks=len(networks),
                    results=len(translations),
                )
        translations.sort(key=lambda t: -t.weight)
        return translations

    # ------------------------------------------------------------------
    # the degradation ladder (tentpole of the resilience layer)
    # ------------------------------------------------------------------
    def _generate_networks(
        self,
        trees: list[RelationTree],
        extraction: ExtractionResult,
        k: int,
        budget: Optional[Budget],
        degrade: bool,
        steps: list[str],
        gen_stats: Optional[GenerationStats] = None,
        start_rung: str = "full",
    ) -> tuple[dict[TreeKey, TreeMappings], ExtendedViewGraph, list[JoinNetwork], str]:
        """Produce join networks, degrading instead of failing.

        Rungs: full top-k search → reduced search (k=1, ≤2 mappings per
        tree, views pruned) → greedy single join path → best-effort
        partial composition.  Each abandoned rung appends one step to
        ``steps``.  Mapping failures (a tree matching nothing) stay fatal
        on every rung — there is nothing sensible to compose without a
        relation.

        ``start_rung`` skips the rungs above it entirely (the circuit
        breaker's load-shedding mode); the skip is recorded as a
        degradation step so callers can see the translation was pinned.
        """
        required = [tree.key for tree in trees]
        mappings: Optional[dict[TreeKey, TreeMappings]] = None
        start = LADDER.index(start_rung)
        if start:
            if self._backend_note is not None:
                steps.append(self._backend_note)
            steps.append(
                f"ladder pinned at {start_rung!r}: "
                f"skipping {', '.join(LADDER[:start])}"
            )
        self._fire("map", budget)

        # ---- rung 1: full top-k MTJN search --------------------------
        if start <= LADDER.index("full"):
            with self.tracer.span("rung:full") as rung_span:
                try:
                    rung_budget = (
                        budget.slice(0.55) if budget is not None else None
                    )
                    with self._stage_guard("map"), self._timed("map"):
                        mappings = self.mapper.map_trees(trees, rung_budget)
                    self._check_mappings(trees, mappings)
                    self._fire("network", rung_budget)
                    with self._stage_guard("network"), self._timed("network"), \
                            self.tracer.span("network") as net_span:
                        user_views = self._fragment_views(
                            extraction.fragments, trees, mappings, extraction
                        )
                        session_views = self.view_graph.views + user_views
                        xgraph, networks, search_stats = self._search_networks(
                            trees,
                            mappings,
                            session_views,
                            k,
                            self.config,
                            rung_budget,
                            gen_stats,
                            net_span,
                        )
                    if networks:
                        if rung_span.enabled:
                            rung_span.set(
                                outcome="ok", networks=len(networks)
                            )
                        return mappings, xgraph, networks, "full"
                    labels = ", ".join(tree.label for tree in trees)
                    raise NoJoinNetworkError(
                        f"no join network connects all relation trees "
                        f"({labels})",
                        diagnostic=Diagnostic(
                            stage="network",
                            message=(
                                "search exhausted without a total join network"
                            ),
                            token=labels,
                            candidates=sum(
                                len(mappings[key].candidates)
                                for key in mappings
                            ),
                            detail={"expanded": search_stats.expanded},
                        ),
                    )
                except BudgetExceeded as exc:
                    if not degrade:
                        raise
                    if rung_span.enabled:
                        rung_span.set(outcome="budget-exhausted")
                    steps.append(f"full search abandoned: {exc}")
                except NoJoinNetworkError as exc:
                    if not degrade:
                        raise
                    if rung_span.enabled:
                        rung_span.set(outcome="no-network")
                    steps.append(f"full search failed: {exc}")

        # ---- rung 2: reduced search ---------------------------------
        if start <= LADDER.index("reduced"):
            with self.tracer.span("rung:reduced") as rung_span:
                try:
                    rung_budget = (
                        budget.slice(0.6, counter_scale=0.5)
                        if budget is not None
                        else None
                    )
                    if mappings is None:
                        # mapping was interrupted mid-rung: redo it
                        # unbudgeted (polynomial in schema size, unlike
                        # the network search)
                        with self._stage_guard("map"), self._timed("map"):
                            mappings = self.mapper.map_trees(trees)
                    self._check_mappings(trees, mappings)
                    reduced = self._truncate_mappings(mappings, 2)
                    with self._stage_guard("network"), self._timed("network"), \
                            self.tracer.span("network") as net_span:
                        config = dataclasses.replace(
                            self.config,
                            max_expansions=min(
                                self.config.max_expansions, 2000
                            ),
                        )
                        xgraph, networks, _ = self._search_networks(
                            trees,
                            reduced,
                            (),  # views pruned on this rung
                            1,
                            config,
                            rung_budget,
                            gen_stats,
                            net_span,
                        )
                    if networks:
                        steps.append(
                            "reduced search succeeded "
                            "(k=1, ≤2 mappings per tree, views pruned)"
                        )
                        if rung_span.enabled:
                            rung_span.set(outcome="ok", networks=1)
                        return reduced, xgraph, networks, "reduced"
                    if rung_span.enabled:
                        rung_span.set(outcome="no-network")
                    steps.append("reduced search found no join network")
                except BudgetExceeded as exc:
                    if rung_span.enabled:
                        rung_span.set(outcome="budget-exhausted")
                    steps.append(f"reduced search abandoned: {exc}")

        # ---- rungs 3 & 4: greedy path, then partial composition -----
        if mappings is None:
            # every search rung was pinned away: map now (polynomial),
            # so the cheap rungs below still have relations to place
            with self._stage_guard("map"), self._timed("map"):
                mappings = self.mapper.map_trees(trees)
            self._check_mappings(trees, mappings)
        singles = self._truncate_mappings(mappings, 1)
        with self._stage_guard("network"), self._timed("network"):
            with self.tracer.span("network") as net_span:
                xgraph = ExtendedViewGraph(
                    ViewGraph(self.database.catalog),
                    trees,
                    singles,
                    self.similarity,
                    self.config,
                    context=self.context,
                )
                if net_span.enabled:
                    net_span.set(**xgraph.summary())
            if start > LADDER.index("greedy"):
                pass  # pinned at "partial": no join search at all
            elif budget is not None and budget.time_exceeded():
                steps.append("greedy join path skipped: deadline passed")
            else:
                with self.tracer.span("rung:greedy") as rung_span:
                    network = self._greedy_network(xgraph, required)
                    if network is not None:
                        if rung_span.enabled:
                            rung_span.set(outcome="ok", networks=1)
                        steps.append(
                            "greedy single join path (best mapping per tree)"
                        )
                        return singles, xgraph, [network], "greedy"
                    if rung_span.enabled:
                        rung_span.set(outcome="disconnected")
                steps.append("greedy join path could not connect all trees")
            with self.tracer.span("rung:partial") as rung_span:
                network = self._partial_network(xgraph, trees)
                if rung_span.enabled:
                    rung_span.set(outcome="ok", trees=len(trees))
        steps.append(
            "partial translation: best mapping per tree, join search skipped"
        )
        return singles, xgraph, [network], "partial"

    def _search_networks(
        self,
        trees: list[RelationTree],
        mappings: dict[TreeKey, TreeMappings],
        views: Sequence[View],
        k: int,
        config: TranslatorConfig,
        rung_budget: Optional[Budget],
        gen_stats: Optional[GenerationStats],
        net_span,
    ) -> tuple[ExtendedViewGraph, list[JoinNetwork], GenerationStats]:
        """One MTJN search rung, memoized on the shared context.

        The (extended graph, networks) pair is a pure function of the
        terminal-relation signature — tree shapes, name evidence, ordered
        mapping candidates, views, k, expansion cap — so repeat
        signatures skip both graph construction and the top-k search.
        Only *completed* searches are remembered: a rung abandoned by
        BudgetExceeded raises through before the store, so a degraded
        result can never be replayed to a caller with budget to spare.
        """
        signature = network_signature(
            trees, mappings, views, k, config.max_expansions, config
        )
        cached = self.context.cached_networks(signature)
        if cached is not None:
            xgraph, networks = cached
            stats = gen_stats if gen_stats is not None else GenerationStats()
            stats.memo_hits += 1
            self.last_stats = stats
            if net_span.enabled:
                net_span.set(memo_hit=1, **xgraph.summary())
            return xgraph, list(networks), stats
        xgraph = ExtendedViewGraph(
            ViewGraph(self.database.catalog, views),
            trees,
            mappings,
            self.similarity,
            config,
            budget=rung_budget,
            context=self.context,
        )
        if net_span.enabled:
            net_span.set(**xgraph.summary())
        generator = MTJNGenerator(
            xgraph,
            config,
            budget=rung_budget,
            stats=gen_stats,
            tracer=self.tracer,
        )
        networks = generator.generate(k)
        self.last_stats = generator.stats
        # the graph is query-independent state from here on: shed the
        # spent rung budget before sharing it through the context memo
        xgraph.budget = None
        self.context.remember_networks(signature, (xgraph, tuple(networks)))
        return xgraph, networks, generator.stats

    def _check_mappings(
        self, trees: list[RelationTree], mappings: dict[TreeKey, TreeMappings]
    ) -> None:
        for tree in trees:
            if not mappings[tree.key].candidates:
                raise TranslationError(
                    f"relation tree {tree.label} ({tree}) matches no "
                    "relation in the database",
                    diagnostic=Diagnostic(
                        stage="map",
                        message="no relation exceeds the similarity threshold",
                        token=tree.label,
                        candidates=len(self.database.catalog),
                    ),
                )

    @staticmethod
    def _truncate_mappings(
        mappings: dict[TreeKey, TreeMappings], limit: int
    ) -> dict[TreeKey, TreeMappings]:
        return {
            key: TreeMappings(tm.tree, tm.candidates[:limit])
            for key, tm in mappings.items()
        }

    def _greedy_network(
        self, xgraph: ExtendedViewGraph, required: list[TreeKey]
    ) -> Optional[JoinNetwork]:
        """One join network, greedily: start at the first tree's best
        node and repeatedly splice in the strongest path to each still-
        uncovered tree.  No backtracking, no top-k — a single pass whose
        cost is one strongest-path computation per candidate node."""
        roots = xgraph.nodes_for_tree(required[0])
        if not roots:
            return None
        network = JoinNetwork.single(roots[0])
        for key in required[1:]:
            if key in network.tree_keys:
                continue
            network = self._splice_tree(xgraph, network, key)
            if network is None:
                return None  # tree unreachable: fall through to partial
        return network if network.is_total(required) else None

    def _splice_tree(
        self,
        xgraph: ExtendedViewGraph,
        network: JoinNetwork,
        key: TreeKey,
    ) -> Optional[JoinNetwork]:
        """Splice the strongest *legal* path from one of *key*'s mapped
        nodes into the network, then grow the network along it."""
        best_weight = 0.0
        best_path: Optional[tuple[int, list]] = None
        for candidate in xgraph.nodes_for_tree(key):
            found = self._best_legal_path(xgraph, candidate, network)
            if found is not None and found[0] > best_weight:
                best_weight, best_path = found[0], (found[1], found[2])
        if best_path is None:
            return None
        member_id, edges = best_path
        current = network
        attach = current.nodes[member_id]
        for edge in edges:
            expanded = current.expand_edge(edge, attach, legality=False)
            if expanded is None:
                return None  # residual conflict (e.g. duplicate tree key)
            current = expanded
            attach = edge.other(attach)
        return current

    @staticmethod
    def _best_legal_path(
        xgraph: ExtendedViewGraph,
        source: XNode,
        network: JoinNetwork,
    ):
        """Strongest path from *source* to any network member that is
        legal to splice: Dijkstra over (node, incoming-FK) states so the
        same occurrence's foreign key is never reused for two targets
        (Definition 2), and no edge conflicts with the network's own FK
        usage.  Returns ``(weight, member_id, edges)`` with the edges
        ordered from the member outward, or None when unreachable."""
        counter = itertools.count()
        start = (source.node_id, None)
        best: dict[tuple, float] = {start: 1.0}
        parents: dict[tuple, tuple] = {}
        heap = [(-1.0, next(counter), source, None)]
        best_member: Optional[tuple] = None
        best_member_weight = 0.0
        while heap:
            negative, _, node, incoming = heapq.heappop(heap)
            weight = -negative
            state = (node.node_id, incoming)
            if weight < best.get(state, 0.0):
                continue
            if node.node_id in network.nodes:
                if weight > best_member_weight:
                    best_member_weight = weight
                    best_member = state
                continue  # members are attach points, not way-stations
            for edge in xgraph.incident_edges(node):
                fk_key = JoinNetwork._fk_key(edge)
                if fk_key == incoming:
                    continue  # would reuse this occurrence's FK instance
                if fk_key in network.fk_used:
                    continue
                neighbor = edge.other(node)
                next_state = (neighbor.node_id, fk_key)
                candidate = weight * edge.weight
                if candidate > best.get(next_state, 0.0):
                    best[next_state] = candidate
                    parents[next_state] = (state, edge)
                    heapq.heappush(
                        heap, (-candidate, next(counter), neighbor, fk_key)
                    )
        if best_member is None:
            return None
        edges = []
        state = best_member
        while state in parents:
            state, edge = parents[state]
            edges.append(edge)
        return best_member_weight, best_member[0], edges

    def _partial_network(
        self, xgraph: ExtendedViewGraph, trees: list[RelationTree]
    ) -> JoinNetwork:
        """Best-effort bottom rung: a forest of each tree's best-mapped
        node with no join edges at all.  Composition places every mapped
        relation in FROM (a cross join) with all names fully resolved —
        a syntactically valid, executable translation that preserves the
        user's conditions even when no join path was found in time."""
        nodes: dict[int, XNode] = {}
        for tree in trees:
            node = xgraph.nodes_for_tree(tree.key)[0]
            nodes[node.node_id] = node
        ids = list(nodes)
        return JoinNetwork(
            root_id=ids[0],
            nodes=nodes,
            parents={node_id: None for node_id in ids},
            children={node_id: () for node_id in ids},
            rightmost=frozenset(ids),
            edges=(),
            views=(),
            fk_used=frozenset(),
            construction_weight=0.0,
            tree_keys=frozenset(tree.key for tree in trees),
        )

    def _is_outer_tree(
        self,
        tree: RelationTree,
        extraction: ExtractionResult,
        outer_bindings: dict[str, str],
    ) -> bool:
        """A tree whose occurrences are correlated references into an
        enclosing (already-translated) block is not mapped here."""
        kind, text = tree.key
        return (
            kind == "name"
            and text in outer_bindings
            and text not in extraction.from_bindings
        )

    def _rewrite_outer_only(
        self, select: ast.Select, outer_bindings: dict[str, str]
    ) -> ast.Select:
        """Resolve correlated references in a block with no local trees."""
        if not outer_bindings:
            return select

        def rewrite(node: ast.Node) -> Optional[ast.Node]:
            if (
                isinstance(node, ast.ColumnRef)
                and node.relation is not None
                and node.relation.is_known
                and node.relation.text.lower() in outer_bindings
            ):
                return self.composer._rewrite_outer_ref(node, outer_bindings)
            return None

        return transform_block_select(select, rewrite)

    def _translate_subqueries(
        self,
        select: ast.Select,
        context: dict[str, str],
        k: int,
        budget: Optional[Budget] = None,
        degrade: bool = False,
        start_rung: str = "full",
    ) -> ast.Select:
        """Replace each first-level sub-query with its best translation."""

        def rewrite(node: ast.Node) -> Optional[ast.Node]:
            if isinstance(node, ast.SUBQUERY_NODES):
                translated = self._translate_query(
                    node.query, context, 1, budget, degrade, start_rung
                )
                if not translated:
                    raise TranslationError(
                        f"could not translate sub-query {render(node.query)!r}",
                        diagnostic=Diagnostic(
                            stage="translate",
                            message="nested sub-query untranslatable",
                            token=render(node.query)[:80],
                        ),
                    )
                return dataclasses.replace(node, query=translated[0].query)
            return None

        return transform_block_select(select, rewrite)

    def _fragment_views(
        self,
        fragments: list[JoinFragment],
        trees: list[RelationTree],
        mappings: dict,
        extraction: ExtractionResult,
    ) -> list[View]:
        """Turn user-specified join-path fragments into views (§5.1).

        Each connected set of fragments becomes one view over the best
        mapped relations of the trees it touches; join attributes are the
        mapper's argmax attribute names.
        """
        from .relation_tree import attribute_key, relation_key

        tree_by_key = {tree.key: tree for tree in trees}
        resolved: list[tuple] = []
        for fragment in fragments:
            endpoints = []
            for column in (fragment.left, fragment.right):
                key = relation_key(
                    column.relation, column.attribute, extraction.from_bindings
                )
                tree = tree_by_key.get(key)
                if tree is None or not mappings[key].candidates:
                    endpoints = []
                    break
                mapping = mappings[key].best
                attr_name = mapping.attribute_map.get(
                    attribute_key(column.attribute)
                )
                if attr_name is None:
                    endpoints = []
                    break
                endpoints.append((key, mapping.relation.name, attr_name))
            if len(endpoints) == 2 and endpoints[0][0] != endpoints[1][0]:
                resolved.append(tuple(endpoints))
        if not resolved:
            return []
        # group fragments into connected components over tree keys
        keys = sorted({e[0] for pair in resolved for e in pair})
        parent = {key: key for key in keys}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for (left, right) in resolved:
            a, b = find(left[0]), find(right[0])
            if a != b:
                parent[a] = b
        components: dict = {}
        for key in keys:
            components.setdefault(find(key), []).append(key)
        views = []
        counter = itertools.count(1)
        for members in components.values():
            member_set = set(members)
            local = {key: i for i, key in enumerate(members)}
            joins = []
            seen_pairs = set()
            for (left, right) in resolved:
                if left[0] in member_set and right[0] in member_set:
                    pair = frozenset((left[0], right[0]))
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    joins.append(
                        ViewJoin(local[left[0]], left[2], local[right[0]], right[2])
                    )
            if len(joins) != len(members) - 1:
                continue  # cyclic or redundant fragments: skip (views are trees)
            relations = tuple(
                mappings[key].best.relation.name for key in members
            )
            views.append(
                View(
                    name=f"user#{next(counter)}",
                    relations=relations,
                    joins=tuple(joins),
                    source="user",
                    # "views transformed from partial join path specified
                    # by the user should have very high weight" (§5.2)
                    strength=2.0,
                )
            )
        return views
