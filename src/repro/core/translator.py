"""End-to-end Schema-free SQL translation (the paper's Figure 3 pipeline).

``SchemaFreeTranslator`` wires the four architecture modules together:

* Schema-free SQL Parser  — ``repro.sqlkit`` + ``repro.core.triples``
* Relation Tree Mapper    — ``repro.core.mapper`` (+ similarity)
* Network Builder         — ``repro.core.view_graph`` + ``repro.core.mtjn``
* Standard SQL Composer   — ``repro.core.composer``

Nested queries are processed one block at a time, outermost first, so
correlated references resolve against already-translated outer bindings
(paper §2.2.5).  ``translate`` returns the top-k full-SQL interpretations
best-first; ``execute`` evaluates the best one on the database.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..engine import Database, Result
from ..sqlkit import ast, parse, render
from .composer import ComposedQuery, Composer, TranslationError, transform_block_select
from .config import DEFAULT_CONFIG, TranslatorConfig
from .join_network import JoinNetwork
from .mapper import RelationTreeMapper, TreeMappings
from .mtjn import GenerationStats, MTJNGenerator
from .query_log import QueryLog, views_from_sql
from .relation_tree import RelationTree, build_relation_trees
from .similarity import SimilarityEvaluator
from .triples import ExtractionResult, JoinFragment, extract
from .view_graph import ExtendedViewGraph, View, ViewGraph, ViewJoin


@dataclass
class Translation:
    """One full-SQL interpretation of a schema-free query."""

    query: ast.Node  # Select or SetOp, fully exact
    weight: float
    network: Optional[JoinNetwork] = None

    @property
    def sql(self) -> str:
        return render(self.query)


class SchemaFreeTranslator:
    """Translates Schema-free SQL into full SQL over one database."""

    def __init__(
        self,
        database: Database,
        config: TranslatorConfig = DEFAULT_CONFIG,
        views: Iterable[View] = (),
    ) -> None:
        self.database = database
        self.config = config
        self._static_views: list[View] = list(views)
        self.view_graph = ViewGraph(database.catalog, self._static_views)
        self.similarity = SimilarityEvaluator(database, config)
        self.mapper = RelationTreeMapper(database, config, self.similarity)
        self.composer = Composer(database.catalog)
        self.query_log = QueryLog(database.catalog)
        self.last_stats: Optional[GenerationStats] = None

    # ------------------------------------------------------------------
    # view management
    # ------------------------------------------------------------------
    def add_view(self, view: View) -> View:
        self._static_views.append(view)
        return self.view_graph.add_view(view)

    def record_query_log(self, sql: Union[str, ast.Node]) -> list[View]:
        """Mine a logged full-SQL query into views on the view graph.

        Repeated patterns are not duplicated: their frequency (and hence
        their view strength) increases instead.
        """
        views = self.query_log.record(sql)
        # rebuild: static views plus the log's deduplicated, re-weighted set
        rebuilt = ViewGraph(self.database.catalog, self._static_views)
        for view in self.query_log.views:
            rebuilt.add_view(view)
        self.view_graph = rebuilt
        return views

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def translate(
        self, query: Union[str, ast.Node], top_k: Optional[int] = None
    ) -> list[Translation]:
        """Translate to full SQL; returns the top-k interpretations."""
        if isinstance(query, str):
            query = parse(query)
        k = top_k or self.config.top_k
        return self._translate_query(query, {}, k)

    def translate_best(self, query: Union[str, ast.Node]) -> Translation:
        translations = self.translate(query, top_k=1)
        if not translations:
            raise TranslationError("no translation found")
        return translations[0]

    def execute(self, query: Union[str, ast.Node]) -> Result:
        """Translate the best interpretation and evaluate it."""
        return self.database.execute(self.translate_best(query).query)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _translate_query(
        self,
        query: ast.Node,
        outer_bindings: dict[str, str],
        k: int,
    ) -> list[Translation]:
        if isinstance(query, ast.SetOp):
            left = self._translate_query(query.left, outer_bindings, 1)
            right = self._translate_query(query.right, outer_bindings, 1)
            if not left or not right:
                raise TranslationError("could not translate UNION operand")
            combined = ast.SetOp(
                query.op, left[0].query, right[0].query, all=query.all
            )
            return [
                Translation(combined, left[0].weight * right[0].weight)
            ]
        if not isinstance(query, ast.Select):
            raise TranslationError(f"not a query: {type(query).__name__}")
        return self._translate_block(query, outer_bindings, k)

    def _translate_block(
        self,
        select: ast.Select,
        outer_bindings: dict[str, str],
        k: int,
    ) -> list[Translation]:
        extraction = extract(select)
        all_trees = build_relation_trees(extraction)
        trees = [
            tree
            for tree in all_trees
            if not self._is_outer_tree(tree, extraction, outer_bindings)
        ]
        if not trees and all_trees:
            # every tree matches an enclosing binding: a block must query
            # *something*, so resolve them locally instead (e.g. the inner
            # block of ``... = (SELECT max(movie?.gross?))`` scans movies)
            trees = all_trees
            outer_bindings = {}
        if not trees:
            # constant block: nothing to map, but outer references and
            # nested sub-queries still need resolving
            rewritten = self._rewrite_outer_only(select, outer_bindings)
            rewritten = self._translate_subqueries(
                rewritten, outer_bindings, k
            )
            return [Translation(rewritten, 1.0)]

        mappings = self.mapper.map_trees(trees)
        for tree in trees:
            if not mappings[tree.key].candidates:
                raise TranslationError(
                    f"relation tree {tree.label} "
                    f"({tree}) matches no relation in the database"
                )

        user_views = self._fragment_views(extraction.fragments, trees, mappings, extraction)
        session_graph = ViewGraph(
            self.database.catalog, self.view_graph.views + user_views
        )
        xgraph = ExtendedViewGraph(
            session_graph, trees, mappings, self.similarity, self.config
        )
        generator = MTJNGenerator(xgraph, self.config)
        networks = generator.generate(k)
        self.last_stats = generator.stats
        if not networks:
            raise TranslationError(
                "no join network connects all relation trees"
            )
        translations: list[Translation] = []
        for network in networks:
            weight = network.best_weight(xgraph.view_instances)
            composed = self.composer.compose(
                select,
                trees,
                mappings,
                network,
                extraction.from_bindings,
                outer_bindings,
                weight=weight,
            )
            inner_context = dict(outer_bindings)
            inner_context.update(composed.bindings)
            final = self._translate_subqueries(
                composed.select, inner_context, 1
            )
            translations.append(Translation(final, weight, network))
        translations.sort(key=lambda t: -t.weight)
        return translations

    def _is_outer_tree(
        self,
        tree: RelationTree,
        extraction: ExtractionResult,
        outer_bindings: dict[str, str],
    ) -> bool:
        """A tree whose occurrences are correlated references into an
        enclosing (already-translated) block is not mapped here."""
        kind, text = tree.key
        return (
            kind == "name"
            and text in outer_bindings
            and text not in extraction.from_bindings
        )

    def _rewrite_outer_only(
        self, select: ast.Select, outer_bindings: dict[str, str]
    ) -> ast.Select:
        """Resolve correlated references in a block with no local trees."""
        if not outer_bindings:
            return select

        def rewrite(node: ast.Node) -> Optional[ast.Node]:
            if (
                isinstance(node, ast.ColumnRef)
                and node.relation is not None
                and node.relation.is_known
                and node.relation.text.lower() in outer_bindings
            ):
                return self.composer._rewrite_outer_ref(node, outer_bindings)
            return None

        return transform_block_select(select, rewrite)

    def _translate_subqueries(
        self,
        select: ast.Select,
        context: dict[str, str],
        k: int,
    ) -> ast.Select:
        """Replace each first-level sub-query with its best translation."""

        def rewrite(node: ast.Node) -> Optional[ast.Node]:
            if isinstance(node, ast.SUBQUERY_NODES):
                translated = self._translate_query(node.query, context, 1)
                if not translated:
                    raise TranslationError("could not translate sub-query")
                return dataclasses.replace(node, query=translated[0].query)
            return None

        return transform_block_select(select, rewrite)

    def _fragment_views(
        self,
        fragments: list[JoinFragment],
        trees: list[RelationTree],
        mappings: dict,
        extraction: ExtractionResult,
    ) -> list[View]:
        """Turn user-specified join-path fragments into views (§5.1).

        Each connected set of fragments becomes one view over the best
        mapped relations of the trees it touches; join attributes are the
        mapper's argmax attribute names.
        """
        from .relation_tree import attribute_key, relation_key

        tree_by_key = {tree.key: tree for tree in trees}
        resolved: list[tuple] = []
        for fragment in fragments:
            endpoints = []
            for column in (fragment.left, fragment.right):
                key = relation_key(
                    column.relation, column.attribute, extraction.from_bindings
                )
                tree = tree_by_key.get(key)
                if tree is None or not mappings[key].candidates:
                    endpoints = []
                    break
                mapping = mappings[key].best
                attr_name = mapping.attribute_map.get(
                    attribute_key(column.attribute)
                )
                if attr_name is None:
                    endpoints = []
                    break
                endpoints.append((key, mapping.relation.name, attr_name))
            if len(endpoints) == 2 and endpoints[0][0] != endpoints[1][0]:
                resolved.append(tuple(endpoints))
        if not resolved:
            return []
        # group fragments into connected components over tree keys
        keys = sorted({e[0] for pair in resolved for e in pair})
        parent = {key: key for key in keys}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for (left, right) in resolved:
            a, b = find(left[0]), find(right[0])
            if a != b:
                parent[a] = b
        components: dict = {}
        for key in keys:
            components.setdefault(find(key), []).append(key)
        views = []
        counter = itertools.count(1)
        for members in components.values():
            member_set = set(members)
            local = {key: i for i, key in enumerate(members)}
            joins = []
            seen_pairs = set()
            for (left, right) in resolved:
                if left[0] in member_set and right[0] in member_set:
                    pair = frozenset((left[0], right[0]))
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    joins.append(
                        ViewJoin(local[left[0]], left[2], local[right[0]], right[2])
                    )
            if len(joins) != len(members) - 1:
                continue  # cyclic or redundant fragments: skip (views are trees)
            relations = tuple(
                mappings[key].best.relation.name for key in members
            )
            views.append(
                View(
                    name=f"user#{next(counter)}",
                    relations=relations,
                    joins=tuple(joins),
                    source="user",
                    # "views transformed from partial join path specified
                    # by the user should have very high weight" (§5.2)
                    strength=2.0,
                )
            )
        return views
