"""Similarity evaluation between relation trees and relations (paper §4).

The framework follows the paper exactly:

* string similarity ``Sim(a, b)`` is the Jaccard coefficient between the
  q-gram sets of the two names;
* damped similarity ``Sim'(a, b) = kref * Sim(a, b)`` is used when the
  match is indirect (against a neighbouring relation's name);
* root-level similarity (§4.2) takes the best of the direct match and the
  damped neighbour matches, falling back to attribute names with default
  ``kdef`` when the tree's root is unspecified;
* attribute-level similarity (§4.3) multiplies the attribute-name
  similarity by ``(m + 1) / (n + 1)``, where n counts the attribute
  tree's value conditions and m counts those satisfied by at least one
  tuple of the candidate column;
* whole-tree similarity (§4.1) is the product of the root similarity and
  all attribute similarities.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..catalog import Attribute, Relation
from ..engine import ExecutionError, NameResolutionError
from ..engine.evaluator import Evaluator, Scope
from ..sqlkit import ast, render
from .config import DEFAULT_CONFIG, TranslatorConfig
from .relation_tree import AttributeTree, RelationTree, tree_fingerprint
from .triples import Condition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..backends.base import Backend
    from .context import TranslationContext

# ---------------------------------------------------------------------------
# string similarity
# ---------------------------------------------------------------------------


@lru_cache(maxsize=65536)
def qgrams(text: str, q: int) -> frozenset[str]:
    """Padded q-gram set of a lower-cased identifier."""
    text = text.lower()
    if not text:
        return frozenset()
    padded = "#" * (q - 1) + text + "#" * (q - 1)
    return frozenset(padded[i : i + q] for i in range(len(padded) - q + 1))


@lru_cache(maxsize=65536)
def _qgram_jaccard(a: str, b: str, q: int) -> float:
    grams_a, grams_b = qgrams(a, q), qgrams(b, q)
    union = len(grams_a | grams_b)
    if union == 0:
        return 0.0
    return len(grams_a & grams_b) / union


def string_similarity(
    a: str, b: str, q: int = 3, token_damp: float = 0.85
) -> float:
    """Identifier similarity: q-gram Jaccard, token-aware.

    The paper recommends the Jaccard coefficient between q-gram sets
    (§4.2) and frames the concrete similarity as a pluggable choice.  Raw
    q-grams underrate compound schema names (``produce_company`` shares
    almost no 3-grams with ``company``), so we additionally compare the
    best pair of underscore-separated tokens, damped by ``token_damp`` so
    a whole-name match still wins.

    The similarity is symmetric and case-insensitive, so the arguments
    are canonicalised (lower-cased and ordered) before the cache lookup:
    ``sim(a, b)`` and ``sim(b, a)`` share one cache slot.
    """
    a, b = a.lower(), b.lower()
    if a > b:
        a, b = b, a
    return _string_similarity(a, b, q, token_damp)


@lru_cache(maxsize=65536)
def _string_similarity(a: str, b: str, q: int, token_damp: float) -> float:
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    full = _word_similarity(a, b, q)
    tokens_a = [t for t in a.split("_") if t]
    tokens_b = [t for t in b.split("_") if t]
    best_token = 0.0
    if len(tokens_a) > 1 or len(tokens_b) > 1:
        best_token = max(
            (
                _word_similarity(ta, tb, q)
                for ta in tokens_a
                for tb in tokens_b
            ),
            default=0.0,
        )
    return max(full, token_damp * best_token)


def _singular(word: str) -> str:
    """Cheap plural stripping: ``movies`` -> ``movie``, ``classes`` ->
    ``class``; leaves short words and non-plurals alone."""
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("es") and len(word) > 4 and word[-3] in "sxz":
        return word[:-2]
    if word.endswith("s") and not word.endswith("ss") and len(word) > 3:
        return word[:-1]
    return word


@lru_cache(maxsize=65536)
def _word_similarity(a: str, b: str, q: int) -> float:
    """q-gram Jaccard, plural-insensitive (``actors`` matches ``actor``)."""
    sa, sb = _singular(a), _singular(b)
    if sa == sb:
        return 1.0
    return _qgram_jaccard(sa, sb, q)


def clear_string_caches() -> None:
    """Drop every module-level string-similarity cache.

    The caches are process-global, so a benchmark comparing a cold
    translator against a warm one must clear them to simulate a fresh
    process; nothing in the translation pipeline itself needs this.
    """
    qgrams.cache_clear()
    _qgram_jaccard.cache_clear()
    _word_similarity.cache_clear()
    _string_similarity.cache_clear()


def stride_sample(values: Sequence[Any], limit: int) -> list[Any]:
    """Deterministic whole-sequence sample of at most ``limit`` values.

    Every value is kept when the sequence fits the limit; otherwise the
    sample takes values at a fixed stride across the whole sequence, so
    evidence is drawn evenly from the entire column rather than only its
    first rows (a condition satisfied only by late-inserted tuples must
    not be misclassified as unsatisfied).
    """
    n = len(values)
    if limit <= 0 or n <= limit:
        return list(values)
    step = n / limit
    return [values[min(n - 1, int(i * step))] for i in range(limit)]


# ---------------------------------------------------------------------------
# condition satisfaction (the (m+1)/(n+1) factor of §4.3)
# ---------------------------------------------------------------------------

_PROBE_BINDING = "__probe__"
_PROBE_COLUMN = "__value__"
_PROBE_REF = ast.ColumnRef(
    ast.exact(_PROBE_COLUMN), ast.exact(_PROBE_BINDING)
)


class ConditionChecker:
    """Checks whether value conditions are satisfied by database columns.

    Column contents are sampled (``config.condition_sample``, a
    deterministic stride across the column's distinct values) and probe
    predicates are evaluated with the subject column bound to each sample
    value; the first satisfying value short-circuits.

    With a :class:`~repro.core.context.TranslationContext` the samples
    and the status memo live on the context, shared across every checker
    built for the same database and invalidated when the data changes.
    """

    def __init__(
        self,
        database: "Backend",
        config: TranslatorConfig,
        context: Optional["TranslationContext"] = None,
    ) -> None:
        self._database = database
        self._config = config
        self._context = context
        self._evaluator = Evaluator()
        self._samples: dict[tuple[str, str], list[Any]] = {}
        self._memo: dict[tuple[str, str, str], str] = {}

    def _sample(self, relation: str, attribute: str) -> list[Any]:
        if self._context is not None:
            return self._context.column_sample(relation, attribute)
        key = (relation.lower(), attribute.lower())
        if key not in self._samples:
            values = self._database.column_values(relation, attribute)
            distinct = list(dict.fromkeys(v for v in values if v is not None))
            self._samples[key] = stride_sample(
                distinct, self._config.condition_sample
            )
        return self._samples[key]

    def status(
        self, condition: Condition, relation: Relation, attribute: Attribute
    ) -> str:
        """Classify a condition against a column.

        Returns ``"satisfied"`` when some tuple of ``relation.attribute``
        satisfies the condition, ``"incompatible"`` when the condition's
        constants can *never* be satisfied by the column's type, and
        ``"unsatisfied"`` otherwise.
        """
        probe = _probe_predicate(condition)
        memo_key = (render(probe), relation.key, attribute.key)
        if self._context is not None:
            cached = self._context.condition_status(memo_key)
        else:
            cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        if not _compatible(condition.predicate, attribute.data_type):
            result = "incompatible"
        else:
            result = "unsatisfied"
            for value in self._sample(relation.name, attribute.name):
                scope = Scope({_PROBE_BINDING: {_PROBE_COLUMN: value}})
                try:
                    if self._evaluator.is_true(probe, scope):
                        result = "satisfied"
                        break
                except (ExecutionError, NameResolutionError):
                    result = "incompatible"
                    break
        if self._context is not None:
            self._context.remember_condition(memo_key, result)
        else:
            self._memo[memo_key] = result
        return result

    def satisfied(
        self, condition: Condition, relation: Relation, attribute: Attribute
    ) -> bool:
        """True when some tuple of the column satisfies the condition."""
        return self.status(condition, relation, attribute) == "satisfied"


def _literal_family(value: Any) -> Optional[str]:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "text"
    return None


def _column_family(data_type) -> str:
    from ..catalog import DataType

    if data_type in (DataType.INTEGER, DataType.FLOAT):
        return "number"
    if data_type is DataType.BOOLEAN:
        return "bool"
    if data_type is DataType.DATE:
        return "date"
    return "text"


def _compatible(predicate: ast.Node, data_type) -> bool:
    """Whether the predicate's constants could ever be satisfied by a
    column of *data_type* (a text constant never equals an integer)."""
    import datetime

    column = _column_family(data_type)
    if isinstance(predicate, ast.IsNull):
        return True
    if isinstance(predicate, ast.Like):
        return column in ("text", "date")
    for node in predicate.walk():
        if not isinstance(node, ast.Literal) or node.value is None:
            continue
        family = _literal_family(node.value)
        if family is None:
            continue
        if family == column:
            continue
        if column == "date" and family == "text":
            try:
                datetime.date.fromisoformat(node.value)
                continue
            except ValueError:
                return False
        return False
    return True


def _probe_predicate(condition: Condition) -> ast.Node:
    """The condition's predicate with its subject column replaced by the
    canonical probe reference."""
    subject = condition.column

    def substitute(node: ast.Node) -> Optional[ast.Node]:
        if node == subject:
            return _PROBE_REF
        return None

    return ast.transform(condition.predicate, substitute)


# ---------------------------------------------------------------------------
# similarity evaluator (§4.1 - §4.3)
# ---------------------------------------------------------------------------


class SimilarityEvaluator:
    """Computes Sim(rt, R) and records the per-attribute argmax mapping.

    With a :class:`~repro.core.context.TranslationContext` the evaluator
    shares the context's precomputed neighbor lists and column samples,
    and memoizes whole-tree similarities across queries keyed by the
    tree's canonical fingerprint (two structurally identical relation
    trees score identically against every relation).
    """

    def __init__(
        self,
        database: "Backend",
        config: TranslatorConfig = DEFAULT_CONFIG,
        context: Optional["TranslationContext"] = None,
    ) -> None:
        if context is not None:
            if context.database is not database:
                raise ValueError(
                    "TranslationContext was built for a different database"
                )
            if context.config != config:
                raise ValueError(
                    "TranslationContext was built for a different "
                    "TranslatorConfig"
                )
        self.database = database
        self.config = config
        self.context = context
        self.checker = ConditionChecker(database, config, context)
        self._neighbors: dict[str, list[Relation]] = {}
        #: (fingerprint, relation) pairs probed since :meth:`begin_query`
        #: — the dedup behind single-counted memo statistics
        self._probed: set[tuple] = set()

    def begin_query(self) -> None:
        """Start a new per-query lookup-accounting window.

        The translator calls this at the top of every ``translate()``;
        an evaluator used standalone (without a translator) simply keeps
        one window, which still guarantees each pair is counted at most
        once.
        """
        self._probed.clear()

    # -- string helpers --------------------------------------------------
    def sim(self, a: str, b: str) -> float:
        return string_similarity(
            a, b, self.config.qgram, self.config.token_damp
        )

    def sim_damped(self, a: str, b: str) -> float:
        """Sim'(a, b) = kref * Sim(a, b)."""
        return self.config.kref * self.sim(a, b)

    def _neighbors_of(self, relation: Relation) -> Sequence[Relation]:
        if self.context is not None:
            return self.context.neighbors(relation.key)
        cached = self._neighbors.get(relation.key)
        if cached is None:
            cached = self.database.catalog.neighbors(relation.name)
            self._neighbors[relation.key] = cached
        return cached

    # -- root level (§4.2) -------------------------------------------------
    def root_similarity(self, tree: RelationTree, relation: Relation) -> float:
        name = tree.known_name
        if name is not None:
            # floor at kdef: a guessed name with no lexical overlap (a
            # synonym like ``film`` for ``movie``) degrades to the
            # unspecified-root case instead of zeroing the product
            return max(self._root_for_name(name, relation), self.config.kdef)
        # unspecified root: start at kdef, then try each attribute name in
        # place of the relation name and keep the best (§4.2, last para.)
        best = self.config.kdef
        for attribute_tree in tree.attribute_trees:
            attr_name = attribute_tree.known_name
            if attr_name is None:
                continue
            best = max(best, self._root_for_name(attr_name, relation))
        return best

    def _root_for_name(self, name: str, relation: Relation) -> float:
        direct = self.sim(name, relation.name)
        # vocabulary aliases (schema evolution): the best of the real name
        # and any registered alias counts as the relation's name.  The
        # unlocked emptiness probe keeps the alias-free hot path free of
        # per-call lock traffic; dict reads are atomic under the GIL.
        if self.context is not None and self.context._relation_aliases:
            for alias in self.context.relation_aliases(relation.key):
                direct = max(direct, self.sim(name, alias))
        damped = max(
            (
                self.sim_damped(name, neighbor.name)
                for neighbor in self._neighbors_of(relation)
            ),
            default=0.0,
        )
        return max(direct, damped)

    # -- attribute level (§4.3) ---------------------------------------------
    def attribute_similarity(
        self, attribute_tree: AttributeTree, relation: Relation
    ) -> tuple[float, Optional[str]]:
        """Best Sim(at, A) over the relation's attributes, plus the argmax
        attribute name (used by the composer to instantiate names)."""
        best_score = 0.0
        best_attribute: Optional[str] = None
        for attribute in relation.attributes:
            score = self._attribute_pair(attribute_tree, relation, attribute)
            if score > best_score:
                best_score = score
                best_attribute = attribute.name
        return best_score, best_attribute

    def _attribute_pair(
        self,
        attribute_tree: AttributeTree,
        relation: Relation,
        attribute: Attribute,
    ) -> float:
        name = attribute_tree.known_name
        if name is not None:
            raw = self.sim(name, attribute.name)
            # same unlocked emptiness probe as _root_for_name
            if self.context is not None and self.context._attribute_aliases:
                for alias in self.context.attribute_aliases(
                    relation.key, attribute.key
                ):
                    raw = max(raw, self.sim(name, alias))
            # additive smoothing: a zero q-gram overlap must not wipe out
            # condition evidence (mirrors the paper's +1 smoothing)
            alpha = self.config.attr_smooth
            name_sim = (raw + alpha) / (1.0 + alpha)
        else:
            # placeholder attribute: no name evidence; neutral default so
            # the (m+1)/(n+1) condition factor decides (paper leaves this
            # case open; kdef keeps placeholder trees comparable)
            name_sim = self.config.kdef
        if attribute.name.lower() in (c.lower() for c in relation.primary_key):
            # matching the relation's key is evidence the user means this
            # relation itself, not a bridge that references it
            name_sim *= self.config.pk_bonus
        conditions = attribute_tree.conditions
        total = len(conditions)
        if total:
            satisfied = 0
            for condition in conditions:
                status = self.checker.status(condition, relation, attribute)
                if status == "satisfied":
                    satisfied += 1
                elif status == "incompatible":
                    # type-impossible conditions are stronger negative
                    # evidence than merely unsatisfied ones
                    name_sim *= self.config.k_incompat
            beta = self.config.cond_smooth
            name_sim *= (satisfied + beta) / (total + beta)
        return name_sim

    # -- whole tree (§4.1) ------------------------------------------------------
    def tree_similarity(
        self, tree: RelationTree, relation: Relation
    ) -> tuple[float, dict]:
        """Sim(rt, R) plus the attribute-tree -> attribute-name mapping.

        Memoized across queries on the shared context (when one is
        attached), keyed by the tree's canonical fingerprint: trees from
        different queries with the same root name, attribute names and
        condition predicates share one computation.

        Memo statistics are counted *here*, once per unique pair per
        query: replays within one translation (the degradation ladder
        re-mapping after an abandoned rung, repeated sub-query trees)
        still read the memo but are not recounted, so hit/miss totals
        measure genuine cross-query cache effectiveness.
        """
        if self.context is None:
            return self._tree_similarity(tree, relation)
        key = (tree_fingerprint(tree), relation.key)
        first_probe = key not in self._probed
        if first_probe:
            self._probed.add(key)
        cached = self.context.cached_tree_similarity(key, count=first_probe)
        if cached is not None:
            score, attribute_map = cached
            return score, dict(attribute_map)
        score, attribute_map = self._tree_similarity(tree, relation)
        self.context.remember_tree_similarity(key, (score, dict(attribute_map)))
        return score, attribute_map

    def _tree_similarity(
        self, tree: RelationTree, relation: Relation
    ) -> tuple[float, dict]:
        score = self.root_similarity(tree, relation)
        attribute_map: dict = {}
        for attribute_tree in tree.attribute_trees:
            attr_score, attr_name = self.attribute_similarity(
                attribute_tree, relation
            )
            score *= attr_score
            if attr_name is not None:
                attribute_map[attribute_tree.key] = attr_name
        return score, attribute_map
