"""View graph and extended view graph (paper Section 5).

The *schema graph* has one node per relation and one edge per FK-PK pair.
The *view graph* adds a set of views — join-path fragments specified by
the user in the query, plus query patterns mined from the query log —
each a connected tree of relation occurrences (Figure 5).

Given an l-relation-trees query and its mapping sets, the *extended view
graph* GX materialises one node ``R^(rt)`` per (relation, mapped tree)
pair plus one plain node ``R^()`` per relation, lifts every schema edge
to all combinations of endpoint nodes, and instantiates every view under
every consistent assignment of relation trees to its occurrences
(Example 6).

Edge weights follow §5.2:

    w(e) = 1 - (1 - c) * (1 - max(Sim'(n(rt1), n(R2)), Sim'(n(rt2), n(R1))))

so an edge strengthens when one endpoint's user-specified name resembles
the *other* endpoint's relation.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..catalog import Catalog, ForeignKey, normalize
from .config import DEFAULT_CONFIG, TranslatorConfig
from .mapper import TreeMappings
from .relation_tree import RelationTree, TreeKey
from .resilience import Budget
from .similarity import SimilarityEvaluator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import TranslationContext

# ---------------------------------------------------------------------------
# views
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ViewJoin:
    """One join inside a view, between two occurrence indexes."""

    left: int
    left_attribute: str
    right: int
    right_attribute: str


@dataclass(frozen=True)
class View:
    """A connected tree of relation occurrences with join attributes.

    ``relations[i]`` is the relation name of occurrence ``i``; the same
    relation may occur more than once (Figure 5's Person–Actor–Movie–
    Director–Person view has two Person occurrences).

    ``strength`` implements the weight management the paper defers to
    future work ("views transformed from partial join path specified by
    the user should have very high weight; query patterns mined from the
    query log can have different weights according to their frequency",
    §5.2): a view instance is weighted ``(∏ w(e)) ** (1 / (1 + strength))``,
    so strength 1 reproduces Definition 5's square root exactly, and
    stronger views approach weight 1.
    """

    name: str
    relations: tuple[str, ...]
    joins: tuple[ViewJoin, ...]
    source: str = "log"  # "user" | "log"
    strength: float = 1.0

    @property
    def signature(self) -> tuple:
        """Structural identity, ignoring the name (used for frequency
        counting in the query log)."""
        return (
            tuple(r.lower() for r in self.relations),
            tuple(
                (j.left, j.left_attribute.lower(), j.right, j.right_attribute.lower())
                for j in self.joins
            ),
        )

    def __post_init__(self) -> None:
        count = len(self.relations)
        if count == 0:
            raise ValueError("view must contain at least one relation")
        if len(self.joins) != count - 1:
            raise ValueError(
                f"view {self.name!r}: {count} occurrences need exactly "
                f"{count - 1} joins to form a tree, got {len(self.joins)}"
            )
        # connectivity check (tree with n-1 edges is connected iff acyclic)
        parent = list(range(count))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for join in self.joins:
            if not (0 <= join.left < count and 0 <= join.right < count):
                raise ValueError(f"view {self.name!r}: join index out of range")
            a, b = find(join.left), find(join.right)
            if a == b:
                raise ValueError(f"view {self.name!r}: joins form a cycle")
            parent[a] = b

    @property
    def size(self) -> int:
        return len(self.relations)


class ViewGraph:
    """Schema graph plus a managed set of views."""

    def __init__(self, catalog: Catalog, views: Iterable[View] = ()) -> None:
        self.catalog = catalog
        self._views: list[View] = []
        for view in views:
            self.add_view(view)

    @property
    def views(self) -> list[View]:
        return list(self._views)

    def add_view(self, view: View) -> View:
        for name in view.relations:
            self.catalog.relation(name)  # validates existence
        self._views.append(view)
        return view

    def clear_views(self) -> None:
        self._views.clear()


# ---------------------------------------------------------------------------
# extended view graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class XNode:
    """One node of the extended view graph: a relation occurrence tagged
    with the relation tree mapped onto it (or None for ``R^()``)."""

    node_id: int
    relation: str  # canonical (lower-case) relation key
    tree_key: Optional[TreeKey]

    @property
    def is_mapped(self) -> bool:
        return self.tree_key is not None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "" if self.tree_key is None else str(self.tree_key)
        return f"{self.relation}^({tag})#{self.node_id}"


@dataclass(frozen=True)
class XEdge:
    """One extended edge, carrying its originating FK and its weight."""

    left: XNode
    right: XNode
    left_attribute: str
    right_attribute: str
    weight: float
    #: identity of the underlying FK-PK pair; Definition 2 forbids the same
    #: foreign key of one node joining two different target occurrences
    fk_id: tuple[str, str, str, str]

    def other(self, node: XNode) -> XNode:
        return self.right if node == self.left else self.left

    def attribute_of(self, node: XNode) -> str:
        return self.left_attribute if node == self.left else self.right_attribute

    @property
    def key(self) -> frozenset[int]:
        # computed once per edge: the key is consulted for every frontier
        # admission and every path relaxation, so rebuilding the frozenset
        # per call dominated the generator's constant factor
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = frozenset((self.left.node_id, self.right.node_id))
            object.__setattr__(self, "_key", cached)
        return cached


@dataclass(frozen=True)
class ViewInstance:
    """A view with each occurrence assigned to an extended node."""

    view: View
    nodes: tuple[XNode, ...]
    edges: tuple[XEdge, ...]
    label: int  # numeric label for the legality test (§6.1)
    weight: float  # w(view) = sqrt(product of member edge weights), Def. 5

    @property
    def edge_keys(self) -> frozenset[frozenset[int]]:
        cached = self.__dict__.get("_edge_keys")
        if cached is None:
            cached = frozenset(edge.key for edge in self.edges)
            object.__setattr__(self, "_edge_keys", cached)
        return cached


class ExtendedViewGraph:
    """GX(VX, EX, VIEWX) for one l-relation-trees query."""

    def __init__(
        self,
        view_graph: ViewGraph,
        trees: Sequence[RelationTree],
        mappings: dict[TreeKey, TreeMappings],
        evaluator: SimilarityEvaluator,
        config: TranslatorConfig = DEFAULT_CONFIG,
        budget: Optional[Budget] = None,
        context: Optional["TranslationContext"] = None,
    ) -> None:
        self.view_graph = view_graph
        self.catalog = view_graph.catalog
        self.trees = list(trees)
        self.mappings = mappings
        self.config = config
        self.budget = budget
        self.context = context if context is not None else evaluator.context
        self._evaluator = evaluator
        self.nodes: list[XNode] = []
        self._nodes_by_relation: dict[str, list[XNode]] = {}
        self._nodes_by_tree: dict[TreeKey, list[XNode]] = {}
        self.edges: list[XEdge] = []
        self._adjacency: dict[int, list[XEdge]] = {}
        self.view_instances: list[ViewInstance] = []
        self._removed: set[int] = set()
        #: True once a view joined on a non-FK pair and an edge had to be
        #: synthesised — schema-level reachability is then no longer a
        #: sound negative oracle for this graph
        self.has_synthetic_edges = False
        self._path_adj: Optional[dict[int, tuple]] = None
        self._build_nodes()
        self._build_edges()
        self._build_view_instances()

    def summary(self) -> dict[str, int]:
        """Size counters for trace spans and EXPLAIN output."""
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "view_instances": len(self.view_instances),
            "views": len(self.view_graph.views),
        }

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add_node(self, relation: str, tree_key: Optional[TreeKey]) -> XNode:
        node = XNode(len(self.nodes), relation, tree_key)
        self.nodes.append(node)
        self._nodes_by_relation.setdefault(relation, []).append(node)
        if tree_key is not None:
            self._nodes_by_tree.setdefault(tree_key, []).append(node)
        return node

    def _build_nodes(self) -> None:
        # mapped nodes first so their numeric labels are small and stable
        for tree in self.trees:
            mapping = self.mappings.get(tree.key)
            if mapping is None:
                continue
            for candidate in mapping.candidates:
                self._add_node(candidate.relation.key, tree.key)
        for relation in self.catalog:
            self._add_node(relation.key, None)

    def _tree_by_key(self, tree_key: Optional[TreeKey]) -> Optional[RelationTree]:
        if tree_key is None:
            return None
        for tree in self.trees:
            if tree.key == tree_key:
                return tree
        return None

    @staticmethod
    def _name_evidence(tree: Optional[RelationTree]) -> list[str]:
        """Names the user attached to a tree: its root name, or — when the
        root is unspecified — its attribute names (the same fallback §4.2
        uses for root-level similarity)."""
        if tree is None:
            return []
        if tree.known_name:
            return [tree.known_name]
        return [
            attribute.known_name
            for attribute in tree.attribute_trees
            if attribute.known_name
        ]

    def edge_weight(self, left: XNode, right: XNode) -> float:
        """§5.2 weight: the default c enhanced by cross-name similarity
        (``w(e) = 1 - (1-c)(1 - max Sim'(...))``, Example 7)."""
        c = self.config.c
        best = 0.0
        left_tree = self._tree_by_key(left.tree_key)
        right_tree = self._tree_by_key(right.tree_key)
        right_relation = self.catalog.relation(right.relation)
        left_relation = self.catalog.relation(left.relation)
        for name in self._name_evidence(left_tree):
            best = max(
                best, self._evaluator.sim_damped(name, right_relation.name)
            )
        for name in self._name_evidence(right_tree):
            best = max(
                best, self._evaluator.sim_damped(name, left_relation.name)
            )
        return 1.0 - (1.0 - c) * (1.0 - best)

    def _fk_edges(self) -> Iterable[tuple[str, str, ForeignKey, tuple]]:
        """(source key, target key, fk, fk.key) per FK-PK pair; the
        shared context pre-normalizes these once per database."""
        if (
            self.context is not None
            and self.context.database.catalog is self.catalog
        ):
            return self.context.fk_edges
        return (
            (
                normalize(fk.source_relation),
                normalize(fk.target_relation),
                fk,
                fk.key,
            )
            for fk in self.catalog.foreign_keys
        )

    def _build_edges(self) -> None:
        built = 0
        for source_key, target_key, fk, fk_key in self._fk_edges():
            for left in self._nodes_by_relation.get(source_key, ()):
                for right in self._nodes_by_relation.get(target_key, ()):
                    if left.node_id == right.node_id:
                        continue  # self-referencing FK to the same occurrence
                    built += 1
                    if self.budget is not None and built % 64 == 0:
                        self.budget.check("network")
                    edge = XEdge(
                        left=left,
                        right=right,
                        left_attribute=fk.source_attribute,
                        right_attribute=fk.target_attribute,
                        weight=self.edge_weight(left, right),
                        fk_id=fk_key,
                    )
                    self.edges.append(edge)
                    self._adjacency.setdefault(left.node_id, []).append(edge)
                    self._adjacency.setdefault(right.node_id, []).append(edge)

    def _build_view_instances(self) -> None:
        label = 0
        for view in self.view_graph.views:
            for assignment in self._assignments(view):
                edges = self._instance_edges(view, assignment)
                if edges is None:
                    continue
                # Definition 5 generalised by view strength: strength 1
                # is exactly the paper's square root
                exponent = 1.0 / (1.0 + max(view.strength, 0.0))
                product = math.prod(edge.weight for edge in edges)
                weight = product**exponent if edges else 1.0
                self.view_instances.append(
                    ViewInstance(
                        view=view,
                        nodes=tuple(assignment),
                        edges=tuple(edges),
                        label=label,
                        weight=weight,
                    )
                )
                label += 1

    def _assignments(self, view: View) -> Iterable[list[XNode]]:
        """All consistent assignments of extended nodes to the view's
        occurrences: same relation, distinct nodes for distinct occurrences,
        and no relation tree used twice (Example 6)."""
        options: list[list[XNode]] = []
        for name in view.relations:
            nodes = self._nodes_by_relation.get(normalize(name))
            if not nodes:
                return
            options.append(nodes)
        seen_cap = 0
        for combo in itertools.product(*options):
            if self.budget is not None:
                # each attempted occurrence assignment is one candidate
                self.budget.charge_candidates(1, stage="network")
            ids = {node.node_id for node in combo}
            if len(ids) != len(combo):
                continue
            tree_keys = [n.tree_key for n in combo if n.tree_key is not None]
            if len(tree_keys) != len(set(tree_keys)):
                continue
            yield list(combo)
            seen_cap += 1
            if seen_cap >= 256:  # safety cap for pathological view/mapping mixes
                return

    def _instance_edges(
        self, view: View, assignment: list[XNode]
    ) -> Optional[list[XEdge]]:
        edges = []
        for join in view.joins:
            left = assignment[join.left]
            right = assignment[join.right]
            edge = self._find_edge(
                left, join.left_attribute, right, join.right_attribute
            )
            if edge is None:
                # the view joins on a non-FK pair: synthesise an edge so the
                # view can still be used (weights use the same formula)
                self.has_synthetic_edges = True
                edge = XEdge(
                    left=left,
                    right=right,
                    left_attribute=join.left_attribute,
                    right_attribute=join.right_attribute,
                    weight=self.edge_weight(left, right),
                    fk_id=(
                        left.relation,
                        join.left_attribute.lower(),
                        right.relation,
                        join.right_attribute.lower(),
                    ),
                )
            edges.append(edge)
        return edges

    def _find_edge(
        self, left: XNode, left_attribute: str, right: XNode, right_attribute: str
    ) -> Optional[XEdge]:
        for edge in self._adjacency.get(left.node_id, ()):
            if edge.other(left).node_id != right.node_id:
                continue
            if (
                edge.attribute_of(left).lower() == left_attribute.lower()
                and edge.attribute_of(right).lower() == right_attribute.lower()
            ):
                return edge
        return None

    # ------------------------------------------------------------------
    # queries used by the MTJN generator
    # ------------------------------------------------------------------
    def remove_node(self, node: XNode) -> None:
        """Mask a node out of the graph (Algorithm 1, line 5)."""
        self._removed.add(node.node_id)

    def restore_node(self, node: XNode) -> None:
        self._removed.discard(node.node_id)

    def restore_all(self) -> None:
        self._removed.clear()

    def is_removed(self, node: XNode) -> bool:
        return node.node_id in self._removed

    def incident_edges(self, node: XNode) -> list[XEdge]:
        return [
            edge
            for edge in self._adjacency.get(node.node_id, ())
            if not self.is_removed(edge.other(node))
        ]

    def nodes_for_tree(self, tree_key: TreeKey) -> list[XNode]:
        return [
            node
            for node in self._nodes_by_tree.get(tree_key, ())
            if not self.is_removed(node)
        ]

    def active_view_instances(self) -> list[ViewInstance]:
        return [
            instance
            for instance in self.view_instances
            if not any(self.is_removed(node) for node in instance.nodes)
        ]

    # ------------------------------------------------------------------
    # strongest paths (potential estimation, Algorithm 3)
    # ------------------------------------------------------------------
    def view_discounts(self) -> dict[frozenset[int], float]:
        """Optimistic per-edge view discount: the strongest (highest-
        strength) view containing an edge determines its best exponent.
        Depends only on the (immutable) view instance set, so it is
        computed once per graph instead of once per path query."""
        cached = getattr(self, "_view_discounts", None)
        if cached is None:
            cached = {}
            for instance in self.view_instances:
                exponent = 1.0 / (1.0 + max(instance.view.strength, 0.0))
                for key in instance.edge_keys:
                    cached[key] = min(cached.get(key, 1.0), exponent)
            self._view_discounts = cached
        return cached

    def _path_adjacency(self) -> dict[int, tuple]:
        """Per-node ``(effective weight, neighbor id, neighbor, edge)``
        adjacency with the view discount pre-applied.  Node removals are
        filtered at traversal time, so the table survives Algorithm 1's
        root masking unchanged."""
        if self._path_adj is None:
            discounts = self.view_discounts()
            adj: dict[int, list] = {}
            for edge in self.edges:
                weight = edge.weight
                exponent = discounts.get(edge.key)
                if exponent is not None:
                    weight = weight**exponent
                adj.setdefault(edge.left.node_id, []).append(
                    (weight, edge.right.node_id, edge.right, edge)
                )
                adj.setdefault(edge.right.node_id, []).append(
                    (weight, edge.left.node_id, edge.left, edge)
                )
            self._path_adj = {
                node_id: tuple(entries) for node_id, entries in adj.items()
            }
        return self._path_adj

    def strongest_paths_from(
        self,
        source: XNode,
        with_parents: bool = False,
        banned: Iterable[XEdge] = (),
    ):
        """Max-product path weight from *source* to every node, with view
        edges optimistically up-weighted per the strongest containing view
        (§6.1).  With ``with_parents`` also returns the predecessor map so
        Algorithm 3 can add the whole path to the partial network.
        ``banned`` edges are skipped (the greedy degradation rung uses
        this to route around foreign-key conflicts)."""
        banned_set = set(banned)
        adjacency = self._path_adjacency()
        removed = self._removed
        best: dict[int, float] = {source.node_id: 1.0}
        parents: dict[int, int] = {}
        heap: list[tuple[float, int, XNode]] = [(-1.0, source.node_id, source)]
        best_get = best.get
        while heap:
            negative_weight, node_id, node = heapq.heappop(heap)
            weight = -negative_weight
            if weight < best_get(node_id, 0.0):
                continue
            for edge_weight, neighbor_id, neighbor, edge in adjacency.get(
                node_id, ()
            ):
                if neighbor_id in removed:
                    continue
                if banned_set and edge in banned_set:
                    continue
                candidate = weight * edge_weight
                if candidate > best_get(neighbor_id, 0.0):
                    best[neighbor_id] = candidate
                    parents[neighbor_id] = node_id
                    heapq.heappush(
                        heap, (-candidate, neighbor_id, neighbor)
                    )
        if with_parents:
            return best, parents
        return best
