"""Shared per-database translation state: the hot path's caching layer.

Every stage of the Figure 3 pipeline consumes quantities that depend only
on the database, not on the query being translated: relation neighbor
lists (§4.2 damped similarity), per-column distinct-value samples (§4.3
condition satisfaction), the q-gram/token make-up of every schema name,
and the FK adjacency the extended view graph is lifted from (§5.1).
Before this module each translator instance rebuilt all of them privately
— acceptable for one-shot translation, hopeless for the workload-serving
deployment the roadmap targets.

:class:`TranslationContext` computes each of these once per database and
is shared by :class:`~repro.core.similarity.SimilarityEvaluator`,
:class:`~repro.core.similarity.ConditionChecker`,
:class:`~repro.core.mapper.RelationTreeMapper` and
:class:`~repro.core.view_graph.ExtendedViewGraph`.  On top of the
precomputed state it carries two cross-query memo tables:

* whole-tree similarities ``Sim(rt, R)`` keyed by the tree's canonical
  fingerprint (:func:`~repro.core.relation_tree.tree_fingerprint`) — a
  relation tree that recurs across a workload (``movie?`` with the same
  conditions) is scored once per relation, ever;
* condition-satisfaction statuses keyed by (rendered probe, column).

Schema-derived state (neighbors, name index, FK adjacency) is immutable
for the database's lifetime; data-derived state (samples, both memo
tables) is invalidated when the backend's ``data_version`` moves — the
translator calls :meth:`ensure_current` at the top of every translation.

The context reads its substrate only through the :class:`repro.backends.
base.Backend` protocol (``catalog``, ``column_values``, ``data_version``),
so it builds identically over the in-memory engine or a reflected SQLite
file; a raw :class:`repro.engine.Database` satisfies the protocol
structurally.

:class:`ContextStats` counts builds/hits/misses so tests can assert reuse
semantics and :class:`TranslationStats` can report cache effectiveness.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

from ..catalog import Catalog, ForeignKey, Relation, SchemaError, normalize
from .config import DEFAULT_CONFIG, TranslatorConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.base import Backend
from .relation_tree import RelationTree, TreeFingerprint
from .rescache import ResultCache, schema_fingerprint
from .similarity import qgrams, stride_sample

# ---------------------------------------------------------------------------
# instrumentation
# ---------------------------------------------------------------------------


@dataclass
class ContextStats:
    """Build/hit/miss counters for everything the context owns.

    These are the "counter hooks" reuse tests assert against: translating
    twice over one context must not grow ``sample_builds`` or
    ``neighbor_builds`` on the second pass.
    """

    #: neighbor lists computed (once per relation, at construction)
    neighbor_builds: int = 0
    #: distinct columns whose sample was materialised
    sample_builds: int = 0
    #: sample lookups answered from the cache
    sample_hits: int = 0
    #: samples decoded from an attached artifact (repro.artifacts) —
    #: neither a backend build nor an in-memory hit
    sample_loads: int = 0
    #: whole-tree similarity memo hits / misses
    tree_sim_hits: int = 0
    tree_sim_misses: int = 0
    #: condition-status memo hits / misses
    condition_hits: int = 0
    condition_misses: int = 0
    #: generated-network memo hits / misses (keyed by terminal-relation
    #: signature; see TranslationContext.cached_networks)
    network_hits: int = 0
    network_misses: int = 0
    #: translation result cache hits / misses (keyed by canonical SF-SQL
    #: fingerprint; see TranslationContext.cached_result)
    result_hits: int = 0
    result_misses: int = 0
    #: result-cache entries evicted by the LRU's entry/byte bounds
    result_evictions: int = 0
    #: result-cache invalidation events (data_version bump, vocabulary-
    #: alias registration) — each clears the whole cache
    result_invalidations: int = 0
    #: times the data-derived caches were dropped after a Database mutation
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        # flat ints only; translate() snapshots this twice per call, so
        # the recursive dataclasses.asdict walk is hot-path overhead
        return dict(self.__dict__)


@dataclass
class TranslationStats:
    """Instrumentation for one ``translate()`` call (or a whole batch).

    ``stages`` maps pipeline stage (parse / map / network / compose) to
    accumulated wall-clock seconds; ``candidates`` and ``expansions``
    ride the :class:`~repro.core.resilience.Budget` counters; ``generator``
    carries the MTJN search counters accumulated across degradation
    rungs; ``memo`` is the delta of :class:`ContextStats` over the call.
    """

    stages: dict[str, float] = field(default_factory=dict)
    candidates: int = 0
    expansions: int = 0
    generator: dict[str, int] = field(default_factory=dict)
    memo: dict[str, int] = field(default_factory=dict)
    queries: int = 1
    total_seconds: float = 0.0

    def add_stage(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def merge(self, other: "TranslationStats") -> None:
        """Fold another translation's stats in (batch aggregation)."""
        for stage, seconds in other.stages.items():
            self.add_stage(stage, seconds)
        self.candidates += other.candidates
        self.expansions += other.expansions
        for key, value in other.generator.items():
            self.generator[key] = self.generator.get(key, 0) + value
        for key, value in other.memo.items():
            self.memo[key] = self.memo.get(key, 0) + value
        self.queries += other.queries
        self.total_seconds += other.total_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "queries": self.queries,
            "total_seconds": round(self.total_seconds, 6),
            "stages": {k: round(v, 6) for k, v in self.stages.items()},
            "candidates": self.candidates,
            "expansions": self.expansions,
            "generator": dict(self.generator),
            "memo": dict(self.memo),
        }

    def render(self) -> str:
        """One compact block for the CLI's ``--stats`` output."""
        stages = "  ".join(
            f"{name} {seconds * 1000:.1f}ms"
            for name, seconds in sorted(self.stages.items())
        )
        lines = [
            f"stats: {self.total_seconds * 1000:.1f}ms total"
            + (f" over {self.queries} queries" if self.queries > 1 else ""),
            f"  stages: {stages}" if stages else "  stages: (none)",
            f"  work: {self.candidates} candidates, "
            f"{self.expansions} expansions"
            + (
                f" (generator: {', '.join(f'{k}={v}' for k, v in sorted(self.generator.items()))})"
                if self.generator
                else ""
            ),
        ]
        if self.memo:
            hits = self.memo.get("tree_sim_hits", 0)
            misses = self.memo.get("tree_sim_misses", 0)
            lines.append(
                f"  memo: tree-sim {hits} hits / {misses} misses, "
                f"samples {self.memo.get('sample_hits', 0)} hits / "
                f"{self.memo.get('sample_builds', 0)} builds, "
                f"conditions {self.memo.get('condition_hits', 0)} hits / "
                f"{self.memo.get('condition_misses', 0)} misses"
            )
            if self.memo.get("result_hits", 0) or self.memo.get(
                "result_misses", 0
            ):
                lines.append(
                    f"  result cache: {self.memo.get('result_hits', 0)} hits"
                    f" / {self.memo.get('result_misses', 0)} misses, "
                    f"{self.memo.get('result_evictions', 0)} evictions, "
                    f"{self.memo.get('result_invalidations', 0)} "
                    f"invalidations"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# schema name index
# ---------------------------------------------------------------------------


class NameIndex:
    """Token/q-gram inverted index over relation and attribute names.

    Maps each q-gram and underscore-token of every schema identifier to
    the relations it occurs in.  The mapper uses it to *order* candidate
    relations by lexical affinity with a tree's name evidence before
    scoring, so that a budget that exhausts mid-mapping has already
    scored the likeliest candidates (scoring order never changes the
    final mapping set — candidates are re-sorted by similarity).
    Building the index also warms the process-wide q-gram caches for
    every schema name, so the first query pays no q-gram setup.
    """

    def __init__(self, catalog: Catalog, q: int) -> None:
        self.q = q
        self._grams: dict[str, set[str]] = {}  # gram -> relation keys
        self._tokens: dict[str, set[str]] = {}  # token -> relation keys
        for relation in catalog:
            names = [relation.name] + [
                attribute.name for attribute in relation.attributes
            ]
            for name in names:
                for gram in qgrams(name, q):
                    self._grams.setdefault(gram, set()).add(relation.key)
                for token in name.lower().split("_"):
                    if token:
                        self._tokens.setdefault(token, set()).add(relation.key)

    def add_names(self, relation_key: str, names: Iterable[str]) -> None:
        """Index extra *names* (vocabulary aliases) under *relation_key*,
        so :meth:`order` ranks the aliased relation as if the alias were
        one of its own identifiers."""
        for name in names:
            for gram in qgrams(name, self.q):
                self._grams.setdefault(gram, set()).add(relation_key)
            for token in name.lower().split("_"):
                if token:
                    self._tokens.setdefault(token, set()).add(relation_key)

    def affinity(self, name: str) -> dict[str, int]:
        """Relation key -> count of shared q-grams/tokens with *name*."""
        scores: dict[str, int] = {}
        for gram in qgrams(name, self.q):
            for key in self._grams.get(gram, ()):
                scores[key] = scores.get(key, 0) + 1
        for token in name.lower().split("_"):
            for key in self._tokens.get(token, ()):
                scores[key] = scores.get(key, 0) + 1
        return scores

    def order(
        self, names: Iterable[str], relations: Sequence[Relation]
    ) -> list[Relation]:
        """*relations* re-ordered by total affinity with *names*, best
        first; ties break on the relation key so the order is stable."""
        totals: dict[str, int] = {}
        for name in names:
            for key, count in self.affinity(name).items():
                totals[key] = totals.get(key, 0) + count
        return sorted(
            relations,
            key=lambda relation: (-totals.get(relation.key, 0), relation.key),
        )


# ---------------------------------------------------------------------------
# the buildable / mutable state split
# ---------------------------------------------------------------------------


@dataclass
class ContextSchemaState:
    """The *buildable* half of a context: everything derived purely from
    the catalog (plus the config constants baked into the path table).

    Immutable for the database's lifetime, identical for every process
    that opens the same database, and therefore exactly what a
    :mod:`repro.artifacts` file persists.  A context built fresh and a
    context restored from this state are indistinguishable to the
    translation pipeline.
    """

    relations: tuple[Relation, ...]
    neighbors: dict[str, tuple[Relation, ...]]
    fk_edges: tuple[tuple[str, str, ForeignKey, tuple], ...]
    name_index: NameIndex
    schema_paths: dict[str, dict[str, float]]
    schema_parents: dict[str, dict[str, str]]
    schema_components: dict[str, int]
    schema_fingerprint: str


@dataclass
class ContextMemoState:
    """A snapshot of the *mutable* memo half of a context.

    Every entry is a pure function of (schema, data epoch, config, key),
    so seeding a fresh context with another context's memo state can
    change timings but never outcomes — the property the artifact
    round-trip tests pin byte-for-byte.  The result cache and the
    vocabulary aliases are deliberately absent: results bake in
    admission-time serving state, and aliases are runtime vocabulary
    (docs/ARTIFACTS.md, "what is not persisted").
    """

    samples: dict[tuple[str, str], list[Any]] = field(default_factory=dict)
    tree_sims: dict[tuple[TreeFingerprint, str], tuple[float, dict]] = field(
        default_factory=dict
    )
    conditions: dict[tuple, str] = field(default_factory=dict)
    networks: dict[tuple, tuple] = field(default_factory=dict)


class SampleSource:
    """Read-only provider of column samples decoded on first use.

    The artifact loader implements this over an ``mmap``-backed buffer
    (:class:`repro.artifacts.format.LazySampleTable`); the context only
    requires ``get`` — returning the decoded sample for a (relation
    key, attribute key) pair or ``None`` — and ``keys``.
    """

    def get(self, key: tuple[str, str]):  # pragma: no cover - interface
        raise NotImplementedError

    def keys(self):  # pragma: no cover - interface
        raise NotImplementedError


# ---------------------------------------------------------------------------
# the context
# ---------------------------------------------------------------------------


class TranslationContext:
    """Query-independent translation state for one database.

    Construct once per (database, config) pair and share across
    translator instances and queries; :class:`SchemaFreeTranslator`
    creates one automatically when none is passed.  All state is derived,
    so sharing is always safe: the worst case of a stale context is a
    rebuild, guarded by :meth:`ensure_current`.

    The data-derived caches (and their :class:`ContextStats` counters)
    are protected by one lock, so a context can be shared by the
    per-worker translators of a concurrent query service: a sample is
    built at most once per invalidation epoch, and invalidation is
    atomic with respect to in-flight lookups.  Memoized values are pure
    functions of (database contents, key), so two threads that race on
    the same miss compute the same value — sharing never changes
    translation outcomes.
    """

    def __init__(
        self, database: "Backend", config: TranslatorConfig = DEFAULT_CONFIG
    ) -> None:
        self._init_runtime(database, config)
        self._apply_schema_state(self._build_schema_state())
        self.stats.neighbor_builds += len(self.relations)
        self._init_data_state(ContextMemoState())

    @classmethod
    def from_artifact(
        cls,
        database: "Backend",
        config: TranslatorConfig,
        schema_state: ContextSchemaState,
        memos: Optional[ContextMemoState] = None,
        sample_source: Optional[SampleSource] = None,
    ) -> "TranslationContext":
        """A context restored from persisted state instead of built.

        *Callers must have verified the key already* — the artifact
        loader (:func:`repro.artifacts.load_context`) only gets here
        after matching (schema fingerprint, data_version, config digest)
        against the live backend, so the restored schema state is
        structurally identical to what :meth:`_build_schema_state`
        would produce.  Mutable serving state (result cache, aliases,
        stats, lock) starts as fresh as a built context's; the memo
        tables start from the artifact's snapshot and grow normally
        from there.  ``sample_source`` supplies buffer-backed column
        samples decoded on first use, so attaching is O(header) rather
        than O(data).
        """
        context = cls.__new__(cls)
        context._init_runtime(database, config)
        context._apply_schema_state(schema_state)
        context._init_data_state(memos or ContextMemoState(), sample_source)
        return context

    def _init_runtime(
        self, database: "Backend", config: TranslatorConfig
    ) -> None:
        """Per-process serving state: never persisted, never shared."""
        self.database = database
        self.config = config
        self.stats = ContextStats()
        self._lock = threading.Lock()
        self._data_version = database.data_version
        # -- vocabulary aliases (schema evolution, testing.evolution) --
        #: relation key -> extra names scored alongside the real name
        self._relation_aliases: dict[str, tuple[str, ...]] = {}
        #: (relation key, attribute key) -> extra attribute names
        self._attribute_aliases: dict[tuple[str, str], tuple[str, ...]] = {}
        self._network_memo_cap = 256
        # -- translation result cache (canonical SF-SQL fingerprint) ---
        #: finished-translation LRU; disabled when the config's
        #: ``result_cache_size`` is 0.  See :meth:`cached_result`.
        self._result_cache = ResultCache(
            config.result_cache_size, config.result_cache_bytes
        )

    def _build_schema_state(self) -> ContextSchemaState:
        """Derive the buildable half from the live catalog (the path a
        :mod:`repro.artifacts` file short-circuits)."""
        catalog = self.database.catalog
        relations: tuple[Relation, ...] = tuple(catalog)
        neighbors = {
            relation.key: tuple(catalog.neighbors(relation.name))
            for relation in relations
        }
        # (source key, target key, fk, fk.key) per FK-PK pair, with all
        # normalization pre-applied for the extended view graph
        fk_edges = tuple(
            (
                normalize(fk.source_relation),
                normalize(fk.target_relation),
                fk,
                fk.key,
            )
            for fk in catalog.foreign_keys
        )
        # -- all-pairs FK join paths on the schema skeleton (§5.1) -----
        # Strongest-path weights (c ** hops), predecessor maps, and
        # connected components over the undirected FK skeleton, built
        # once per database.  Plain dicts of strings/floats/ints so the
        # table rides the serialized context artifact unchanged.
        # Every extended-view-graph edge weight is >= c and lifts a
        # skeleton edge, so skeleton unreachability is a sound negative
        # oracle for Algorithm 3 whenever the extended graph contains no
        # synthesised (non-FK) view edges.
        paths, parents, components = self._build_schema_paths(
            relations, fk_edges, self.config.c
        )
        return ContextSchemaState(
            relations=relations,
            neighbors=neighbors,
            fk_edges=fk_edges,
            name_index=NameIndex(catalog, self.config.qgram),
            schema_paths=paths,
            schema_parents=parents,
            schema_components=components,
            #: hex digest of everything the pipeline reads from the
            #: catalog; part of every result-cache key (docs/CACHING.md)
            #: and of the artifact key (docs/ARTIFACTS.md)
            schema_fingerprint=schema_fingerprint(catalog),
        )

    def _apply_schema_state(self, state: ContextSchemaState) -> None:
        # -- schema-derived (immutable for the database's lifetime) ----
        self.relations = state.relations
        self._neighbors = state.neighbors
        self.fk_edges = state.fk_edges
        self.name_index = state.name_index
        self.schema_paths = state.schema_paths
        self.schema_parents = state.schema_parents
        self.schema_components = state.schema_components
        self.schema_fingerprint = state.schema_fingerprint

    def _init_data_state(
        self,
        memos: ContextMemoState,
        sample_source: Optional[SampleSource] = None,
    ) -> None:
        # -- data-derived (invalidated on Database mutation) -----------
        self._samples = dict(memos.samples)
        self._sample_source = sample_source
        self._tree_sim_memo = dict(memos.tree_sims)
        self._condition_memo = dict(memos.conditions)
        # -- generated-network memo (terminal-relation signature) ------
        #: signature -> (ExtendedViewGraph, tuple[JoinNetwork, ...]),
        #: LRU-bounded; see :meth:`cached_networks`
        self._network_memo = dict(memos.networks)

    def seed_memos(self, memos: ContextMemoState) -> None:
        """Merge a persisted memo snapshot into the live tables.

        Split from :meth:`from_artifact` because decoding the memo
        section needs the live context to exist first — memoized
        extended view graphs reference it — so the loader constructs
        the context from the schema state, then seeds.  Existing
        entries win: they were computed against this very epoch.
        """
        with self._lock:
            for key, sample in memos.samples.items():
                self._samples.setdefault(key, sample)
            for key, value in memos.tree_sims.items():
                self._tree_sim_memo.setdefault(key, value)
            for key, status in memos.conditions.items():
                self._condition_memo.setdefault(key, status)
            for key, entry in memos.networks.items():
                if len(self._network_memo) >= self._network_memo_cap:
                    break
                self._network_memo.setdefault(key, entry)

    def export_state(self) -> tuple[ContextSchemaState, ContextMemoState]:
        """A consistent snapshot of both halves for artifact writing.

        Lazily-sourced samples are materialised first so the exported
        memo state stands alone; the memo dicts are shallow-copied under
        the lock, so a concurrent translator can keep serving while the
        artifact builder pickles.
        """
        with self._lock:
            source = self._sample_source
            pending = (
                [k for k in source.keys() if k not in self._samples]
                if source is not None
                else []
            )
        for key in pending:
            self.column_sample(*key)
        schema_state = ContextSchemaState(
            relations=self.relations,
            neighbors=self._neighbors,
            fk_edges=self.fk_edges,
            name_index=self.name_index,
            schema_paths=self.schema_paths,
            schema_parents=self.schema_parents,
            schema_components=self.schema_components,
            schema_fingerprint=self.schema_fingerprint,
        )
        with self._lock:
            memos = ContextMemoState(
                samples=dict(self._samples),
                tree_sims=dict(self._tree_sim_memo),
                conditions=dict(self._condition_memo),
                networks=dict(self._network_memo),
            )
        return schema_state, memos

    @staticmethod
    def _build_schema_paths(
        relations: tuple[Relation, ...],
        fk_edges: tuple[tuple[str, str, ForeignKey, tuple], ...],
        c: float,
    ) -> tuple[
        dict[str, dict[str, float]],
        dict[str, dict[str, str]],
        dict[str, int],
    ]:
        """All-pairs BFS over the FK skeleton: ``paths[a][b]`` is the
        strongest-path weight ``c ** hops`` between relations *a* and
        *b*, ``parents[a][b]`` the predecessor of *b* on that path, and
        ``components[a]`` the connected-component id of *a*."""
        adjacency: dict[str, list[str]] = {r.key: [] for r in relations}
        seen_pairs: set[tuple[str, str]] = set()
        for source_key, target_key, _fk, _fk_key in fk_edges:
            if source_key == target_key:
                continue
            for a, b in ((source_key, target_key), (target_key, source_key)):
                if (a, b) not in seen_pairs:
                    seen_pairs.add((a, b))
                    adjacency.setdefault(a, []).append(b)
        paths: dict[str, dict[str, float]] = {}
        parents: dict[str, dict[str, str]] = {}
        components: dict[str, int] = {}
        component = 0
        for relation in relations:
            start = relation.key
            hops = {start: 0}
            parent: dict[str, str] = {}
            frontier = [start]
            while frontier:
                next_frontier: list[str] = []
                for key in frontier:
                    for neighbor in adjacency.get(key, ()):
                        if neighbor not in hops:
                            hops[neighbor] = hops[key] + 1
                            parent[neighbor] = key
                            next_frontier.append(neighbor)
                frontier = next_frontier
            paths[start] = {key: c**count for key, count in hops.items()}
            parents[start] = parent
            if start not in components:
                for key in hops:
                    components[key] = component
                component += 1
        return paths, parents, components

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def ensure_current(self) -> None:
        """Drop data-derived caches if the database has been mutated.

        Schema-derived state (neighbors, name index, FK adjacency) never
        changes — the catalog is fixed for the backend's lifetime — but
        column samples, condition statuses, and tree similarities (whose
        condition factor reads the data) all go stale on insert.
        """
        with self._lock:
            if self.database.data_version == self._data_version:
                return
            self._samples.clear()
            # an attached artifact sample table belongs to the previous
            # data epoch — the rescache contract applied to the source
            self._sample_source = None
            self._tree_sim_memo.clear()
            self._condition_memo.clear()
            self._network_memo.clear()
            # finished translations bake in condition evidence, so they
            # go stale with the data too (docs/CACHING.md, trigger 1)
            self._result_cache.clear()
            self.stats.result_invalidations += 1
            self._data_version = self.database.data_version
            self.stats.invalidations += 1

    # ------------------------------------------------------------------
    # schema-derived lookups
    # ------------------------------------------------------------------
    def neighbors(self, relation_key: str) -> tuple[Relation, ...]:
        """FK-adjacent relations of *relation_key* (paper §4.2)."""
        return self._neighbors[normalize(relation_key)]

    def scoring_order(self, tree: RelationTree) -> list[Relation]:
        """All relations, ordered by lexical affinity with the tree's
        name evidence (root name, or attribute names when the root is
        unspecified).  Order affects only which candidates are scored
        first under a tight budget, never the resulting mapping set."""
        names = []
        if tree.known_name:
            names.append(tree.known_name)
        else:
            names.extend(
                attribute.known_name
                for attribute in tree.attribute_trees
                if attribute.known_name
            )
        if not names:
            return list(self.relations)
        return self.name_index.order(names, self.relations)

    # ------------------------------------------------------------------
    # vocabulary aliases (schema evolution)
    # ------------------------------------------------------------------
    def add_relation_alias(self, relation_name: str, alias: str) -> None:
        """Register *alias* as an extra name for a relation.

        The similarity evaluator scores a query name against the best of
        the relation's real name and its aliases, so a relation renamed
        out from under a workload (``movie`` -> ``film``) can be
        recovered by mining the old name from the query log
        (``repro.testing.evolution.recover_vocabulary``).  The alias also
        feeds the :class:`NameIndex`, keeping the aliased relation early
        in :meth:`scoring_order` under tight budgets.
        """
        key = normalize(relation_name)
        if not any(r.key == key for r in self.relations):
            raise SchemaError(f"unknown relation {relation_name!r}")
        clean = alias.strip()
        if not clean or normalize(clean) == key:
            return
        with self._lock:
            current = self._relation_aliases.get(key, ())
            if normalize(clean) in {normalize(a) for a in current}:
                return
            self._relation_aliases[key] = current + (clean,)
            # aliases change name similarity, which the tree-sim memo bakes
            # in — and through it the mappings baked into memoized networks
            # and the finished translations of the result cache
            self._tree_sim_memo.clear()
            self._network_memo.clear()
            self._result_cache.clear()
            self.stats.result_invalidations += 1
        self.name_index.add_names(key, [clean])

    def add_attribute_alias(
        self, relation_name: str, attribute_name: str, alias: str
    ) -> None:
        """Register *alias* as an extra name for one attribute."""
        rkey = normalize(relation_name)
        relation = next((r for r in self.relations if r.key == rkey), None)
        if relation is None:
            raise SchemaError(f"unknown relation {relation_name!r}")
        akey = normalize(attribute_name)
        if not any(a.key == akey for a in relation.attributes):
            raise SchemaError(
                f"unknown attribute {attribute_name!r} "
                f"of relation {relation_name!r}"
            )
        clean = alias.strip()
        if not clean or normalize(clean) == akey:
            return
        with self._lock:
            current = self._attribute_aliases.get((rkey, akey), ())
            if normalize(clean) in {normalize(a) for a in current}:
                return
            self._attribute_aliases[(rkey, akey)] = current + (clean,)
            self._tree_sim_memo.clear()
            self._network_memo.clear()
            self._result_cache.clear()
            self.stats.result_invalidations += 1
        self.name_index.add_names(rkey, [clean])

    def relation_aliases(self, relation_key: str) -> tuple[str, ...]:
        with self._lock:
            return self._relation_aliases.get(normalize(relation_key), ())

    def attribute_aliases(
        self, relation_key: str, attribute_key: str
    ) -> tuple[str, ...]:
        with self._lock:
            return self._attribute_aliases.get(
                (normalize(relation_key), normalize(attribute_key)), ()
            )

    # ------------------------------------------------------------------
    # data-derived caches
    # ------------------------------------------------------------------
    def column_sample(self, relation: str, attribute: str) -> list[Any]:
        """Deterministic distinct-value sample of one column, built once
        and shared by every condition check until the data changes."""
        key = (normalize(relation), normalize(attribute))
        with self._lock:
            cached = self._samples.get(key)
            if cached is not None:
                self.stats.sample_hits += 1
                return cached
            if self._sample_source is not None:
                loaded = self._sample_source.get(key)
                if loaded is not None:
                    # decoded from an attached artifact: identical bytes
                    # to what a fresh build would produce for this epoch
                    sample = list(loaded)
                    self._samples[key] = sample
                    self.stats.sample_loads += 1
                    return sample
            # build under the lock: serialises the (cheap, deterministic)
            # sample construction so concurrent workers never build the
            # same column twice and the build counter stays exact
            values = self.database.column_values(relation, attribute)
            distinct = list(dict.fromkeys(v for v in values if v is not None))
            sample = stride_sample(distinct, self.config.condition_sample)
            self._samples[key] = sample
            self.stats.sample_builds += 1
            return sample

    def condition_status(self, key: tuple) -> Optional[str]:
        with self._lock:
            cached = self._condition_memo.get(key)
            if cached is not None:
                self.stats.condition_hits += 1
            else:
                self.stats.condition_misses += 1
            return cached

    def remember_condition(self, key: tuple, status: str) -> None:
        with self._lock:
            self._condition_memo[key] = status

    def cached_tree_similarity(
        self, key: tuple[TreeFingerprint, str], count: bool = True
    ) -> Optional[tuple[float, dict]]:
        """Memoized ``(score, attribute_map)`` for one (tree fingerprint,
        relation) pair, or None.

        ``count`` is the hit/miss accounting switch: the
        :class:`~repro.core.similarity.SimilarityEvaluator` — the single
        choke point for these counters — passes False when it replays a
        key it already probed within the current translation (the
        degradation ladder re-mapping after an abandoned rung, a
        sub-query block repeating an outer tree), so each unique pair
        counts exactly once per query and a cold-context query can never
        report hits against itself.
        """
        with self._lock:
            cached = self._tree_sim_memo.get(key)
            if count:
                if cached is not None:
                    self.stats.tree_sim_hits += 1
                else:
                    self.stats.tree_sim_misses += 1
            return cached

    def remember_tree_similarity(
        self, key: tuple[TreeFingerprint, str], value: tuple[float, dict]
    ) -> None:
        with self._lock:
            self._tree_sim_memo[key] = value

    def cached_networks(self, key: tuple) -> Optional[tuple]:
        """Memoized ``(extended graph, networks)`` for one terminal-
        relation signature (:func:`repro.core.mtjn.network_signature`),
        or None.

        The signature captures everything network generation reads —
        tree shapes and name evidence, the ordered candidate relations
        of every mapping, the view set, k, and the expansion cap — so
        two queries that differ only in conditions or selected
        attributes share one generated network set.  Entries are
        LRU-evicted past a fixed cap and dropped wholesale on
        ``data_version`` bumps and vocabulary-alias registration.
        """
        with self._lock:
            entry = self._network_memo.get(key)
            if entry is not None:
                self.stats.network_hits += 1
                # dict preserves insertion order: re-append = LRU touch
                del self._network_memo[key]
                self._network_memo[key] = entry
            else:
                self.stats.network_misses += 1
            return entry

    def remember_networks(self, key: tuple, value: tuple) -> None:
        with self._lock:
            self._network_memo[key] = value
            while len(self._network_memo) > self._network_memo_cap:
                oldest = next(iter(self._network_memo))
                del self._network_memo[oldest]

    # ------------------------------------------------------------------
    # translation result cache
    # ------------------------------------------------------------------
    def result_cache_key(self, key: tuple) -> tuple:
        """The translator's partial key completed to the full tuple of
        the consistency contract: (canonical SF-SQL fingerprint, top_k,
        view set, schema fingerprint, data_version).

        The translator calls this once per query (right after
        :meth:`ensure_current`), so lookup and store happen under the
        same data epoch: a ``data_version`` bump racing a translation
        strands the in-flight entry under the old version instead of
        publishing a stale result under the new one.
        """
        with self._lock:
            return key + (self.schema_fingerprint, self._data_version)

    def cached_result(self, key: tuple) -> Optional[tuple]:
        """Finished-translation payload for one canonical key, or None.

        The payload is the immutable tuple stored by
        :meth:`remember_result` — the translator materialises fresh
        :class:`~repro.core.translator.Translation` objects from it on
        every hit (their ``stats`` field is per-call).  Lookup is an
        LRU touch; hits and misses land in :class:`ContextStats`, so
        ``--stats``, ``TranslationStats.memo`` deltas and the service
        snapshot all report cache effectiveness for free.
        """
        with self._lock:
            payload = self._result_cache.lookup(key)
            if payload is not None:
                self.stats.result_hits += 1
            else:
                self.stats.result_misses += 1
            return payload

    def remember_result(self, key: tuple, payload: tuple, cost: int) -> None:
        """Admit one finished translation set (admission checks — full
        rung, no degradation, no faults — are the translator's job;
        bounding and eviction accounting happen here)."""
        with self._lock:
            self.stats.result_evictions += self._result_cache.store(
                key, payload, cost
            )

    def result_cache_entries(self) -> int:
        """Current entry count (introspection/tests)."""
        with self._lock:
            return len(self._result_cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TranslationContext({self.database.catalog.name!r}, "
            f"{len(self.relations)} relations, "
            f"{len(self._tree_sim_memo)} memoized tree-sims)"
        )
