"""Translation result cache: canonical SF-SQL in, full SQL out.

The translation pipeline is deterministic given the schema, the data
statistics, and the translator's view set — so a repeated SF-SQL query
(the dominant pattern for a service: production NLIDB traffic is
heavily repetitive) can skip mapper and MTJN search entirely and be
answered from a cache of finished translations.  This module supplies
the two halves of that cache; the *storage* lives on
:class:`~repro.core.context.TranslationContext` (one cache per
database, shared by every translator, service worker thread, and
server worker that shares the context), and the *policy* is documented
as a first-class consistency contract in ``docs/CACHING.md``.

**Canonicalization.**  :func:`canonical_fingerprint` maps a query to
the digest of its canonical rendering, so trivially-rewritten queries
share one cache entry.  The canonical form normalizes exactly the
rewrites that are *output-invariant* — fingerprint equality must imply
byte-identical translation, or a hit could serve bytes a fresh run
would not produce:

* whitespace, keyword case, redundant parentheses and trailing
  semicolons (free: ``parse`` then ``render`` is already canonical);
* the case of ``GUESS`` name terms (``Movie? = movie?``): similarity
  scoring lower-cases every name before q-gram comparison, and the
  composer replaces every guess with the exact catalog spelling on the
  full rung, so guess case can affect neither scores nor output bytes.

Never normalized, deliberately: ``EXACT`` identifiers and user aliases
(the composer preserves them verbatim in the output FROM/qualifier
positions), ``VAR``/``ANON`` variable names (they can surface as
binding names), and literals (they are copied into the output).

**Bounding.**  :class:`ResultCache` is a size- and memory-bounded LRU
in the style of the context's network memo: entries are touched by
dict-reorder on hit and the oldest entries are evicted once either the
entry cap or the byte budget is exceeded.  An entry whose own cost
exceeds the whole byte budget is refused outright (budget-severed
storage: one pathological query must not wipe the cache).

Admission control, invalidation, and the exact key tuple are enforced
by the callers (translator + context) and specified in
``docs/CACHING.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Optional, Union

from ..sqlkit import ast, parse, render

#: conservative per-entry bookkeeping overhead (key tuple, dict slot,
#: Translation payload tuple) charged on top of the rendered-SQL bytes
ENTRY_OVERHEAD = 256


# ---------------------------------------------------------------------------
# canonicalization
# ---------------------------------------------------------------------------


def _fold_term(term: ast.NameTerm) -> ast.NameTerm:
    """Lower-case a GUESS term; leave every other certainty verbatim."""
    if term.certainty is ast.Certainty.GUESS:
        lowered = term.text.lower()
        if lowered != term.text:
            return ast.NameTerm(lowered, term.certainty)
    return term


def canonicalize(node: ast.Node) -> ast.Node:
    """The query rebuilt with every GUESS name term case-folded.

    :func:`ast.transform` does not descend into :class:`ast.NameTerm`
    fields (terms are not nodes), so this walks the dataclass fields
    directly, rebuilding bottom-up like ``transform`` does.
    """
    replacements: dict[str, Any] = {}
    for field in dataclasses.fields(node):  # type: ignore[arg-type]
        value = getattr(node, field.name)
        new_value = _canonical_value(value)
        if new_value is not value:
            replacements[field.name] = new_value
    if replacements:
        node = dataclasses.replace(node, **replacements)  # type: ignore[type-var]
    return node


def _canonical_value(value: Any) -> Any:
    if isinstance(value, ast.NameTerm):
        return _fold_term(value)
    if isinstance(value, ast.Node):
        return canonicalize(value)
    if isinstance(value, tuple):
        items = tuple(_canonical_value(item) for item in value)
        if any(a is not b for a, b in zip(items, value)):
            return items
        return value
    return value


def canonical_text(query: Union[str, ast.Node]) -> str:
    """The canonical rendering of *query* (parse → fold → render)."""
    if isinstance(query, str):
        query = parse(query)
    return render(canonicalize(query))


def canonical_fingerprint(query: Union[str, ast.Node]) -> str:
    """Hex digest of the query's canonical rendering.

    Two queries share a fingerprint iff they are equal after the
    output-invariant normalizations documented in the module docstring
    — whitespace, keyword case, formatting, and GUESS-term case.
    """
    return hashlib.sha256(canonical_text(query).encode("utf-8")).hexdigest()


#: raw query text -> canonical fingerprint.  The fingerprint is a pure
#: function of the text, so this process-global memo (the same idiom as
#: similarity's string caches) is always sound; it exists because the
#: cache-hit path would otherwise spend most of its time re-rendering
#: the canonical form of a query string it has seen before.  Flushed
#: wholesale at the cap — repetitive serving traffic re-fills it in one
#: pass, and the GIL makes the individual dict operations safe.
_FINGERPRINT_MEMO: dict[str, str] = {}
_FINGERPRINT_MEMO_CAP = 4096


def fingerprint_parsed(parsed: ast.Node, raw: Optional[str] = None) -> str:
    """:func:`canonical_fingerprint` of an already-parsed query, served
    from the text memo when the caller still has the raw string."""
    if raw is not None:
        memoized = _FINGERPRINT_MEMO.get(raw)
        if memoized is not None:
            return memoized
    fingerprint = hashlib.sha256(
        render(canonicalize(parsed)).encode("utf-8")
    ).hexdigest()
    if raw is not None:
        if len(_FINGERPRINT_MEMO) >= _FINGERPRINT_MEMO_CAP:
            _FINGERPRINT_MEMO.clear()
        _FINGERPRINT_MEMO[raw] = fingerprint
    return fingerprint


def clear_fingerprint_memo() -> None:
    """Drop the text->fingerprint memo (benchmarks simulating cold
    processes)."""
    _FINGERPRINT_MEMO.clear()


def schema_fingerprint(catalog) -> str:
    """Hex digest of everything the pipeline reads from the catalog.

    Covers relation and attribute names/types, primary keys, and the
    foreign-key edge list in declaration order.  Part of the result
    cache's key tuple so an entry can never outlive the schema it was
    translated against (the catalog is fixed per backend lifetime, but
    the fingerprint also rides saved artifacts and cache stats, where
    that guarantee does not hold).
    """
    parts: list[str] = [catalog.name]
    for relation in sorted(catalog, key=lambda r: r.key):
        parts.append(f"R {relation.key}")
        parts.append("K " + ",".join(relation.primary_key))
        for attribute in relation.attributes:
            parts.append(f"A {attribute.key} {attribute.data_type}")
    for fk in catalog.foreign_keys:
        parts.append(
            f"F {fk.source_relation}.{fk.source_attribute}->"
            f"{fk.target_relation}.{fk.target_attribute}"
        )
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# bounded storage
# ---------------------------------------------------------------------------


class ResultCache:
    """Size- and memory-bounded LRU over finished translation payloads.

    Not thread-safe by itself: :class:`~repro.core.context.
    TranslationContext` wraps every call in its cache lock (the same
    lock that serialises the similarity and network memos) and owns the
    hit/miss/eviction counters.  Payloads are immutable tuples of
    ``(query AST, weight, network, rung)`` — never live
    :class:`~repro.core.translator.Translation` objects, whose ``stats``
    field is reassigned per call.
    """

    def __init__(self, max_entries: int, max_bytes: int) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: dict[tuple, tuple[tuple, int]] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def cost_bytes(self) -> int:
        """Approximate bytes held (rendered SQL + per-entry overhead)."""
        return self._bytes

    def lookup(self, key: tuple) -> Optional[tuple]:
        """The payload stored under *key* (LRU-touched), or None."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        # dict preserves insertion order: re-append = LRU touch
        del self._entries[key]
        self._entries[key] = entry
        return entry[0]

    def store(self, key: tuple, payload: tuple, cost: int) -> int:
        """Admit *payload* under *key*; returns the entries evicted.

        ``cost`` is the caller's byte estimate (rendered SQL lengths);
        the fixed :data:`ENTRY_OVERHEAD` is added on top.  A payload
        whose own cost exceeds the whole byte budget is refused — the
        cache never evicts everything to admit one giant entry.
        """
        if self.max_entries <= 0:
            return 0
        cost = cost + ENTRY_OVERHEAD
        if cost > self.max_bytes:
            return 0
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (payload, cost)
        self._bytes += cost
        evicted = 0
        while (
            len(self._entries) > self.max_entries
            or self._bytes > self.max_bytes
        ):
            oldest = next(iter(self._entries))
            _, oldest_cost = self._entries.pop(oldest)
            self._bytes -= oldest_cost
            evicted += 1
        return evicted

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._bytes = 0
        return dropped
