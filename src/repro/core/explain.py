"""Human-readable explanations of translations.

The paper's architecture "also supports returning top k translations
directly to the user before evaluating the best one" (§2.2).  For that to
be useful the user must see *why* an interpretation was chosen; this
module renders a translation's join network — which relation each
relation tree mapped onto, which FK-PK edges connect them and at what
weight, and which views contributed.
"""

from __future__ import annotations

from typing import Optional

from .join_network import JoinNetwork
from .translator import Translation


def describe_network(network: JoinNetwork) -> str:
    """Multi-line description of one MTJN."""
    lines = ["join network:"]
    for node in sorted(network.nodes.values(), key=lambda n: n.node_id):
        tag = ""
        if node.tree_key is not None:
            kind, text = node.tree_key
            tag = f"  <- relation tree {kind}:{text}"
        lines.append(f"  node {node.relation}{tag}")
    for edge in network.all_edges:
        lines.append(
            f"  edge {edge.left.relation}.{edge.left_attribute} = "
            f"{edge.right.relation}.{edge.right_attribute} "
            f"(w={edge.weight:.3f})"
        )
    for instance in network.views:
        chain = " - ".join(node.relation for node in instance.nodes)
        lines.append(
            f"  via view {instance.view.name} [{instance.view.source}]: "
            f"{chain} (w={instance.weight:.3f})"
        )
    lines.append(f"  construction weight: {network.construction_weight:.4f}")
    return "\n".join(lines)


def describe_translation(translation: Translation) -> str:
    """Full explanation: the SQL, its weight, its join network, and any
    degradation steps the resilience ladder took to produce it."""
    lines = [f"sql: {translation.sql}", f"weight: {translation.weight:.4f}"]
    if translation.network is not None:
        lines.append(describe_network(translation.network))
    else:
        lines.append("join network: (none — constant or set-operation query)")
    if translation.degradation:
        lines.append("degraded translation:")
        for step in translation.degradation:
            lines.append(f"  - {step}")
    if translation.stats is not None:
        lines.append(translation.stats.render())
    return "\n".join(lines)
