"""``repro.obs`` — zero-dependency observability for the pipeline.

Three pieces (DESIGN.md §11, reference in docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — structured spans with an injectable clock,
  a no-op :data:`NULL_TRACER` for the disabled path, and bounded
  (ring-buffer) plus JSONL exporters;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms with Prometheus text exposition and a JSON snapshot;
* :mod:`repro.obs.render` — the annotated span-tree renderer behind
  the ``repro explain`` subcommand.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_translation,
    validate_metric_name,
)
from .render import render_trace
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlExporter,
    NullSpan,
    NullTracer,
    RingBufferExporter,
    Span,
    SpanExporter,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "RingBufferExporter",
    "Span",
    "SpanExporter",
    "Tracer",
    "record_translation",
    "render_trace",
    "validate_metric_name",
]
