"""Zero-dependency metrics registry with Prometheus-style exposition.

Three instrument kinds, all thread-safe under one registry lock:

* :class:`Counter` — monotonically increasing totals (requests served,
  cache hits, breaker trips);
* :class:`Gauge` — last-write-wins point values (in-flight requests,
  breaker state);
* :class:`Histogram` — fixed-bucket cumulative distributions
  (per-stage translation latency, queue wait).  Buckets are fixed at
  registration so exposition never reshapes under load.

Metric names follow the scheme ``repro_<area>_<name>_<unit>`` (enforced
by :func:`validate_metric_name`; DESIGN.md §11): the area is the
subsystem (``translate``, ``context``, ``service``, ``breaker``), the
unit suffix is ``_total`` for counters, a unit like ``_seconds`` for
histograms, and a bare noun for gauges.  Labels are plain keyword
arguments; each distinct label combination is its own time series.

Two export surfaces:

* :meth:`MetricsRegistry.render_text` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / samples, histograms as cumulative
  ``_bucket{le=...}`` plus ``_sum``/``_count``), parseable by any
  Prometheus scraper and checked for well-formedness in
  ``tests/test_obs.py``;
* :meth:`MetricsRegistry.snapshot` — a JSON-able dict (the CI artifact
  ``METRICS_textbook.json``).

The full metric catalog the library emits lives in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Mapping, Optional, Sequence

#: ``repro_<area>_<name>[_<unit>]`` — lower-snake, repro-prefixed
_NAME_RE = re.compile(r"^repro(_[a-z][a-z0-9]*)+$")

#: default latency buckets (seconds): micro-benchmark to interactive
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

LabelKey = tuple[tuple[str, str], ...]


def validate_metric_name(name: str) -> str:
    """Enforce the ``repro_<area>_<name>_<unit>`` naming scheme."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} does not match the "
            "repro_<area>_<name>_<unit> naming scheme"
        )
    return name


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Instrument:
    """Base: name, help text, and the registry-shared lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = validate_metric_name(name)
        self.help = help_text
        self._lock = lock

    def _samples(self) -> list[str]:  # pragma: no cover - interface
        raise NotImplementedError

    def _snapshot(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        super().__init__(name, help_text, lock)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _samples(self) -> list[str]:
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in sorted(self._values.items())
        ]

    def _snapshot(self) -> Any:
        return {
            ",".join(f"{k}={v}" for k, v in key) or "": value
            for key, value in sorted(self._values.items())
        }


class Gauge(_Instrument):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        super().__init__(name, help_text, lock)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    _samples = Counter._samples
    _snapshot = Counter._snapshot


class Histogram(_Instrument):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds, strictly increasing; an implicit
    ``+Inf`` bucket always exists.  Per label set it tracks cumulative
    bucket counts, the running sum, and the observation count.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        #: label key -> (per-bucket counts + +Inf slot, sum, count)
        self._series: dict[LabelKey, list] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._series[key] = series
            series[0][index] += 1
            series[1] += value
            series[2] += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0 if series is None else series[2]

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0.0 if series is None else series[1]

    def _samples(self) -> list[str]:
        lines: list[str] = []
        for key, (counts, total, count) in sorted(self._series.items()):
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = _render_labels(key, f'le="{_format_value(bound)}"')
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} {_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def _snapshot(self) -> Any:
        out = {}
        for key, (counts, total, count) in sorted(self._series.items()):
            label = ",".join(f"{k}={v}" for k, v in key) or ""
            out[label] = {
                "buckets": {
                    _format_value(bound): c
                    for bound, c in zip(self.buckets, counts)
                },
                "inf": counts[-1],
                "sum": round(total, 6),
                "count": count,
            }
        return out


class MetricsRegistry:
    """Owns every instrument and renders them for export.

    Registration is idempotent: asking for an existing name returns the
    existing instrument (so modules can register lazily without
    coordinating), but re-registering under a different kind or — for
    histograms — different buckets is a hard error: two writers that
    disagree about what a name means is a bug worth surfacing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if (
                    isinstance(existing, Histogram)
                    and "buckets" in kwargs
                    and tuple(float(b) for b in kwargs["buckets"])
                    != existing.buckets
                ):
                    raise ValueError(
                        f"histogram {name!r} already registered with "
                        "different buckets"
                    )
                return existing
            instrument = cls(name, help_text, self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus text exposition format, instruments name-sorted."""
        with self._lock:
            instruments = sorted(self._instruments.values(), key=lambda i: i.name)
        lines: list[str] = []
        for instrument in instruments:
            help_text = instrument.help.replace("\n", " ")
            lines.append(f"# HELP {instrument.name} {help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            lines.extend(instrument._samples())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, Any]:
        """JSON-able snapshot: name -> {kind, help, values}."""
        with self._lock:
            instruments = sorted(self._instruments.values(), key=lambda i: i.name)
        return {
            instrument.name: {
                "kind": instrument.kind,
                "help": instrument.help,
                "values": instrument._snapshot(),
            }
            for instrument in instruments
        }


# ---------------------------------------------------------------------------
# shared recording helpers (one choke point per producer)
# ---------------------------------------------------------------------------


def record_translation(
    registry: MetricsRegistry, stats, outcome: str = "ok", rung: str = "full"
) -> None:
    """Fold one :class:`~repro.core.context.TranslationStats` into the
    registry.  Both the CLI one-shot path and the query service call
    this, so the translation metric families have exactly one producer
    shape (docs/OBSERVABILITY.md lists them)."""
    registry.counter(
        "repro_translate_queries_total",
        "Translations attempted, by outcome and final ladder rung",
    ).inc(stats.queries if stats is not None else 1, outcome=outcome, rung=rung)
    if stats is None:
        return
    stage_seconds = registry.histogram(
        "repro_translate_stage_seconds",
        "Wall-clock seconds spent per translation pipeline stage",
    )
    for stage, seconds in stats.stages.items():
        stage_seconds.observe(seconds, stage=stage)
    registry.histogram(
        "repro_translate_total_seconds",
        "End-to-end wall-clock seconds per translate() call",
    ).observe(stats.total_seconds)
    registry.counter(
        "repro_translate_candidates_total",
        "Mapping candidates charged against translation budgets",
    ).inc(stats.candidates)
    registry.counter(
        "repro_translate_expansions_total",
        "Join-network expansions charged against translation budgets",
    ).inc(stats.expansions)
    lookups = registry.counter(
        "repro_context_tree_sim_lookups_total",
        "Whole-tree similarity memo lookups, by result "
        "(one count per unique (tree, relation) pair per query)",
    )
    hits = stats.memo.get("tree_sim_hits", 0)
    misses = stats.memo.get("tree_sim_misses", 0)
    if hits:
        lookups.inc(hits, result="hit")
    if misses:
        lookups.inc(misses, result="miss")
    conditions = registry.counter(
        "repro_context_condition_lookups_total",
        "Condition-satisfaction memo lookups, by result",
    )
    chits = stats.memo.get("condition_hits", 0)
    cmisses = stats.memo.get("condition_misses", 0)
    if chits:
        conditions.inc(chits, result="hit")
    if cmisses:
        conditions.inc(cmisses, result="miss")
    for metric, help_text, key in (
        (
            "repro_cache_hits_total",
            "Translation result cache hits (canonical-fingerprint key)",
            "result_hits",
        ),
        (
            "repro_cache_misses_total",
            "Translation result cache misses",
            "result_misses",
        ),
        (
            "repro_cache_evictions_total",
            "Result cache entries evicted by the LRU entry/byte bounds",
            "result_evictions",
        ),
        (
            "repro_cache_invalidations_total",
            "Result cache invalidation events (data_version bump, "
            "vocabulary alias registration, schema evolution)",
            "result_invalidations",
        ),
    ):
        delta = stats.memo.get(key, 0)
        if delta:
            registry.counter(metric, help_text).inc(delta)
    search = registry.counter(
        "repro_mtjn_search_total",
        "MTJN generator search events, by kind (frontier pushes, "
        "expansions, stale pops, dominance kills, leftovers, emissions, "
        "and whole-search network-memo hits)",
    )
    for kind, count in stats.generator.items():
        if count:
            search.inc(count, kind=kind)
