"""Render a span tree as an annotated text tree.

This is the presentation half of the ``repro explain`` subcommand: given
the finished spans of one trace (from a
:class:`~repro.obs.trace.RingBufferExporter` or re-loaded from a JSONL
trace file), reconstruct the parent/child tree and print it with
per-span durations, attributes, and events — the "why did this query
map this way" view: which rung produced the SQL, which relations each
relation tree considered and at what σ score, what the MTJN search
expanded, and (for service traces) when the request was admitted,
queued, retried, or pinned by the breaker.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

from .trace import Span

#: attributes rendered as their own indented block rather than inline
#: (lists of per-candidate / per-step records)
_BLOCK_ATTRIBUTES = ("candidates", "steps", "interpretations")

#: inline attributes pushed to the front, in this order
_LEADING_ATTRIBUTES = ("query", "tree", "rung", "outcome")


def _as_dict(span: Union[Span, dict]) -> dict[str, Any]:
    return span if isinstance(span, dict) else span.to_dict()


def _format_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "(unfinished)"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _format_scalar(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, str):
        return value if value and " " not in value else repr(value)
    return str(value)


def _inline_attributes(attributes: dict[str, Any]) -> str:
    parts = []
    for key in _LEADING_ATTRIBUTES:
        if key in attributes:
            parts.append(f"{key}={_format_scalar(attributes[key])}")
    for key in sorted(attributes):
        if key in _LEADING_ATTRIBUTES:
            continue
        if key in _BLOCK_ATTRIBUTES and isinstance(
            attributes[key], (list, tuple)
        ):
            continue  # rendered as its own block below
        parts.append(f"{key}={_format_scalar(attributes[key])}")
    return ("  " + "  ".join(parts)) if parts else ""


def _block_lines(attributes: dict[str, Any]) -> list[str]:
    lines: list[str] = []
    for key in _BLOCK_ATTRIBUTES:
        rows = attributes.get(key)
        if not rows or not isinstance(rows, (list, tuple)):
            continue
        for row in rows:
            if isinstance(row, dict):
                if "sigma" in row:
                    mark = " *" if row.get("kept") else ""
                    lines.append(
                        f"σ={row['sigma']:.4f}  {row.get('relation', '?')}{mark}"
                    )
                else:
                    body = "  ".join(
                        f"{k}={_format_scalar(v)}" for k, v in row.items()
                    )
                    lines.append(body)
            else:
                lines.append(f"- {row}")
    return lines


def _event_lines(span: dict[str, Any], origin: float) -> list[str]:
    lines = []
    for event in span.get("events", ()):
        offset = event["time"] - origin
        attrs = "  ".join(
            f"{k}={_format_scalar(v)}"
            for k, v in sorted(event.get("attributes", {}).items())
        )
        suffix = f"  {attrs}" if attrs else ""
        lines.append(f"@{offset * 1000:+.1f}ms {event['name']}{suffix}")
    return lines


def render_trace(
    spans: Iterable[Union[Span, dict]], trace_id: Optional[int] = None
) -> str:
    """One text tree for one trace.

    *spans* may contain several traces (a ring buffer, a whole JSONL
    file); *trace_id* selects one, defaulting to the trace of the last
    span seen.  Orphan spans (parent not in the buffer — e.g. evicted
    by the ring bound) are promoted to roots rather than dropped.
    """
    records = [_as_dict(span) for span in spans]
    if not records:
        return "(no spans recorded)"
    if trace_id is None:
        trace_id = records[-1]["trace_id"]
    records = [r for r in records if r["trace_id"] == trace_id]
    if not records:
        return f"(no spans for trace {trace_id})"
    by_id = {r["span_id"]: r for r in records}
    children: dict[Optional[int], list[dict]] = {}
    for record in records:
        parent = record["parent_id"]
        if parent is not None and parent not in by_id:
            parent = None  # orphan: promote to root
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r["start"], r["span_id"]))
    origin = min(r["start"] for r in records)

    lines: list[str] = []

    def walk(record: dict[str, Any], prefix: str, tail: bool, root: bool) -> None:
        connector = "" if root else ("└─ " if tail else "├─ ")
        status = "" if record.get("status", "ok") == "ok" else "  [ERROR]"
        lines.append(
            f"{prefix}{connector}{record['name']} "
            f"{_format_seconds(record.get('duration'))}"
            f"{_inline_attributes(record.get('attributes', {}))}{status}"
        )
        child_prefix = prefix if root else prefix + ("   " if tail else "│  ")
        kids = children.get(record["span_id"], [])
        detail = _block_lines(record.get("attributes", {}))
        detail += _event_lines(record, origin)
        bar = "│  " if kids else "   "
        for line in detail:
            lines.append(f"{child_prefix}{bar}  {line}")
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1, root=False)

    roots = children.get(None, [])
    for index, root_record in enumerate(roots):
        walk(root_record, "", tail=index == len(roots) - 1, root=True)
    return "\n".join(lines)
