"""Structured tracing for the translation pipeline.

A :class:`Tracer` produces :class:`Span` records — named, timed,
attributed intervals arranged in a tree: the translator opens one root
span per ``translate()`` call and nests a span per pipeline stage,
degradation-ladder rung, relation tree mapped, and MTJN search under
it; the query service opens a ``service.request`` span per admitted
request so admission, queue wait, retries and breaker decisions land on
the same trace as the translation they wrap (DESIGN.md §11).

Design points:

* **zero-dependency and no-op-cheap** — the default collaborator is
  :data:`NULL_TRACER`, whose ``span()`` returns one shared, stateless
  :class:`NullSpan`; an uninstrumented run pays one method call and an
  empty context manager per site (asserted < 5% on the warm path by
  ``benchmarks/bench_translate.py``).  Call sites that would build
  expensive attribute payloads (per-candidate σ lists) guard on
  ``span.enabled`` / ``tracer.enabled`` first.
* **injectable clock** — ``Tracer(clock=...)`` accepts any monotonic
  float clock; built on a :class:`~repro.testing.faults.FaultInjector`
  virtual clock, span durations are fully deterministic in tests.
* **explicit parenting across threads** — spans nest implicitly via a
  per-thread stack (``with tracer.span(...)``), and a span started on
  one thread (the service's submit side) can be adopted by another (the
  worker) with :meth:`Tracer.use_span`, which is how translator spans
  end up under their request span.
* **bounded export** — finished spans go to every attached exporter:
  :class:`RingBufferExporter` keeps the last N in memory (the
  ``explain`` subcommand reads it back), :class:`JsonlExporter` appends
  one JSON object per line (the CI trace artifact; schema checked by
  ``scripts/check_trace.py``).

Span and event names are a stable, documented surface — the full list
with every attribute lives in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Optional


class Span:
    """One named, timed interval in a trace tree.

    Spans are context managers: entering pushes them on the tracer's
    per-thread stack (so nested ``tracer.span()`` calls become
    children), exiting records the end time, pops the stack, and hands
    the finished span to the tracer's exporters.  Attributes are plain
    ``str -> json-able`` pairs; events are timestamped point-in-time
    markers with their own attributes.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "events",
        "status",
        "_tracer",
    )

    #: real spans record; :class:`NullSpan` advertises False so call
    #: sites can skip building expensive attribute payloads
    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start: float,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes: dict[str, Any] = {}
        self.events: list[dict[str, Any]] = []
        self.status = "ok"

    # ------------------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach attributes (last write wins); returns self."""
        self.attributes.update(attributes)
        return self

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def event(self, name: str, **attributes: Any) -> None:
        """Record a timestamped point-in-time event on this span."""
        self.events.append(
            {
                "time": self._tracer.clock(),
                "name": name,
                "attributes": attributes,
            }
        )

    def fail(self, error: BaseException) -> None:
        self.status = "error"
        self.attributes.setdefault("error", f"{type(error).__name__}: {error}")

    # ------------------------------------------------------------------
    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self) -> None:
        """End the span (idempotent) and export it.

        Used by owners that hold spans across threads (the service's
        request spans); ``with``-managed spans finish on exit.
        """
        if self.end is None:
            self.end = self._tracer.clock()
            self._tracer._export(self)

    def to_dict(self) -> dict[str, Any]:
        duration = self.duration
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "end": None if self.end is None else round(self.end, 6),
            "duration": None if duration is None else round(duration, 6),
            "status": self.status,
            "attributes": self.attributes,
            "events": [
                {
                    "time": round(event["time"], 6),
                    "name": event["name"],
                    "attributes": event["attributes"],
                }
                for event in self.events
            ],
        }

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.status == "ok":
            self.fail(exc)
        self._tracer._pop(self)
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id})"
        )


class NullSpan:
    """The do-nothing span: one shared instance, no state, no cost.

    Every mutator is a no-op and ``enabled`` is False, so instrumented
    code can run unchanged — and unmeasurably close to free — when
    tracing is off.
    """

    __slots__ = ()
    enabled = False
    name = ""
    attributes: dict[str, Any] = {}
    events: list = []
    duration = None

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def fail(self, error: BaseException) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()


class NullTracer:
    """The do-nothing tracer, the default everywhere.

    ``SchemaFreeTranslator`` and ``QueryService`` hold one of these
    unless a real :class:`Tracer` is injected, which is what makes
    instrumentation free when disabled.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attributes: Any) -> NullSpan:
        return NULL_SPAN

    def start_span(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> NullSpan:
        return NULL_SPAN

    @contextmanager
    def use_span(self, span):
        yield span

    def current(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Factory and per-thread context for :class:`Span` trees.

    ``clock`` must be a monotonic float clock (seconds); exporters
    receive each span exactly once, when it finishes.  All id
    allocation and exporter fan-out is lock-protected, so one tracer
    can serve every worker thread of a :class:`~repro.service.
    QueryService`; the span *stack* is per-thread, so concurrent
    requests never adopt each other's spans as parents.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        exporters: Iterable["SpanExporter"] = (),
    ) -> None:
        self.clock = clock
        self.exporters: list[SpanExporter] = list(exporters)
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def start_span(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> Span:
        """A new span, parented to *parent* (or the calling thread's
        current span).  The caller owns it: either use it as a context
        manager or call :meth:`Span.finish` explicitly."""
        if parent is None:
            parent = self.current()
        span_id = self._allocate_id()
        trace_id = parent.trace_id if parent is not None else span_id
        parent_id = parent.span_id if parent is not None else None
        span = Span(self, name, trace_id, span_id, parent_id, self.clock())
        if attributes:
            span.attributes.update(attributes)
        return span

    def span(self, name: str, **attributes: Any) -> Span:
        """Shorthand: a new span ready for ``with`` (parent = current)."""
        return self.start_span(name, **attributes)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def use_span(self, span: Span):
        """Adopt an existing, unfinished span as the calling thread's
        current span (cross-thread parenting).  Does not finish it."""
        self._push(span)
        try:
            yield span
        finally:
            self._pop(span)

    # internal: Span.__enter__/__exit__ plumbing
    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def _export(self, span: Span) -> None:
        with self._lock:
            for exporter in self.exporters:
                exporter.export(span)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


class SpanExporter:
    """Interface: receives each finished span exactly once."""

    def export(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class RingBufferExporter(SpanExporter):
    """Keeps the most recent ``capacity`` finished spans in memory.

    The bound is the whole point: a long-lived service can leave
    tracing on without the trace store growing with traffic.  The
    ``explain`` subcommand and tests read traces back with
    :meth:`spans` / :meth:`trace`.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self.dropped = 0

    def export(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                del self._spans[0]
                self.dropped += 1

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: int) -> list[Span]:
        """All buffered spans of one trace, in finish order."""
        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]

    def last_trace(self) -> list[Span]:
        """The spans of the most recently finished trace."""
        with self._lock:
            if not self._spans:
                return []
            trace_id = self._spans[-1].trace_id
            return [s for s in self._spans if s.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


class JsonlExporter(SpanExporter):
    """Appends each finished span as one JSON object per line.

    The file format is the contract checked by
    ``scripts/check_trace.py`` and documented in
    ``docs/OBSERVABILITY.md``; CI uploads one of these per run as
    ``TRACE_textbook.jsonl``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "w", encoding="utf-8")

    def export(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
