"""Shared experiment machinery: correctness judging and translation runs.

A translation is judged *correct* by result equivalence against the gold
query's answer on the reference database: equal row multisets (equal
lists when the query orders its output).  Running the same world through
two different schemas lets the §7.3 experiment judge translations on the
alternative 21-relation schema against gold answers computed on the
53-relation schema.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core import SchemaFreeTranslator, TranslationError, TranslatorConfig
from ..engine import Database, EngineError
from ..sqlkit import SqlSyntaxError
from ..workloads import WorkloadQuery


def gold_rows(db: Database, query: WorkloadQuery):
    """The gold answer, as a comparable (ordered or sorted) row list."""
    result = db.execute(query.gold_sql)
    if "ORDER BY" in query.gold_sql.upper():
        return list(result.rows)
    return sorted(result.rows)


def rows_match(db: Database, translation, gold, ordered: bool) -> bool:
    try:
        result = db.execute(translation.query)
    except (EngineError, SqlSyntaxError):
        return False
    rows = list(result.rows) if ordered else sorted(result.rows)
    return rows == gold


@dataclass
class QueryOutcome:
    qid: str
    bucket: str
    top1: bool
    topk: bool
    seconds: float
    error: Optional[str] = None


@dataclass
class EffectivenessReport:
    """Per-bucket top-1 / top-k correctness (one Figure 15 column pair)."""

    outcomes: list[QueryOutcome] = field(default_factory=list)

    def per_bucket(self) -> dict[str, tuple[int, int, int]]:
        """bucket -> (top1 correct, topk correct, total)."""
        table: dict[str, list[int]] = {}
        for outcome in self.outcomes:
            row = table.setdefault(outcome.bucket, [0, 0, 0])
            row[0] += outcome.top1
            row[1] += outcome.topk
            row[2] += 1
        return {k: tuple(v) for k, v in table.items()}

    @property
    def total(self) -> tuple[int, int, int]:
        top1 = sum(o.top1 for o in self.outcomes)
        topk = sum(o.topk for o in self.outcomes)
        return top1, topk, len(self.outcomes)


def run_effectiveness(
    translation_db: Database,
    reference_db: Database,
    queries: Sequence[WorkloadQuery],
    use_views: bool = False,
    top_k: int = 10,
    config: Optional[TranslatorConfig] = None,
) -> EffectivenessReport:
    """The §7.3 protocol.

    Queries are processed in increasing join-size order.  With
    ``use_views`` on, each correctly-translated query is transformed into
    a view for the queries after it ("the construction of complex queries
    can benefit from the previous simple queries", §7.3); without it the
    translator sees the bare schema graph.

    ``translation_db`` is the database being queried (53-relation or the
    21-relation redesign); ``reference_db`` supplies gold answers (always
    the 53-relation schema, which the gold SQL is written against).
    """
    translator = SchemaFreeTranslator(
        translation_db, config or TranslatorConfig()
    )
    report = EffectivenessReport()
    ordered_queries = sorted(queries, key=lambda q: q.relation_count)
    for query in ordered_queries:
        gold = gold_rows(reference_db, query)
        ordered = "ORDER BY" in query.gold_sql.upper()
        started = time.perf_counter()
        error = None
        top1 = topk = False
        correct_translation = None
        try:
            translations = translator.translate(query.sf_sql, top_k=top_k)
            for index, translation in enumerate(translations):
                if rows_match(translation_db, translation, gold, ordered):
                    topk = True
                    correct_translation = translation
                    if index == 0:
                        top1 = True
                    break
        except (TranslationError, SqlSyntaxError, EngineError) as exc:
            error = f"{type(exc).__name__}: {exc}"
        elapsed = time.perf_counter() - started
        report.outcomes.append(
            QueryOutcome(query.qid, query.bucket(), top1, topk, elapsed, error)
        )
        if use_views and correct_translation is not None:
            translator.record_query_log(correct_translation.query)
    return report


def format_fig15_row(
    label: str, report: EffectivenessReport
) -> str:  # pragma: no cover - formatting
    parts = [label]
    buckets = report.per_bucket()
    for bucket in ("2-4", "5", "6-10"):
        top1, topk, total = buckets.get(bucket, (0, 0, 0))
        parts.append(f"{bucket}: {top1}/{total} (top10 {topk}/{total})")
    return "  ".join(parts)
