"""User-burden experiments: Figures 13, 14 and 16.

* Figure 13 — information-unit cost of the 17 textbook queries in SF-SQL
  vs a GUI builder vs full SQL, plus the §7.2 claim that all 17 translate
  correctly at top-1 without views.
* Figure 14 — the six sophisticated movie queries: per-query average
  SF-SQL cost over the five simulated users, GUI and SQL costs, and the
  all-users-correct-at-top-1 claim.
* Figure 16 — the same cost comparison over the 48 course queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core import SchemaFreeTranslator, TranslationError, TranslatorConfig
from ..core.cost import full_sql_cost, gui_cost, sfsql_cost
from ..engine import Database, EngineError
from ..sqlkit import SqlSyntaxError
from ..workloads import WorkloadQuery
from .common import gold_rows, rows_match


@dataclass
class CostRow:
    qid: str
    sf: float
    gui: int
    sql: int
    correct_top1: Optional[bool] = None


@dataclass
class CostReport:
    rows: list[CostRow] = field(default_factory=list)

    def ratio_sf_to_sql(self) -> float:
        """Overall SF-SQL cost as a fraction of full SQL (paper: ~0.33)."""
        sf = sum(r.sf for r in self.rows)
        sql = sum(r.sql for r in self.rows)
        return sf / sql if sql else 0.0

    def ratio_gui_to_sql(self) -> float:
        """Overall GUI cost as a fraction of full SQL (paper: ~0.55-0.62)."""
        gui = sum(r.gui for r in self.rows)
        sql = sum(r.sql for r in self.rows)
        return gui / sql if sql else 0.0

    @property
    def all_correct(self) -> bool:
        return all(r.correct_top1 for r in self.rows if r.correct_top1 is not None)


def run_cost_experiment(
    db: Database,
    queries: Sequence[WorkloadQuery],
    check_translation: bool = True,
    config: Optional[TranslatorConfig] = None,
) -> CostReport:
    """Figures 13 / 16: per-query IU costs plus top-1 correctness."""
    translator = SchemaFreeTranslator(db, config or TranslatorConfig())
    report = CostReport()
    for query in queries:
        assert query.sf_sql is not None
        correct: Optional[bool] = None
        if check_translation:
            gold = gold_rows(db, query)
            ordered = "ORDER BY" in query.gold_sql.upper()
            try:
                best = translator.translate_best(query.sf_sql)
                correct = rows_match(db, best, gold, ordered)
            except (TranslationError, SqlSyntaxError, EngineError):
                correct = False
        report.rows.append(
            CostRow(
                qid=query.qid,
                sf=sfsql_cost(query.sf_sql),
                gui=gui_cost(query.gold_sql),
                sql=full_sql_cost(query.gold_sql),
                correct_top1=correct,
            )
        )
    return report


@dataclass
class Fig14Row:
    qid: str
    intent: str
    sf_average: float
    gui: int
    sql: int
    users_correct: int
    users_total: int


def run_fig14(
    db: Database,
    queries: Sequence[WorkloadQuery],
    config: Optional[TranslatorConfig] = None,
) -> list[Fig14Row]:
    """Figure 14: five simulated users per sophisticated query."""
    rows = []
    for query in queries:
        gold = gold_rows(db, query)
        ordered = "ORDER BY" in query.gold_sql.upper()
        correct = 0
        costs = []
        for variant in query.user_variants:
            costs.append(sfsql_cost(variant))
            translator = SchemaFreeTranslator(db, config or TranslatorConfig())
            try:
                best = translator.translate_best(variant)
                if rows_match(db, best, gold, ordered):
                    correct += 1
            except (TranslationError, SqlSyntaxError, EngineError):
                pass
        rows.append(
            Fig14Row(
                qid=query.qid,
                intent=query.intent,
                sf_average=sum(costs) / len(costs),
                gui=gui_cost(query.gold_sql),
                sql=full_sql_cost(query.gold_sql),
                users_correct=correct,
                users_total=len(query.user_variants),
            )
        )
    return rows
