"""Experiment harness: one runner per table/figure of the paper's §7."""

from .common import (
    EffectivenessReport,
    QueryOutcome,
    format_fig15_row,
    gold_rows,
    rows_match,
    run_effectiveness,
)
from .cost import (
    CostReport,
    CostRow,
    Fig14Row,
    run_cost_experiment,
    run_fig14,
)
from .efficiency import (
    EfficiencyPoint,
    EfficiencyReport,
    build_graph,
    run_efficiency,
)

__all__ = [
    "CostReport",
    "CostRow",
    "EffectivenessReport",
    "EfficiencyPoint",
    "EfficiencyReport",
    "Fig14Row",
    "QueryOutcome",
    "build_graph",
    "format_fig15_row",
    "gold_rows",
    "rows_match",
    "run_cost_experiment",
    "run_effectiveness",
    "run_efficiency",
    "run_fig14",
]
