"""The efficiency experiment (Figure 17): generation time vs join size.

For each query of the size sweep the three generators run on the *same*
extended view graph: the DISCOVER-style Regular baseline, the Rightmost
baseline, and the paper's pruned algorithm at k = 1, 5 and 10.  Reported
numbers are wall-clock seconds per query plus the expansion counters, so
the log-scale ordering of Figure 17 (Regular >> Rightmost >> top-10 >
top-5 > top-1) can be checked both in time and in work performed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core import SchemaFreeTranslator, TranslatorConfig
from ..core.mapper import RelationTreeMapper
from ..core.mtjn import MTJNGenerator
from ..core.relation_tree import build_relation_trees
from ..core.similarity import SimilarityEvaluator
from ..core.triples import extract
from ..core.view_graph import ExtendedViewGraph, ViewGraph
from ..baselines import RegularGenerator, RightmostGenerator
from ..engine import Database
from ..sqlkit import ast, parse
from ..workloads import WorkloadQuery


@dataclass
class EfficiencyPoint:
    qid: str
    size: int
    algorithm: str
    k: int
    seconds: float
    expanded: int
    found: int


@dataclass
class EfficiencyReport:
    points: list[EfficiencyPoint] = field(default_factory=list)

    def series(self, algorithm: str, k: int) -> dict[int, float]:
        """size -> seconds for one line of Figure 17."""
        return {
            p.size: p.seconds
            for p in self.points
            if p.algorithm == algorithm and p.k == k
        }


def build_graph(
    db: Database, sf_sql: str, config: TranslatorConfig
) -> ExtendedViewGraph:
    """Everything up to (but excluding) join-network generation."""
    query = parse(sf_sql)
    assert isinstance(query, ast.Select)
    extraction = extract(query)
    trees = build_relation_trees(extraction)
    evaluator = SimilarityEvaluator(db, config)
    mapper = RelationTreeMapper(db, config, evaluator)
    mappings = mapper.map_trees(trees)
    return ExtendedViewGraph(
        ViewGraph(db.catalog), trees, mappings, evaluator, config
    )


def run_efficiency(
    db: Database,
    queries: Sequence[WorkloadQuery],
    config: Optional[TranslatorConfig] = None,
    repeat: int = 3,
) -> EfficiencyReport:
    config = config or TranslatorConfig()
    report = EfficiencyReport()
    for query in queries:
        graph = build_graph(db, query.sf_sql, config)
        size = query.relation_count
        runs = [
            ("regular", 1, lambda: RegularGenerator(graph, config)),
            ("rightmost", 1, lambda: RightmostGenerator(graph, config)),
            ("ours", 1, lambda: MTJNGenerator(graph, config)),
            ("ours", 5, lambda: MTJNGenerator(graph, config)),
            ("ours", 10, lambda: MTJNGenerator(graph, config)),
        ]
        for algorithm, k, factory in runs:
            best_seconds = float("inf")
            expanded = found = 0
            for _ in range(repeat):
                generator = factory()
                started = time.perf_counter()
                networks = generator.generate(k)
                elapsed = time.perf_counter() - started
                best_seconds = min(best_seconds, elapsed)
                expanded = generator.stats.expanded
                found = len(networks)
            report.points.append(
                EfficiencyPoint(
                    query.qid, size, algorithm, k, best_seconds, expanded, found
                )
            )
    return report
