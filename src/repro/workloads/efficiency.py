"""Join-size sweep for the efficiency experiment (Figure 17).

Figure 17 plots average top-k generation time against the number of
relations involved, from 2 to 10.  The 48-query workload tops out below
10, so this module defines one natural chain query per size over the
course schema; each is derived to SF-SQL with the §7.3 rule and drives
all three generators (Regular, Rightmost, ours).
"""

from __future__ import annotations

from .base import WorkloadQuery
from .derive import derive_course_sfsql

_CHAINS = [
    ("E02", 2,
     "SELECT c.title FROM course c, department d "
     "WHERE c.department_id = d.department_id "
     "AND d.name = 'Computer Science'"),
    ("E03", 3,
     "SELECT sec.capacity FROM section sec, course c, department d "
     "WHERE sec.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND d.name = 'Computer Science' AND sec.capacity > 30"),
    ("E04", 4,
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "course c WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.title = 'Databases' AND e.status = 'enrolled'"),
    ("E05", 5,
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "course c, department d WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND d.name = 'Computer Science' AND e.status = 'enrolled'"),
    ("E06", 6,
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "course c, department d, term t WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND sec.term_id = t.term_id "
     "AND d.name = 'Computer Science' AND t.name = 'Fall 2013' "
     "AND e.status = 'enrolled'"),
    ("E07", 7,
     "SELECT DISTINCT p.name FROM publisher p, textbook t, "
     "section_textbook st, section sec, course c, department d, term tr "
     "WHERE p.publisher_id = t.publisher_id "
     "AND t.textbook_id = st.textbook_id "
     "AND st.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND sec.term_id = tr.term_id "
     "AND d.name = 'Computer Science' AND tr.name = 'Fall 2013' "
     "AND t.price > 40"),
    ("E08", 8,
     "SELECT DISTINCT i.name FROM instructor i, teaches te, section sec, "
     "course c, department d, term tr, enrollment e, student s "
     "WHERE i.instructor_id = te.instructor_id "
     "AND te.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND sec.term_id = tr.term_id "
     "AND e.section_id = sec.section_id AND e.student_id = s.student_id "
     "AND d.name = 'Computer Science' AND tr.name = 'Fall 2013' "
     "AND s.admit_year > 2009 AND i.rank = 'professor' "
     "AND e.status = 'enrolled'"),
    ("E09", 9,
     "SELECT DISTINCT ca.title FROM career ca, skill_career skc, skill sk, "
     "course_skill cs, course c, section sec, term tr, teaches te, "
     "instructor i WHERE ca.career_id = skc.career_id "
     "AND skc.skill_id = sk.skill_id AND sk.skill_id = cs.skill_id "
     "AND cs.course_id = c.course_id AND sec.course_id = c.course_id "
     "AND sec.term_id = tr.term_id AND te.section_id = sec.section_id "
     "AND te.instructor_id = i.instructor_id "
     "AND tr.name = 'Fall 2013' AND i.rank = 'professor' "
     "AND sk.name = 'programming'"),
    ("E10", 10,
     "SELECT DISTINCT ca.title FROM career ca, skill_career skc, skill sk, "
     "course_skill cs, course c, department d, section sec, term tr, "
     "enrollment e, student s WHERE ca.career_id = skc.career_id "
     "AND skc.skill_id = sk.skill_id AND sk.skill_id = cs.skill_id "
     "AND cs.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND sec.course_id = c.course_id AND sec.term_id = tr.term_id "
     "AND e.section_id = sec.section_id AND e.student_id = s.student_id "
     "AND d.name = 'Computer Science' AND tr.name = 'Fall 2013' "
     "AND s.admit_year > 2009 AND e.status = 'enrolled' "
     "AND sk.name = 'programming'"),
]

EFFICIENCY_QUERIES: list[WorkloadQuery] = [
    WorkloadQuery(
        qid=qid,
        intent=f"efficiency sweep chain of {size} relations",
        gold_sql=gold,
        sf_sql=derive_course_sfsql(gold),
    )
    for qid, size, gold in _CHAINS
]
