"""The 48 complex course queries of §7.3 (Figures 15 and 16).

The paper obtained 48 complex SQL queries against the CourseRank database
and mechanically derived Schema-free SQL from them: FK-PK join paths
deleted, FROM relations deleted except the *end relations* of each join
path (used for selection or projection).  Queries are bucketed by the
number of relations their join paths refer to — 11 queries with 2-4
relations, 26 with 5, and 11 with 6-10, matching Figure 15's row sizes.

Every query's intent is expressible in the alternative 21-relation schema
(``repro.datasets.courses_alt``) — the paper's developer designed that
schema to "cover the query intent in all the 48 queries" — so the same
SF-SQL can be judged on both schemas by result equivalence.
"""

from __future__ import annotations

from .base import WorkloadQuery
from .derive import derive_course_sfsql

_GOLD = [
    # ------------------------------------------------------------------
    # bucket 2-4: 11 queries
    # ------------------------------------------------------------------
    ("C01", "Students in the 'BS in Computer Science' program.",
     "SELECT s.name FROM student s, program p "
     "WHERE s.program_id = p.program_id "
     "AND p.name = 'BS in Computer Science'"),
    ("C02", "Courses offered by the Computer Science department.",
     "SELECT c.title FROM course c, department d "
     "WHERE c.department_id = d.department_id "
     "AND d.name = 'Computer Science'"),
    ("C03", "Instructors of the Physics department.",
     "SELECT i.name FROM instructor i, department d "
     "WHERE i.department_id = d.department_id AND d.name = 'Physics'"),
    ("C04", "Capacities of 'Databases' sections in Fall 2013.",
     "SELECT sec.capacity FROM section sec, course c, term t "
     "WHERE sec.course_id = c.course_id AND sec.term_id = t.term_id "
     "AND c.title = 'Databases' AND t.name = 'Fall 2013'"),
    ("C05", "Instructors teaching large sections.",
     "SELECT DISTINCT i.name FROM instructor i, teaches te, section sec "
     "WHERE i.instructor_id = te.instructor_id "
     "AND te.section_id = sec.section_id AND sec.capacity > 50"),
    ("C06", "Grades earned by student 'Dan Haddad 1'.",
     "SELECT g.letter FROM completed co, grade_scale g, student s "
     "WHERE co.grade_id = g.grade_id AND co.student_id = s.student_id "
     "AND s.name = 'Dan Haddad 1'"),
    ("C07", "Students enrolled in 'Algorithms'.",
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "course c WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.title = 'Algorithms'"),
    ("C08", "Textbooks used in 'Databases' sections.",
     "SELECT DISTINCT t.title FROM textbook t, section_textbook st, "
     "section sec, course c WHERE t.textbook_id = st.textbook_id "
     "AND st.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.title = 'Databases'"),
    ("C09", "Instructors who have taught 'Calculus'.",
     "SELECT DISTINCT i.name FROM instructor i, teaches te, section sec, "
     "course c WHERE i.instructor_id = te.instructor_id "
     "AND te.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.title = 'Calculus'"),
    ("C10", "Clubs joined by 'BS in Mathematics' students.",
     "SELECT DISTINCT cl.name FROM club cl, student_club sc, student s, "
     "program p WHERE cl.club_id = sc.club_id "
     "AND sc.student_id = s.student_id AND s.program_id = p.program_id "
     "AND p.name = 'BS in Mathematics'"),
    ("C11", "Comments on Computer Science courses.",
     "SELECT cm.text FROM comment cm, course c, department d "
     "WHERE cm.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND d.name = 'Computer Science'"),
    # ------------------------------------------------------------------
    # bucket 5: 26 queries
    # ------------------------------------------------------------------
    ("C12", "Students with an A in 'Databases' (any term).",
     "SELECT DISTINCT s.name FROM student s, completed co, grade_scale g, "
     "course c, term t WHERE s.student_id = co.student_id "
     "AND co.grade_id = g.grade_id AND co.course_id = c.course_id "
     "AND co.term_id = t.term_id AND g.letter = 'A' "
     "AND c.title = 'Databases'"),
    ("C13", "Students enrolled in History-department courses.",
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "course c, department d WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND d.name = 'History' "
     "AND e.status = 'enrolled'"),
    ("C14", "Instructors teaching Economics-department courses.",
     "SELECT DISTINCT i.name FROM instructor i, teaches te, section sec, "
     "course c, department d WHERE i.instructor_id = te.instructor_id "
     "AND te.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND d.name = 'Economics'"),
    ("C15", "Students enrolled in 'Databases' in Fall 2013.",
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "course c, term t WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND sec.term_id = t.term_id AND c.title = 'Databases' "
     "AND t.name = 'Fall 2013' AND e.status = 'enrolled'"),
    ("C16", "Publishers of textbooks used in 'Genetics'.",
     "SELECT DISTINCT p.name FROM publisher p, textbook t, "
     "section_textbook st, section sec, course c "
     "WHERE p.publisher_id = t.publisher_id "
     "AND t.textbook_id = st.textbook_id "
     "AND st.section_id = sec.section_id "
     "AND sec.course_id = c.course_id AND c.title = 'Genetics'"),
    ("C17", "Students with an A in Economics-department courses.",
     "SELECT DISTINCT s.name FROM student s, completed co, grade_scale g, "
     "course c, department d WHERE s.student_id = co.student_id "
     "AND co.grade_id = g.grade_id AND co.course_id = c.course_id "
     "AND c.department_id = d.department_id AND g.letter = 'A' "
     "AND d.name = 'Economics'"),
    ("C18", "Advisors of students in Biology-department programs.",
     "SELECT DISTINCT i.name FROM instructor i, advisor a, student s, "
     "program p, department d WHERE i.instructor_id = a.instructor_id "
     "AND a.student_id = s.student_id AND s.program_id = p.program_id "
     "AND p.department_id = d.department_id AND d.name = 'Biology'"),
    ("C19", "Careers linked to skills taught in 'Machine Learning'.",
     "SELECT DISTINCT ca.title FROM career ca, skill_career skc, "
     "skill sk, course_skill cs, course c "
     "WHERE ca.career_id = skc.career_id AND skc.skill_id = sk.skill_id "
     "AND sk.skill_id = cs.skill_id AND cs.course_id = c.course_id "
     "AND c.title = 'Machine Learning'"),
    ("C20", "TAs of Computer Science courses.",
     "SELECT DISTINCT s.name FROM student s, ta, section sec, course c, "
     "department d WHERE s.student_id = ta.student_id "
     "AND ta.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND d.name = 'Computer Science'"),
    ("C21", "Students holding scholarships sponsored by 'Tech Foundation'.",
     "SELECT DISTINCT s.name FROM student s, student_scholarship ss, "
     "scholarship sch, scholarship_sponsor scs, sponsor sp "
     "WHERE s.student_id = ss.student_id "
     "AND ss.scholarship_id = sch.scholarship_id "
     "AND sch.scholarship_id = scs.scholarship_id "
     "AND scs.sponsor_id = sp.sponsor_id "
     "AND sp.name = 'Tech Foundation'"),
    ("C22", "Room numbers of Computer Science sections in 'Hall A'.",
     "SELECT DISTINCT r.number FROM room r, building b, section sec, "
     "course c, department d WHERE sec.room_id = r.room_id "
     "AND r.building_id = b.building_id "
     "AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND b.name = 'Hall A' AND d.name = 'Computer Science'"),
    ("C23", "Students taught by full professors.",
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "teaches te, instructor i WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id "
     "AND te.section_id = sec.section_id "
     "AND te.instructor_id = i.instructor_id AND i.rank = 'professor' "
     "AND e.status = 'enrolled'"),
    ("C24", "Textbooks used in Winter 2013 sections of 'Databases'.",
     "SELECT DISTINCT t.title FROM textbook t, section_textbook st, "
     "section sec, term tr, course c WHERE t.textbook_id = st.textbook_id "
     "AND st.section_id = sec.section_id AND sec.term_id = tr.term_id "
     "AND sec.course_id = c.course_id AND tr.name = 'Winter 2013' "
     "AND c.title = 'Databases'"),
    ("C25", "Comments on History courses by MS students.",
     "SELECT cm.text FROM comment cm, course c, department d, student s, "
     "program p WHERE cm.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND cm.student_id = s.student_id AND s.program_id = p.program_id "
     "AND d.name = 'History' AND p.level = 'MS'"),
    ("C26", "Ratings of Computer Science courses by BS students.",
     "SELECT cr.stars FROM course_rating cr, course c, department d, "
     "student s, program p WHERE cr.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND cr.student_id = s.student_id AND s.program_id = p.program_id "
     "AND d.name = 'Computer Science' AND p.level = 'BS'"),
    ("C27", "Clubs of students advised by 'Prof. Bob Rivera'.",
     "SELECT DISTINCT cl.name FROM club cl, student_club sc, student s, "
     "advisor a, instructor i WHERE cl.club_id = sc.club_id "
     "AND sc.student_id = s.student_id AND a.student_id = s.student_id "
     "AND a.instructor_id = i.instructor_id "
     "AND i.name = 'Prof. Bob Rivera'"),
    ("C28", "Skills taught in courses offered in Winter 2013.",
     "SELECT DISTINCT sk.name FROM skill sk, course_skill cs, course c, "
     "section sec, term t WHERE sk.skill_id = cs.skill_id "
     "AND cs.course_id = c.course_id AND sec.course_id = c.course_id "
     "AND sec.term_id = t.term_id AND t.name = 'Winter 2013'"),
    ("C29", "Grade letters earned in Computer Science programs.",
     "SELECT DISTINCT g.letter FROM grade_scale g, completed co, "
     "student s, program p, department d "
     "WHERE g.grade_id = co.grade_id AND co.student_id = s.student_id "
     "AND s.program_id = p.program_id "
     "AND p.department_id = d.department_id "
     "AND d.name = 'Computer Science'"),
    ("C30", "Sponsors of scholarships held by student 'Paul Haddad 5'.",
     "SELECT DISTINCT sp.name FROM sponsor sp, scholarship_sponsor scs, "
     "scholarship sch, student_scholarship ss, student s "
     "WHERE sp.sponsor_id = scs.sponsor_id "
     "AND scs.scholarship_id = sch.scholarship_id "
     "AND sch.scholarship_id = ss.scholarship_id "
     "AND ss.student_id = s.student_id AND s.name = 'Paul Haddad 5'"),
    ("C31", "Instructors whose sections use 'Introduction to Databases'.",
     "SELECT DISTINCT i.name FROM instructor i, teaches te, section sec, "
     "section_textbook st, textbook t "
     "WHERE i.instructor_id = te.instructor_id "
     "AND te.section_id = sec.section_id "
     "AND st.section_id = sec.section_id "
     "AND st.textbook_id = t.textbook_id "
     "AND t.title = 'Introduction to Databases'"),
    ("C32", "Enrollment counts per department.",
     "SELECT d.name, count(e.student_id) FROM department d, course c, "
     "section sec, enrollment e, student s "
     "WHERE c.department_id = d.department_id "
     "AND sec.course_id = c.course_id AND e.section_id = sec.section_id "
     "AND e.student_id = s.student_id GROUP BY d.name"),
    ("C33", "Terms in which 'PhD in Mathematics' students enrolled.",
     "SELECT DISTINCT t.name FROM term t, section sec, enrollment e, "
     "student s, program p WHERE sec.term_id = t.term_id "
     "AND e.section_id = sec.section_id AND e.student_id = s.student_id "
     "AND s.program_id = p.program_id AND p.name = 'PhD in Mathematics' "
     "AND e.status = 'enrolled'"),
    ("C34", "Publishers of textbooks used in Fall 2012 sections.",
     "SELECT DISTINCT p.name FROM publisher p, textbook t, "
     "section_textbook st, section sec, term tr "
     "WHERE p.publisher_id = t.publisher_id "
     "AND t.textbook_id = st.textbook_id "
     "AND st.section_id = sec.section_id AND sec.term_id = tr.term_id "
     "AND tr.name = 'Fall 2012'"),
    ("C35", "Careers reachable from 400-level courses.",
     "SELECT DISTINCT ca.title FROM career ca, skill_career skc, skill sk, "
     "course_skill cs, course c WHERE ca.career_id = skc.career_id "
     "AND skc.skill_id = sk.skill_id AND sk.skill_id = cs.skill_id "
     "AND cs.course_id = c.course_id AND c.level = 400"),
    ("C36", "Students in sections held in building 'Hall B'.",
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "room r, building b WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.room_id = r.room_id "
     "AND r.building_id = b.building_id AND b.name = 'Hall B' "
     "AND e.status = 'enrolled'"),
    ("C37", "Instructors who taught student 'Dan Haddad 1'.",
     "SELECT DISTINCT i.name FROM instructor i, teaches te, section sec, "
     "enrollment e, student s WHERE i.instructor_id = te.instructor_id "
     "AND te.section_id = sec.section_id "
     "AND e.section_id = sec.section_id AND e.student_id = s.student_id "
     "AND s.name = 'Dan Haddad 1' AND e.status = 'enrolled'"),
    # ------------------------------------------------------------------
    # bucket 6-10: 11 queries
    # ------------------------------------------------------------------
    ("C38", "Students enrolled in CS courses in Fall 2013.",
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "course c, department d, term t WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND sec.term_id = t.term_id "
     "AND d.name = 'Computer Science' AND t.name = 'Fall 2013' "
     "AND e.status = 'enrolled'"),
    ("C39", "Instructors teaching Mathematics courses in Winter 2013.",
     "SELECT DISTINCT i.name FROM instructor i, teaches te, section sec, "
     "course c, department d, term t "
     "WHERE i.instructor_id = te.instructor_id "
     "AND te.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND sec.term_id = t.term_id "
     "AND d.name = 'Mathematics' AND t.name = 'Winter 2013'"),
    ("C40", "Students taught by History-department instructors.",
     "SELECT DISTINCT s.name FROM student s, enrollment e, section sec, "
     "teaches te, instructor i, department d "
     "WHERE s.student_id = e.student_id "
     "AND e.section_id = sec.section_id "
     "AND te.section_id = sec.section_id "
     "AND te.instructor_id = i.instructor_id "
     "AND i.department_id = d.department_id AND d.name = 'History' "
     "AND e.status = 'enrolled'"),
    ("C41", "Publishers of textbooks used in Biology courses.",
     "SELECT DISTINCT p.name FROM publisher p, textbook t, "
     "section_textbook st, section sec, course c, department d "
     "WHERE p.publisher_id = t.publisher_id "
     "AND t.textbook_id = st.textbook_id "
     "AND st.section_id = sec.section_id "
     "AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND d.name = 'Biology'"),
    ("C42", "'BS in Physics' students enrolled in CS courses in Fall 2012.",
     "SELECT DISTINCT s.name FROM student s, program p, enrollment e, "
     "section sec, course c, department d, term t "
     "WHERE s.program_id = p.program_id AND s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND sec.term_id = t.term_id "
     "AND p.name = 'BS in Physics' AND d.name = 'Computer Science' "
     "AND t.name = 'Fall 2012' AND e.status = 'enrolled'"),
    ("C43", "Careers tied to skills of courses offered in Fall 2013.",
     "SELECT DISTINCT ca.title FROM career ca, skill_career skc, skill sk, "
     "course_skill cs, course c, section sec, term t "
     "WHERE ca.career_id = skc.career_id AND skc.skill_id = sk.skill_id "
     "AND sk.skill_id = cs.skill_id AND cs.course_id = c.course_id "
     "AND sec.course_id = c.course_id AND sec.term_id = t.term_id "
     "AND t.name = 'Fall 2013'"),
    ("C44", "Advisors whose advisees enrolled in CS courses.",
     "SELECT DISTINCT i.name FROM instructor i, advisor a, student s, "
     "enrollment e, section sec, course c, department d "
     "WHERE i.instructor_id = a.instructor_id "
     "AND a.student_id = s.student_id AND s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id "
     "AND d.name = 'Computer Science'"),
    ("C45", "'Robotics Society' members in CS courses in Fall 2013.",
     "SELECT DISTINCT s.name FROM student s, student_club scb, club cl, "
     "enrollment e, section sec, course c, department d, term t "
     "WHERE s.student_id = scb.student_id AND scb.club_id = cl.club_id "
     "AND s.student_id = e.student_id "
     "AND e.section_id = sec.section_id AND sec.course_id = c.course_id "
     "AND c.department_id = d.department_id AND sec.term_id = t.term_id "
     "AND cl.name = 'Robotics Society' AND d.name = 'Computer Science' "
     "AND t.name = 'Fall 2013' AND e.status = 'enrolled'"),
    ("C46", "Sponsors funding PhD students.",
     "SELECT DISTINCT sp.name FROM sponsor sp, scholarship_sponsor scs, "
     "scholarship sch, student_scholarship ss, student s, program p "
     "WHERE sp.sponsor_id = scs.sponsor_id "
     "AND scs.scholarship_id = sch.scholarship_id "
     "AND sch.scholarship_id = ss.scholarship_id "
     "AND ss.student_id = s.student_id AND s.program_id = p.program_id "
     "AND p.level = 'PhD'"),
    ("C47", "Careers aligned with A-graded courses of 'Dan Haddad 1'.",
     "SELECT DISTINCT ca.title FROM career ca, skill_career skc, skill sk, "
     "course_skill cs, course c, completed co, grade_scale g, student s "
     "WHERE ca.career_id = skc.career_id AND skc.skill_id = sk.skill_id "
     "AND sk.skill_id = cs.skill_id AND cs.course_id = c.course_id "
     "AND co.course_id = c.course_id AND co.grade_id = g.grade_id "
     "AND co.student_id = s.student_id AND g.letter = 'A' "
     "AND s.name = 'Dan Haddad 1'"),
    ("C48", "Classmates of 'Dan Haddad 1' in 'Databases' sections.",
     "SELECT DISTINCT s2.name FROM student s1, enrollment e1, section sec, "
     "enrollment e2, student s2, course c "
     "WHERE s1.student_id = e1.student_id "
     "AND e1.section_id = sec.section_id "
     "AND e2.section_id = sec.section_id "
     "AND e2.student_id = s2.student_id AND sec.course_id = c.course_id "
     "AND s1.name = 'Dan Haddad 1' AND c.title = 'Databases'"),
]

COURSE_QUERIES: list[WorkloadQuery] = [
    WorkloadQuery(
        qid=qid,
        intent=intent,
        gold_sql=gold,
        sf_sql=derive_course_sfsql(gold),
    )
    for qid, intent, gold in _GOLD
]
