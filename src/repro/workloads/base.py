"""Workload definitions shared by the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sqlkit import ast, parse


@dataclass
class WorkloadQuery:
    """One experimental query: intent, gold full SQL, derived SF-SQL."""

    qid: str
    intent: str
    gold_sql: str
    sf_sql: Optional[str] = None
    #: SF-SQL variants from the five simulated users (Figure 14)
    user_variants: list[str] = field(default_factory=list)

    @property
    def gold_ast(self) -> ast.Node:
        return parse(self.gold_sql)

    @property
    def relation_count(self) -> int:
        """Number of relation occurrences the gold query's outermost
        block joins (the paper buckets queries by this)."""
        query = self.gold_ast
        while isinstance(query, ast.SetOp):
            query = query.left
        assert isinstance(query, ast.Select)
        count = 0
        stack = list(query.from_items)
        while stack:
            item = stack.pop()
            if isinstance(item, ast.TableRef):
                count += 1
            elif isinstance(item, ast.Join):
                stack.extend((item.left, item.right))
        return count

    def bucket(self) -> str:
        """The paper's Figure 15 size buckets."""
        count = self.relation_count
        if count <= 4:
            return "2-4"
        if count == 5:
            return "5"
        return "6-10"
