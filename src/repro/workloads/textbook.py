"""The 17 textbook queries of §7.2 / Figure 13.

The paper took the complete example queries from Ullman & Widom's *A
First Course in Database Systems* (removing 10 that referenced data
outside Yahoo-Movie, keeping 17) and mechanically rewrote them into
Schema-free SQL: join paths deleted, FROM clauses deleted, and columns
merged with their relation names.

The original queries were written for a 5-relation teaching schema; the
paper adapted them to Yahoo-Movie.  We do the same for our 43-relation
movie schema, preserving the SQL-feature coverage the paper calls out:
single-relation queries, multi-relation joins, multi-level sub-queries,
and aggregation.  The SF-SQL is derived mechanically with
:func:`repro.workloads.derive.derive_textbook_sfsql`.
"""

from __future__ import annotations

from .base import WorkloadQuery
from .derive import derive_textbook_sfsql

_GOLD = [
    # -- single-relation selections and projections ----------------------
    ("T1", "Titles of movies released after 2000.",
     "SELECT title FROM movie WHERE release_year > 2000"),
    ("T2", "Titles and years of long movies from the 1990s.",
     "SELECT title, release_year FROM movie "
     "WHERE runtime > 120 AND release_year < 2000"),
    ("T3", "Names of all female persons.",
     "SELECT DISTINCT name FROM person WHERE gender = 'female'"),
    ("T4", "Movies from 1995-2005, newest first.",
     "SELECT title FROM movie WHERE release_year BETWEEN 1995 AND 2005 "
     "ORDER BY release_year DESC"),
    ("T5", "How many movies were released in 1997?",
     "SELECT count(*) FROM movie WHERE release_year = 1997"),
    ("T6", "Profit of profitable movies.",
     "SELECT title, gross - budget FROM movie WHERE gross > budget"),
    # -- joins -------------------------------------------------------------
    ("T7", "Movies made at each studio after 2005.",
     "SELECT movie.title, studio.name FROM movie, studio "
     "WHERE movie.studio_id = studio.studio_id "
     "AND movie.release_year > 2005"),
    ("T8", "Who directed 'Cameron Epic 1997'?",
     "SELECT person.name FROM person, director, movie "
     "WHERE person.person_id = director.person_id "
     "AND director.movie_id = movie.movie_id "
     "AND movie.title = 'Cameron Epic 1997'"),
    ("T9", "Actors of 'Tunisian Dawn'.",
     "SELECT person.name FROM person, actor, movie "
     "WHERE person.person_id = actor.person_id "
     "AND actor.movie_id = movie.movie_id "
     "AND movie.title = 'Tunisian Dawn'"),
    ("T10", "Number of movies per genre.",
     "SELECT genre.name, count(movie_genre.movie_id) "
     "FROM genre, movie_genre "
     "WHERE genre.genre_id = movie_genre.genre_id GROUP BY genre.name"),
    ("T11", "Genres with more than five movies.",
     "SELECT genre.name FROM genre, movie_genre "
     "WHERE genre.genre_id = movie_genre.genre_id "
     "GROUP BY genre.name HAVING count(movie_genre.movie_id) > 5"),
    # -- nested queries -------------------------------------------------------
    ("T12", "Movies directed by someone born before 1950.",
     "SELECT title FROM movie WHERE movie_id IN "
     "(SELECT director.movie_id FROM director WHERE director.person_id IN "
     "(SELECT person.person_id FROM person WHERE person.birth_year < 1950))"),
    ("T13", "People who have directed at least one movie.",
     "SELECT person.name FROM person WHERE EXISTS "
     "(SELECT 1 FROM director "
     "WHERE director.person_id = person.person_id)"),
    ("T14", "The highest-grossing movie.",
     "SELECT title FROM movie WHERE gross = "
     "(SELECT max(movie.gross) FROM movie)"),
    # -- set operations ---------------------------------------------------------
    ("T15", "People born before 1940 or after 1990.",
     "SELECT name FROM person WHERE birth_year < 1940 "
     "UNION "
     "SELECT name FROM person WHERE birth_year > 1990"),
    # -- complex joins ------------------------------------------------------------
    ("T16", "Actors who worked with director 'James Cameron'.",
     "SELECT DISTINCT pa.name FROM person pa, actor a, movie m, "
     "director d, person pd "
     "WHERE pa.person_id = a.person_id AND a.movie_id = m.movie_id "
     "AND m.movie_id = d.movie_id AND d.person_id = pd.person_id "
     "AND pd.name = 'James Cameron'"),
    ("T17", "Average runtime per MPAA rating.",
     "SELECT rating.code, avg(movie.runtime) FROM rating, movie "
     "WHERE movie.rating_id = rating.rating_id GROUP BY rating.code"),
]

#: For three queries the deleted join path carried the *role* of a person
#: (director / actor).  Mechanical deletion loses that intent entirely, so
#: — exactly like the paper's Figure 2 users, who wrote ``director_name?``
#: — the schema-free version names the role as a guess.
_SF_OVERRIDES = {
    "T8": (
        "SELECT director?.name? "
        "WHERE movie?.title? = 'Cameron Epic 1997'"
    ),
    "T9": (
        "SELECT actor?.name? WHERE movie?.title? = 'Tunisian Dawn'"
    ),
    "T16": (
        "SELECT DISTINCT actor?.name? "
        "WHERE director_name? = 'James Cameron'"
    ),
}

TEXTBOOK_QUERIES: list[WorkloadQuery] = [
    WorkloadQuery(
        qid=qid,
        intent=intent,
        gold_sql=gold,
        sf_sql=_SF_OVERRIDES.get(qid, derive_textbook_sfsql(gold)),
    )
    for qid, intent, gold in _GOLD
]
