"""The six sophisticated movie queries of Figure 14.

The paper recruited five information-science students — familiar with SQL
but not with the Yahoo-Movie schema — and asked them to express six
complex intents (join paths over 5+ relations) in Schema-free SQL.  We
simulate those five users with five hand-written SF-SQL variants per
query, each exhibiting the error modes the paper describes: wrong or
missing relation names, compound attribute guesses (``director_name``),
synonyms (film, studio), and fully anonymous placeholders.

Every variant translates and evaluates against the gold answer in the
Figure 14 experiment (`repro.experiments.fig14`).
"""

from __future__ import annotations

from .base import WorkloadQuery

SOPHISTICATED_QUERIES: list[WorkloadQuery] = [
    WorkloadQuery(
        qid="S1",
        intent=(
            "Male actors cooperated with director 'James Cameron' in the "
            "movies produced by company '20th Century Fox' from 1995 to 2010."
        ),
        gold_sql=(
            "SELECT DISTINCT pa.name FROM person pa, actor a, movie m, "
            "director d, person pd, movie_producer mp, company c "
            "WHERE pa.person_id = a.person_id AND a.movie_id = m.movie_id "
            "AND m.movie_id = d.movie_id AND d.person_id = pd.person_id "
            "AND m.movie_id = mp.movie_id AND mp.company_id = c.company_id "
            "AND pa.gender = 'male' AND pd.name = 'James Cameron' "
            "AND c.name = '20th Century Fox' "
            "AND m.release_year BETWEEN 1995 AND 2010"
        ),
        user_variants=[
            "SELECT DISTINCT actor?.name? WHERE actor?.gender? = 'male' "
            "AND director_name? = 'James Cameron' "
            "AND produce_company? = '20th Century Fox' "
            "AND movie_year? BETWEEN 1995 AND 2010",
            "SELECT DISTINCT actors?.name? WHERE actors?.sex? = 'male' "
            "AND director?.name? = 'James Cameron' "
            "AND production_company?.name? = '20th Century Fox' "
            "AND movies?.release_year? BETWEEN 1995 AND 2010",
            "SELECT DISTINCT actor?.fullname? WHERE actor?.gender? = 'male' "
            "AND film_director? = 'James Cameron' "
            "AND producer_company? = '20th Century Fox' "
            "AND movie?.year? BETWEEN 1995 AND 2010",
            "SELECT DISTINCT actor?.name? WHERE actor?.gender? = 'male' "
            "AND movie_director? = 'James Cameron' "
            "AND production_company? = '20th Century Fox' "
            "AND film?.release_year? BETWEEN 1995 AND 2010",
            "SELECT DISTINCT actor?.name? WHERE actor?.gender? = 'male' "
            "AND director?.name? = 'James Cameron' "
            "AND produced_by? = '20th Century Fox' "
            "AND movie_year? BETWEEN 1995 AND 2010",
        ],
    ),
    WorkloadQuery(
        qid="S2",
        intent="Movies with genre 'Drama' and director 'Peter Jackson'.",
        gold_sql=(
            "SELECT DISTINCT m.title FROM movie m, movie_genre mg, genre g, "
            "director d, person p "
            "WHERE m.movie_id = mg.movie_id AND mg.genre_id = g.genre_id "
            "AND m.movie_id = d.movie_id AND d.person_id = p.person_id "
            "AND g.name = 'Drama' AND p.name = 'Peter Jackson'"
        ),
        user_variants=[
            "SELECT DISTINCT movie?.title? WHERE genre? = 'Drama' "
            "AND director_name? = 'Peter Jackson'",
            "SELECT DISTINCT film?.title? WHERE genre?.name? = 'Drama' "
            "AND director?.name? = 'Peter Jackson'",
            "SELECT DISTINCT movies?.title? WHERE movie_genre? = 'Drama' "
            "AND director_name? = 'Peter Jackson'",
            "SELECT DISTINCT movie?.title? WHERE genre_name? = 'Drama' "
            "AND directed_by? = 'Peter Jackson'",
            "SELECT DISTINCT movie?.title? WHERE category? = 'Drama' "
            "AND director?.name? = 'Peter Jackson'",
        ],
    ),
    WorkloadQuery(
        qid="S3",
        intent=(
            "Movies produced by company 'Carthago Films', distributed by "
            "company 'Apollo Films', and directed by director 'Fahdel "
            "Jaziri'."
        ),
        gold_sql=(
            "SELECT DISTINCT m.title FROM movie m, movie_producer mp, "
            "company cp, movie_distributor md, company cd, director d, "
            "person p "
            "WHERE m.movie_id = mp.movie_id AND mp.company_id = cp.company_id "
            "AND m.movie_id = md.movie_id AND md.company_id = cd.company_id "
            "AND m.movie_id = d.movie_id AND d.person_id = p.person_id "
            "AND cp.name = 'Carthago Films' AND cd.name = 'Apollo Films' "
            "AND p.name = 'Fahdel Jaziri'"
        ),
        user_variants=[
            "SELECT DISTINCT movie?.title? "
            "WHERE produce_company? = 'Carthago Films' "
            "AND distribute_company? = 'Apollo Films' "
            "AND director_name? = 'Fahdel Jaziri'",
            "SELECT DISTINCT film?.title? "
            "WHERE producer_company? = 'Carthago Films' "
            "AND distributor_company? = 'Apollo Films' "
            "AND director?.name? = 'Fahdel Jaziri'",
            "SELECT DISTINCT movie?.title? "
            "WHERE production_company? = 'Carthago Films' "
            "AND distribution_company? = 'Apollo Films' "
            "AND directed_by? = 'Fahdel Jaziri'",
            "SELECT DISTINCT movies?.title? "
            "WHERE producer? = 'Carthago Films' "
            "AND distributor? = 'Apollo Films' "
            "AND director_name? = 'Fahdel Jaziri'",
            "SELECT DISTINCT movie?.title? "
            "WHERE produce_company? = 'Carthago Films' "
            "AND distributor_name? = 'Apollo Films' "
            "AND film_director? = 'Fahdel Jaziri'",
        ],
    ),
    WorkloadQuery(
        qid="S4",
        intent=(
            "The number of movies directed by 'Steven Spielberg' and acted "
            "by 'Tom Hanks'."
        ),
        gold_sql=(
            "SELECT count(DISTINCT m.movie_id) FROM movie m, director d, "
            "person pd, actor a, person pa "
            "WHERE m.movie_id = d.movie_id AND d.person_id = pd.person_id "
            "AND m.movie_id = a.movie_id AND a.person_id = pa.person_id "
            "AND pd.name = 'Steven Spielberg' AND pa.name = 'Tom Hanks'"
        ),
        user_variants=[
            "SELECT count(DISTINCT movie?.movie_id?) "
            "WHERE director_name? = 'Steven Spielberg' "
            "AND actor_name? = 'Tom Hanks'",
            "SELECT count(DISTINCT film?.movie_id?) "
            "WHERE director?.name? = 'Steven Spielberg' "
            "AND actor?.name? = 'Tom Hanks'",
            "SELECT count(DISTINCT movie?.id?) "
            "WHERE directed_by? = 'Steven Spielberg' "
            "AND acted_by? = 'Tom Hanks'",
            "SELECT count(DISTINCT movies?.movie_id?) "
            "WHERE director_name? = 'Steven Spielberg' "
            "AND actors?.name? = 'Tom Hanks'",
            "SELECT count(DISTINCT movie?.movie_id?) "
            "WHERE film_director? = 'Steven Spielberg' "
            "AND actor?.name? = 'Tom Hanks'",
        ],
    ),
    WorkloadQuery(
        qid="S5",
        intent=(
            "Actors acted in more than 3 movies with genre 'Action "
            "Adventure' directed by 'Woody Allen'."
        ),
        gold_sql=(
            "SELECT pa.name FROM person pa, actor a, movie m, "
            "movie_genre mg, genre g, director d, person pd "
            "WHERE pa.person_id = a.person_id AND a.movie_id = m.movie_id "
            "AND m.movie_id = mg.movie_id AND mg.genre_id = g.genre_id "
            "AND m.movie_id = d.movie_id AND d.person_id = pd.person_id "
            "AND g.name = 'Action Adventure' AND pd.name = 'Woody Allen' "
            "GROUP BY pa.name HAVING count(DISTINCT m.movie_id) > 3"
        ),
        user_variants=[
            "SELECT actor?.name? WHERE genre? = 'Action Adventure' "
            "AND director_name? = 'Woody Allen' "
            "GROUP BY actor?.name? HAVING count(*) > 3",
            "SELECT actors?.name? WHERE genre?.name? = 'Action Adventure' "
            "AND director?.name? = 'Woody Allen' "
            "GROUP BY actors?.name? HAVING count(*) > 3",
            "SELECT actor?.fullname? WHERE movie_genre? = 'Action Adventure' "
            "AND directed_by? = 'Woody Allen' "
            "GROUP BY actor?.fullname? HAVING count(*) > 3",
            "SELECT actor?.name? WHERE genre_name? = 'Action Adventure' "
            "AND film_director? = 'Woody Allen' "
            "GROUP BY actor?.name? HAVING count(*) > 3",
            "SELECT actor?.actor_name? WHERE genre? = 'Action Adventure' "
            "AND director?.name? = 'Woody Allen' "
            "GROUP BY actor?.actor_name? HAVING count(*) > 3",
        ],
    ),
    WorkloadQuery(
        qid="S6",
        intent=(
            "Movies with genre 'Drama', financed by company 'LLC', "
            "directed by 'Stephen Gaghan'."
        ),
        gold_sql=(
            "SELECT DISTINCT m.title FROM movie m, movie_genre mg, genre g, "
            "movie_financer mf, company c, director d, person p "
            "WHERE m.movie_id = mg.movie_id AND mg.genre_id = g.genre_id "
            "AND m.movie_id = mf.movie_id AND mf.company_id = c.company_id "
            "AND m.movie_id = d.movie_id AND d.person_id = p.person_id "
            "AND g.name = 'Drama' AND c.name = 'LLC' "
            "AND p.name = 'Stephen Gaghan'"
        ),
        user_variants=[
            "SELECT DISTINCT movie?.title? WHERE genre? = 'Drama' "
            "AND finance_company? = 'LLC' "
            "AND director_name? = 'Stephen Gaghan'",
            "SELECT DISTINCT film?.title? WHERE genre?.name? = 'Drama' "
            "AND financer_company? = 'LLC' "
            "AND director?.name? = 'Stephen Gaghan'",
            "SELECT DISTINCT movie?.title? WHERE genre_name? = 'Drama' "
            "AND financed_by? = 'LLC' "
            "AND directed_by? = 'Stephen Gaghan'",
            "SELECT DISTINCT movies?.title? WHERE category? = 'Drama' "
            "AND financer_name? = 'LLC' "
            "AND director_name? = 'Stephen Gaghan'",
            "SELECT DISTINCT movie?.title? WHERE movie_genre? = 'Drama' "
            "AND finance_company? = 'LLC' "
            "AND film_director? = 'Stephen Gaghan'",
        ],
    ),
]
