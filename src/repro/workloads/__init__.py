"""Experimental workloads: the paper's three query sets."""

from .base import WorkloadQuery
from .courses48 import COURSE_QUERIES
from .derive import derive_course_sfsql, derive_textbook_sfsql
from .sophisticated import SOPHISTICATED_QUERIES
from .textbook import TEXTBOOK_QUERIES

__all__ = [
    "COURSE_QUERIES",
    "SOPHISTICATED_QUERIES",
    "TEXTBOOK_QUERIES",
    "WorkloadQuery",
    "derive_course_sfsql",
    "derive_textbook_sfsql",
]
