"""Mechanical derivation of Schema-free SQL from gold full SQL.

The paper generates its experimental SF-SQL mechanically:

* §7.2 (textbook queries): "delete all the FK-PK join paths in WHERE
  clause and the relation names in the FROM clause, then merge all the
  column names with their corresponding relation names" — i.e. the FROM
  clause disappears and every column becomes ``Relation.column`` (when a
  relation occurs several times, its alias survives as a ``?alias``
  placeholder so the occurrences stay distinct);
* §7.3 (course queries): "deleting all the FK-PK join paths in the WHERE
  clauses and all the relations in the FROM clauses excepting the
  relations at the ends of each join path, which are typically used for
  selection or projection".

Both derivations work block-at-a-time and leave nested sub-queries to a
recursive pass.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..catalog import Catalog
from ..sqlkit import ast, parse, render
from ..core.composer import transform_block_select


def _binding_map(select: ast.Select) -> dict[str, tuple[str, Optional[str]]]:
    """binding (lower) -> (relation name, alias or None)."""
    bindings: dict[str, tuple[str, Optional[str]]] = {}
    stack = list(select.from_items)
    while stack:
        item = stack.pop()
        if isinstance(item, ast.TableRef):
            bindings[item.binding.lower()] = (item.name.text, item.alias)
        elif isinstance(item, ast.Join):
            stack.extend((item.left, item.right))
    return bindings


def _is_join_conjunct(
    conjunct: ast.Node, bindings: dict[str, tuple[str, Optional[str]]]
) -> bool:
    if not (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        return False
    left, right = conjunct.left, conjunct.right
    if left.relation is None or right.relation is None:
        return False
    left_binding = left.relation.text.lower()
    right_binding = right.relation.text.lower()
    return (
        left_binding in bindings
        and right_binding in bindings
        and left_binding != right_binding
    )


def _split_where(
    select: ast.Select, bindings
) -> tuple[list[ast.Node], list[ast.Node]]:
    """(join conjuncts, value conjuncts) of the outer WHERE."""
    joins: list[ast.Node] = []
    values: list[ast.Node] = []
    stack = [select.where] if select.where is not None else []
    while stack:
        expr = stack.pop()
        if isinstance(expr, ast.BinaryOp) and expr.op == "and":
            stack.extend((expr.left, expr.right))
        elif _is_join_conjunct(expr, bindings):
            joins.append(expr)
        else:
            values.append(expr)
    return joins, values


def _and_all(conjuncts: list[ast.Node]) -> Optional[ast.Node]:
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = ast.BinaryOp("and", combined, conjunct)
    return combined


def _referenced_bindings(select: ast.Select, value_conjuncts) -> set[str]:
    """Bindings used by selection/projection/grouping — the 'end
    relations' of §7.3."""
    roots: list[ast.Node] = [item.expr for item in select.items]
    roots.extend(value_conjuncts)
    roots.extend(select.group_by)
    if select.having is not None:
        roots.append(select.having)
    roots.extend(item.expr for item in select.order_by)
    used: set[str] = set()
    for root in roots:
        for node in _walk_block(root):
            if isinstance(node, ast.ColumnRef) and node.relation is not None:
                used.add(node.relation.text.lower())
    return used


def _walk_block(node: ast.Node):
    yield node
    for child in node.children():
        if isinstance(child, (ast.Select, ast.SetOp)):
            continue
        yield from _walk_block(child)


def _recurse_subqueries(select: ast.Select, derive) -> ast.Select:
    def rewrite(node: ast.Node):
        if isinstance(node, ast.SUBQUERY_NODES):
            return dataclasses.replace(node, query=derive(node.query))
        return None

    return transform_block_select(select, rewrite)


# ---------------------------------------------------------------------------
# §7.2: textbook derivation (no FROM at all; qualified guessed columns)
# ---------------------------------------------------------------------------


def derive_textbook_sfsql(gold_sql: str) -> str:
    """Derive the §7.2-style SF-SQL: FROM removed, join paths removed,
    every column merged with its relation name as a guess."""
    return render(_derive_textbook(parse(gold_sql)))


def _derive_textbook(query: ast.Node) -> ast.Node:
    if isinstance(query, ast.SetOp):
        return dataclasses.replace(
            query,
            left=_derive_textbook(query.left),
            right=_derive_textbook(query.right),
        )
    assert isinstance(query, ast.Select)
    select = query
    bindings = _binding_map(select)
    relation_occurrences: dict[str, int] = {}
    for relation, _alias in bindings.values():
        key = relation.lower()
        relation_occurrences[key] = relation_occurrences.get(key, 0) + 1
    _, values = _split_where(select, bindings)

    def requalify(node: ast.Node):
        if not isinstance(node, ast.ColumnRef):
            return None
        attribute = ast.NameTerm(node.attribute.text, ast.Certainty.GUESS)
        if node.relation is None:
            # "merge all the column names with their corresponding
            # relation names" (§7.2): an unqualified column belongs to
            # the block's single FROM relation
            if len(bindings) == 1:
                relation, _alias = next(iter(bindings.values()))
                return ast.ColumnRef(
                    attribute=attribute,
                    relation=ast.NameTerm(relation, ast.Certainty.GUESS),
                )
            return dataclasses.replace(node, attribute=attribute)
        binding = node.relation.text.lower()
        if binding not in bindings:
            return dataclasses.replace(node, attribute=attribute)
        relation, alias = bindings[binding]
        if relation_occurrences[relation.lower()] > 1:
            # self-join: keep occurrences apart with a bound placeholder
            qualifier = ast.NameTerm(binding, ast.Certainty.VAR)
        else:
            qualifier = ast.NameTerm(relation, ast.Certainty.GUESS)
        return ast.ColumnRef(attribute=attribute, relation=qualifier)

    rewritten = transform_block_select(select, requalify)
    rewritten = dataclasses.replace(
        rewritten,
        from_items=(),
        where=_and_all(
            [transform_block_select_expr(v, requalify) for v in values]
        ),
    )
    return _recurse_subqueries(rewritten, _derive_textbook)


def transform_block_select_expr(expr: ast.Node, fn) -> ast.Node:
    """Apply *fn* through an expression without entering sub-queries."""
    from ..core.composer import transform_block

    return transform_block(expr, fn)


# ---------------------------------------------------------------------------
# §7.3: course derivation (keep only end relations in FROM)
# ---------------------------------------------------------------------------


def derive_course_sfsql(gold_sql: str) -> str:
    """Derive the §7.3-style SF-SQL: drop FK-PK joins and every FROM
    relation that is not at the end of a join path."""
    return render(_derive_course(parse(gold_sql)))


def _derive_course(query: ast.Node) -> ast.Node:
    if isinstance(query, ast.SetOp):
        return dataclasses.replace(
            query,
            left=_derive_course(query.left),
            right=_derive_course(query.right),
        )
    assert isinstance(query, ast.Select)
    select = query
    bindings = _binding_map(select)
    _, values = _split_where(select, bindings)
    keep = _referenced_bindings(select, values)
    from_items = []
    stack = list(select.from_items)
    while stack:
        item = stack.pop(0)
        if isinstance(item, ast.TableRef):
            if item.binding.lower() in keep:
                from_items.append(item)
        elif isinstance(item, ast.Join):
            stack.extend((item.left, item.right))
    rewritten = dataclasses.replace(
        select,
        from_items=tuple(from_items),
        where=_and_all(values),
    )
    return _recurse_subqueries(rewritten, _derive_course)
