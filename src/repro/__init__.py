"""repro — a full reproduction of "Schema-free SQL" (SIGMOD 2014).

Public API quick reference::

    from repro import Catalog, Database, DataType, SchemaFreeTranslator

    catalog = Catalog("movies")
    catalog.create_relation("person", [("person_id", DataType.INTEGER),
                                       ("name", DataType.TEXT)],
                            primary_key=["person_id"])
    ...
    db = Database(catalog)
    db.insert("person", [1, "James Cameron"])
    ...
    translator = SchemaFreeTranslator(db)
    best = translator.translate_best(
        "SELECT name? WHERE director_name? = 'James Cameron'")
    print(best.sql)
    print(db.execute(best.query).rows)
"""

from .backends import (
    Backend,
    MemoryBackend,
    SqliteBackend,
    as_backend,
    reflect_catalog,
)
from .catalog import Attribute, Catalog, DataType, ForeignKey, Relation, SchemaError
from .core import (
    DEFAULT_CONFIG,
    Budget,
    BudgetExceeded,
    SchemaFreeTranslator,
    Translation,
    TranslationContext,
    TranslationError,
    TranslationStats,
    TranslatorConfig,
    View,
    ViewGraph,
    ViewJoin,
    views_from_sql,
)
from .engine import Database, EngineError, Result
from .errors import Diagnostic, ReproError
from .obs import (
    MetricsRegistry,
    RingBufferExporter,
    Tracer,
    render_trace,
)
from .server import (
    DatabaseSpec,
    ServerResponse,
    Supervisor,
    SupervisorConfig,
    WorkerCrashed,
    WorkerTimeout,
)
from .service import (
    QueryService,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    ServiceResponse,
)
from .sqlkit import SqlSyntaxError, parse, render

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "Backend",
    "Budget",
    "BudgetExceeded",
    "Catalog",
    "DEFAULT_CONFIG",
    "DataType",
    "Database",
    "DatabaseSpec",
    "Diagnostic",
    "EngineError",
    "ReproError",
    "ForeignKey",
    "MemoryBackend",
    "MetricsRegistry",
    "QueryService",
    "SqliteBackend",
    "Relation",
    "Result",
    "RingBufferExporter",
    "Tracer",
    "render_trace",
    "SchemaError",
    "ServerResponse",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceResponse",
    "SchemaFreeTranslator",
    "SqlSyntaxError",
    "Supervisor",
    "SupervisorConfig",
    "WorkerCrashed",
    "WorkerTimeout",
    "Translation",
    "TranslationContext",
    "TranslationError",
    "TranslationStats",
    "TranslatorConfig",
    "View",
    "ViewGraph",
    "ViewJoin",
    "as_backend",
    "parse",
    "reflect_catalog",
    "render",
    "views_from_sql",
]
