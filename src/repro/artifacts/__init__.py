"""Persistent, content-addressed translation-context artifacts.

The paper's offline preparation (schema graph + attribute statistics)
paid once, kept: a built :class:`~repro.core.context.TranslationContext`
is snapshotted into a versioned, checksummed ``*.rpra`` file keyed by
(schema fingerprint, data_version, config digest, format version), so
cold start across a worker fleet collapses to one ``mmap`` attach per
process instead of one full rebuild each.  docs/ARTIFACTS.md is the
format, keying, GC and fallback-contract reference.

Public surface::

    store = ArtifactStore(directory)
    path = ensure_artifact(backend, store, config, warmup=queries)
    context, error = load_or_build_context(backend, path, config)

A bad artifact (truncated, corrupted, version-skewed, mis-keyed) is a
typed :class:`ArtifactError` and a fresh build — never a wrong answer,
never a failed query.
"""

from .api import (
    build_artifact,
    ensure_artifact,
    load_context,
    load_or_build_context,
    register_metrics,
)
from .errors import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactKeyMismatch,
    ArtifactVersionSkew,
)
from .format import FORMAT_VERSION, ArtifactReader, LazySampleTable, encode
from .store import (
    DEFAULT_DISK_BUDGET,
    ArtifactStore,
    StoredArtifact,
    artifact_key,
)

__all__ = [
    "ArtifactCorrupt",
    "ArtifactError",
    "ArtifactKeyMismatch",
    "ArtifactReader",
    "ArtifactStore",
    "ArtifactVersionSkew",
    "DEFAULT_DISK_BUDGET",
    "FORMAT_VERSION",
    "LazySampleTable",
    "StoredArtifact",
    "artifact_key",
    "build_artifact",
    "encode",
    "ensure_artifact",
    "load_context",
    "load_or_build_context",
    "register_metrics",
]
