"""Build, publish and load translation-context artifacts.

Three verbs, all keyed by :func:`~repro.artifacts.store.artifact_key`:

* :func:`build_artifact` — construct a context from the live backend,
  pre-materialise every column sample (and optionally warm the memo
  tables by translating a workload), then encode and atomically
  publish the snapshot;
* :func:`load_context` — open, verify and key-check one artifact file
  and attach it as a ready :class:`~repro.core.context.
  TranslationContext` — raises :class:`~repro.artifacts.errors.
  ArtifactError` on *any* disappointment, so callers wrap it in the
  fallback contract (catch, log the diagnostic, build fresh);
* :func:`ensure_artifact` — the supervisor/CLI entry point: return the
  published path for the backend's current key, building only on miss.

Every verb traces (``artifact.build`` / ``artifact.load`` /
``artifact.verify`` spans) and counts
(``repro_artifact_{builds,loads,hits,misses,evictions}_total``,
``repro_artifact_load_seconds``) when handed a tracer/registry —
cataloged in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Optional

from ..core.config import DEFAULT_CONFIG, TranslatorConfig
from ..core.context import TranslationContext
from ..core.rescache import schema_fingerprint
from ..core.similarity import SimilarityEvaluator
from ..obs import NULL_TRACER
from .errors import ArtifactError
from .format import ArtifactReader, encode
from .store import ArtifactStore, artifact_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.base import Backend
    from ..obs import MetricsRegistry, Tracer


def register_metrics(metrics: "MetricsRegistry") -> dict:
    """Idempotently register the artifact instrument set."""
    return {
        "builds": metrics.counter(
            "repro_artifact_builds_total",
            "context artifacts built and published",
        ),
        "loads": metrics.counter(
            "repro_artifact_loads_total",
            "contexts successfully attached from an artifact",
        ),
        "hits": metrics.counter(
            "repro_artifact_hits_total",
            "ensure_artifact calls answered by a published artifact",
        ),
        "misses": metrics.counter(
            "repro_artifact_misses_total",
            "ensure_artifact calls that had to build (includes "
            "load-time fallbacks to a fresh build, labelled reason)",
        ),
        "evictions": metrics.counter(
            "repro_artifact_evictions_total",
            "artifacts deleted by the LRU disk-budget sweep",
        ),
        "load_seconds": metrics.histogram(
            "repro_artifact_load_seconds",
            "wall-clock seconds to verify and attach one artifact",
        ),
    }


def _count(metrics: Optional["MetricsRegistry"], name: str, **labels) -> None:
    if metrics is not None:
        register_metrics(metrics)[name].inc(**labels)


def build_artifact(
    backend: "Backend",
    store: ArtifactStore,
    config: TranslatorConfig = DEFAULT_CONFIG,
    *,
    warmup: Iterable[str] = (),
    warmup_top_k: Optional[int] = None,
    tracer: "Tracer" = NULL_TRACER,
    metrics: Optional["MetricsRegistry"] = None,
) -> str:
    """Build the backend's context, snapshot it, publish; returns the
    published path.

    ``warmup`` is an optional iterable of schema-free SQL queries: each
    is translated against the building context so the artifact carries
    the workload's similarity/condition/network memos, not just the
    schema half.  ``warmup_top_k`` should match the k queries will be
    *served* with — the network-memo signature includes k, so warming
    at a different k still helps (samples, tree sims, conditions) but
    misses the generated-network table.  Warmup failures are swallowed
    — a query the workload cannot translate merely leaves its memo
    entries unbuilt.  All column samples are materialised regardless,
    so even an unwarmed artifact spares every worker the per-column
    backend scans.
    """
    key = artifact_key(
        schema_fingerprint(backend.catalog), backend.data_version, config
    )
    with tracer.span(
        "artifact.build", key=key, catalog=backend.catalog.name
    ) as span:
        context = TranslationContext(backend, config)
        for relation in context.relations:
            for attribute in relation.attributes:
                context.column_sample(relation.name, attribute.name)
        warmed = 0
        if warmup:
            from ..core.translator import SchemaFreeTranslator

            translator = SchemaFreeTranslator(
                backend, config, context=context
            )
            for query in warmup:
                try:
                    translator.translate(query, top_k=warmup_top_k)
                    warmed += 1
                except Exception:  # pragma: no cover - workload-dependent
                    # warmup is best-effort: an untranslatable query
                    # costs memo coverage, never the build; the serving
                    # path re-raises its own errors per query
                    continue
        schema_state, memos = context.export_state()
        image = encode(schema_state, memos, backend.data_version, config)
        path = store.put(key, image)
        evicted = store.gc()
        span.set(
            bytes=len(image),
            samples=len(memos.samples),
            warmed=warmed,
            evicted=len(evicted),
        )
    _count(metrics, "builds")
    if evicted:
        _count(metrics, "evictions", amount=len(evicted))
    return path


def load_context(
    path: str,
    backend: "Backend",
    config: TranslatorConfig = DEFAULT_CONFIG,
    *,
    tracer: "Tracer" = NULL_TRACER,
    metrics: Optional["MetricsRegistry"] = None,
) -> TranslationContext:
    """Attach *path* as a ready context for *backend*.

    Raises :class:`ArtifactError` (corrupt / version skew / key
    mismatch) instead of ever returning a context that could answer
    differently from a fresh build — the caller owns the fallback.
    """
    started = time.perf_counter()
    with tracer.span("artifact.load", path=path) as span:
        with tracer.span("artifact.verify", path=path):
            reader = ArtifactReader(path)
            reader.check_key(
                schema_fingerprint(backend.catalog),
                backend.data_version,
                config,
            )
        schema_state = reader.schema_state(backend.catalog)
        context = TranslationContext.from_artifact(
            backend,
            config,
            schema_state,
            sample_source=reader.sample_table(),
        )
        evaluator = SimilarityEvaluator(backend, config, context)
        context.seed_memos(reader.memo_state(context, evaluator))
        span.set(
            samples=len(reader.header.get("sample_index", ())),
            data_version=reader.data_version,
        )
    _count(metrics, "loads")
    if metrics is not None:
        register_metrics(metrics)["load_seconds"].observe(
            time.perf_counter() - started
        )
    return context


def ensure_artifact(
    backend: "Backend",
    store: ArtifactStore,
    config: TranslatorConfig = DEFAULT_CONFIG,
    *,
    warmup: Iterable[str] = (),
    tracer: "Tracer" = NULL_TRACER,
    metrics: Optional["MetricsRegistry"] = None,
) -> str:
    """The published artifact path for the backend's current key,
    building (once) on miss."""
    key = artifact_key(
        schema_fingerprint(backend.catalog), backend.data_version, config
    )
    existing = store.get(key)
    if existing is not None:
        _count(metrics, "hits")
        return existing
    _count(metrics, "misses", reason="absent")
    return build_artifact(
        backend, store, config, warmup=warmup, tracer=tracer, metrics=metrics
    )


def load_or_build_context(
    backend: "Backend",
    path: Optional[str],
    config: TranslatorConfig = DEFAULT_CONFIG,
    *,
    tracer: "Tracer" = NULL_TRACER,
    metrics: Optional["MetricsRegistry"] = None,
) -> tuple[TranslationContext, Optional[ArtifactError]]:
    """The fallback contract in one call: attach *path* if possible,
    else build fresh; returns ``(context, error-or-None)`` so callers
    can surface the diagnostic without ever failing a query."""
    if path is not None:
        try:
            return load_context(
                path, backend, config, tracer=tracer, metrics=metrics
            ), None
        except ArtifactError as error:
            _count(metrics, "misses", reason=type(error).__name__)
            return TranslationContext(backend, config), error
    return TranslationContext(backend, config), None
