"""Checksum verification for artifact files.

One digest covers everything after the fixed file prelude — the JSON
header *and* every payload section — so a flipped bit anywhere in the
file fails verification before a single pickled byte is interpreted.
SHA-256 via :mod:`hashlib`; the digest is computed over the mapped
buffer in one pass (the artifact is at most a few megabytes, so the
verify cost is microseconds against a ~200 ms fresh context build).
"""

from __future__ import annotations

import hashlib

from .errors import ArtifactCorrupt

#: bytes of the SHA-256 digest stored in the file prelude
DIGEST_SIZE = 32


def digest(payload: bytes | memoryview) -> bytes:
    """SHA-256 of *payload* (header JSON + sections)."""
    return hashlib.sha256(payload).digest()


def verify(path: str, stored: bytes, payload: bytes | memoryview) -> None:
    """Raise :class:`ArtifactCorrupt` unless *payload* hashes to
    *stored* — called once per load, before any section is decoded."""
    actual = digest(payload)
    if actual != stored:
        raise ArtifactCorrupt(
            path,
            f"checksum mismatch: stored {stored.hex()[:16]}…, "
            f"computed {actual.hex()[:16]}…",
        )
