"""Binary layout of a translation-context artifact (``*.rpra``).

One file persists the buildable half of a :class:`~repro.core.context.
TranslationContext` plus a snapshot of its memo tables, so a worker
process attaches in milliseconds instead of rebuilding neighbor lists,
q-gram indexes, FK path tables, column samples and similarity memos
from the backend.  Layout (integers little-endian)::

    offset  size  field
    0       8     MAGIC  (b"REPROART")
    8       2     format version (u16)
    10      32    SHA-256 over everything after this field
    42      4     JSON header length (u32)
    46      n     JSON header
    46+n    ...   payload sections

The header carries the content-address key — ``schema_fingerprint``,
``data_version``, ``config_digest``, ``format_version`` — plus a
``sections`` offset table and a ``sample_index`` mapping each sampled
column to its byte range inside the ``samples`` section.  Offsets are
relative to the payload start, so the header can be rewritten without
touching payload bytes.

Three payload sections:

``schema``
    The pickled :class:`~repro.core.context.ContextSchemaState`.
``memos``
    The pickled :class:`~repro.core.context.ContextMemoState` with its
    ``samples`` dict emptied (samples get their own lazy section).
``samples``
    Concatenated per-column pickle blobs, decoded individually on
    first use through :class:`LazySampleTable` — attaching a context
    is O(header), not O(data), and the ``mmap`` backing means N
    workers on one host share the page cache for one artifact.

Pickling uses the *persistent id* protocol to cut the object graph at
runtime boundaries: memoized extended view graphs reference the live
context, its similarity evaluator, the catalog, and interned
:class:`~repro.catalog.Relation` objects (identity-compared across the
pipeline), none of which belong in the file.  Each is replaced by a
tag on write and resolved against the *loading* process's live objects
on read, which is also what makes the file safe to load into a
different process than built it.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import pickle
import struct
from dataclasses import fields
from typing import Any, Optional

from ..catalog import Catalog, Relation, SchemaError
from ..core.config import TranslatorConfig
from ..core.context import (
    ContextMemoState,
    ContextSchemaState,
    SampleSource,
    TranslationContext,
)
from ..core.resilience import Budget
from ..core.similarity import SimilarityEvaluator
from ..core.view_graph import ViewInstance, XEdge
from .errors import ArtifactCorrupt, ArtifactKeyMismatch, ArtifactVersionSkew
from .integrity import DIGEST_SIZE, digest, verify

MAGIC = b"REPROART"
#: bump on any layout or pickling-scheme change; a mismatch is
#: :class:`ArtifactVersionSkew` and the loader rebuilds fresh
FORMAT_VERSION = 1

_PRELUDE = struct.Struct(f"<8sH{DIGEST_SIZE}sI")

#: config fields that do not affect translation outcomes (they bound the
#: per-process result cache, which is never persisted) — excluded from
#: the config digest so serving configs that differ only in cache
#: budgets share artifacts
_CONFIG_DIGEST_EXCLUDE = frozenset(
    {"result_cache_size", "result_cache_bytes"}
)


def config_digest(config: TranslatorConfig) -> str:
    """Hex digest of every config field that shapes translation state."""
    parts = [
        f"{f.name}={getattr(config, f.name)!r}"
        for f in fields(config)
        if f.name not in _CONFIG_DIGEST_EXCLUDE
    ]
    return hashlib.sha256(";".join(sorted(parts)).encode()).hexdigest()


# ---------------------------------------------------------------------------
# persistent-id pickling
# ---------------------------------------------------------------------------


#: frozen dataclasses whose ``__dict__`` accumulates lazily-computed
#: caches (``XEdge._key``, ``ViewInstance._edge_keys``) that are pure
#: functions of the declared fields — persisted stripped, rebuilt on
#: first use, which measurably cuts memo-section decode time.
#: :class:`~repro.core.join_network.JoinNetwork` is deliberately *not*
#: here: its ``_best_weight`` cache is the one we want in the file.
_STRIP_CACHES = (XEdge, ViewInstance)


def _rebuild_stripped(cls: type, state: dict) -> Any:
    obj = object.__new__(cls)
    obj.__dict__.update(state)  # bypasses the frozen-dataclass guard
    return obj


class _ArtifactPickler(pickle.Pickler):
    """Cuts the memo object graph at runtime boundaries.

    A memoized :class:`~repro.core.view_graph.ExtendedViewGraph` holds
    the live context (which holds a lock and the backend), the
    evaluator, sometimes an exhausted budget, the catalog, and interned
    relations.  All are replaced by tags; everything else (frozen
    dataclasses, join networks, plain dicts) pickles by value.
    """

    def reducer_override(self, obj: Any) -> Any:
        cls = type(obj)
        if cls in _STRIP_CACHES:
            state = {f.name: getattr(obj, f.name) for f in fields(cls)}
            return (_rebuild_stripped, (cls, state))
        return NotImplemented

    def persistent_id(self, obj: Any) -> Any:
        if isinstance(obj, TranslationContext):
            return "context"
        if isinstance(obj, SimilarityEvaluator):
            return "evaluator"
        if isinstance(obj, Budget):
            # the translator nulls graph budgets before memoizing; any
            # survivor is exhausted serving state, not context state
            return "budget"
        if isinstance(obj, Catalog):
            return "catalog"
        if isinstance(obj, Relation):
            return ("relation", obj.key)
        return None


class _ArtifactUnpickler(pickle.Unpickler):
    """Resolves the pickler's tags against the loading process."""

    def __init__(
        self,
        file: io.BytesIO,
        *,
        catalog: Catalog,
        context: Optional[TranslationContext] = None,
        evaluator: Optional[SimilarityEvaluator] = None,
    ) -> None:
        super().__init__(file)
        self._catalog = catalog
        self._context = context
        self._evaluator = evaluator

    def persistent_load(self, pid: Any) -> Any:
        if pid == "context":
            if self._context is None:
                raise pickle.UnpicklingError(
                    "schema section references the live context"
                )
            return self._context
        if pid == "evaluator":
            if self._evaluator is None:
                raise pickle.UnpicklingError(
                    "schema section references the live evaluator"
                )
            return self._evaluator
        if pid == "budget":
            return None
        if pid == "catalog":
            return self._catalog
        if isinstance(pid, tuple) and len(pid) == 2 and pid[0] == "relation":
            return self._catalog.relation(pid[1])
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _dumps(obj: Any) -> bytes:
    buffer = io.BytesIO()
    _ArtifactPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def _loads(
    payload: bytes,
    *,
    catalog: Catalog,
    context: Optional[TranslationContext] = None,
    evaluator: Optional[SimilarityEvaluator] = None,
) -> Any:
    return _ArtifactUnpickler(
        io.BytesIO(payload),
        catalog=catalog,
        context=context,
        evaluator=evaluator,
    ).load()


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


class MemoizedGraph:
    """Persisted stand-in for a memoized ExtendedViewGraph.

    On a network-memo hit the translator reads exactly two things from
    the cached graph: ``view_instances`` (to score each network via
    ``JoinNetwork.best_weight``) and ``summary()`` (span counters).
    Everything else — nodes, edges, adjacency, tree mappings, the
    evaluator — is construction state the completed search no longer
    needs, and pickling it dominated artifact decode time.

    The graph's *original* ``view_instances`` list rides along **by
    reference**, not copied: each memoized ``JoinNetwork`` carries a
    ``_best_weight`` cache keyed on that list's identity (filled while
    the builder served the warmup workload), and pickle's memo table
    preserves object identity within one dump — so a loaded worker's
    very first ``best_weight`` call is a cache hit instead of re-running
    the exponential tiling search.
    """

    __slots__ = ("view_instances", "counts")

    def __init__(self, view_instances, counts) -> None:
        self.view_instances = (
            view_instances
            if isinstance(view_instances, list)
            else list(view_instances)
        )
        self.counts = dict(counts)

    def summary(self) -> dict[str, int]:
        return dict(self.counts)

    def __getstate__(self):
        return (self.view_instances, self.counts)

    def __setstate__(self, state) -> None:
        self.view_instances, self.counts = state


def _slim_entry(xgraph: Any, networks: tuple) -> tuple[MemoizedGraph, tuple]:
    """Slim one network-memo entry for persistence.

    Beyond swapping the graph for a :class:`MemoizedGraph`, the
    instance list is pruned to the views *contained* in at least one of
    the entry's memoized networks — ``best_weight`` discards everything
    else on its first line, and since a memo hit only ever scores this
    entry's networks against this entry's list, dropped instances are
    unreachable.  Each network's ``_best_weight`` cache is then primed
    against the pruned list, so the identity the file preserves is the
    one a loaded worker will actually pass.
    """
    if isinstance(xgraph, MemoizedGraph):  # re-encoding a loaded context
        return xgraph, networks
    containers = [
        (
            frozenset(edge.key for edge in network.all_edges),
            set(network.nodes),
        )
        for network in networks
    ]
    kept = [
        instance
        for instance in xgraph.view_instances
        if any(
            instance.edge_keys <= edge_keys
            and all(node.node_id in node_ids for node in instance.nodes)
            for edge_keys, node_ids in containers
        )
    ]
    slim = MemoizedGraph(kept, xgraph.summary())
    for network in networks:
        network.best_weight(slim.view_instances)
    return slim, networks


def encode(
    schema_state: ContextSchemaState,
    memos: ContextMemoState,
    data_version: int,
    config: TranslatorConfig,
) -> bytes:
    """Serialize one context snapshot to the full file image."""
    sample_blobs: list[bytes] = []
    sample_index: list[list[Any]] = []
    offset = 0
    for (relation, attribute), sample in sorted(memos.samples.items()):
        blob = pickle.dumps(sample, protocol=pickle.HIGHEST_PROTOCOL)
        sample_index.append([relation, attribute, offset, len(blob)])
        sample_blobs.append(blob)
        offset += len(blob)
    samples_section = b"".join(sample_blobs)
    schema_section = _dumps(schema_state)
    memos_section = _dumps(
        ContextMemoState(
            samples={},
            tree_sims=memos.tree_sims,
            conditions=memos.conditions,
            networks={
                signature: _slim_entry(xgraph, networks_)
                for signature, (xgraph, networks_) in memos.networks.items()
            },
        )
    )
    sections: dict[str, list[int]] = {}
    payload_parts: list[bytes] = []
    cursor = 0
    for name, section in (
        ("schema", schema_section),
        ("memos", memos_section),
        ("samples", samples_section),
    ):
        sections[name] = [cursor, len(section)]
        payload_parts.append(section)
        cursor += len(section)
    header = json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "schema_fingerprint": schema_state.schema_fingerprint,
            "data_version": data_version,
            "config_digest": config_digest(config),
            "sections": sections,
            "sample_index": sample_index,
        },
        separators=(",", ":"),
    ).encode()
    hashed = header + b"".join(payload_parts)
    prelude = _PRELUDE.pack(MAGIC, FORMAT_VERSION, digest(hashed), len(header))
    return prelude + hashed


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


class LazySampleTable(SampleSource):
    """Column samples decoded one-at-a-time from the mapped payload.

    Holds the reader (and through it the ``mmap``) alive; each ``get``
    decodes one column's blob, so a worker that only ever touches a few
    columns never pays for the rest.
    """

    def __init__(self, reader: "ArtifactReader") -> None:
        self._reader = reader
        self._index = {
            (relation, attribute): (offset, length)
            for relation, attribute, offset, length in reader.header[
                "sample_index"
            ]
        }

    def keys(self) -> list[tuple[str, str]]:
        return list(self._index)

    def get(self, key: tuple[str, str]) -> Optional[list[Any]]:
        entry = self._index.get(key)
        if entry is None:
            return None
        offset, length = entry
        blob = self._reader.section_bytes("samples", offset, length)
        try:
            sample = pickle.loads(blob)
        except Exception as exc:  # re-raises as a typed ArtifactError
            raise ArtifactCorrupt(
                self._reader.path, f"undecodable sample blob for {key}: {exc}"
            ) from exc
        if not isinstance(sample, list):
            raise ArtifactCorrupt(
                self._reader.path, f"sample blob for {key} is not a list"
            )
        return sample


class ArtifactReader:
    """One opened, checksum-verified artifact file.

    ``mmap``-backed where the platform allows (falling back to a plain
    read), verified in one pass before any pickled byte is interpreted.
    Keep the reader alive as long as a :class:`LazySampleTable` handed
    out by :meth:`sample_table` is in use.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            with open(path, "rb") as handle:
                try:
                    self._buffer: Any = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except (ValueError, OSError):
                    # zero-length or unmappable file: fall back to bytes
                    # (a truncated prelude still fails cleanly below)
                    handle.seek(0)
                    self._buffer = handle.read()
        except OSError as exc:
            raise ArtifactCorrupt(path, f"unreadable: {exc}") from exc
        view = memoryview(self._buffer)
        if len(view) < _PRELUDE.size:
            raise ArtifactCorrupt(
                path, f"truncated prelude ({len(view)} bytes)"
            )
        magic, version, stored, header_len = _PRELUDE.unpack_from(view)
        if magic != MAGIC:
            raise ArtifactCorrupt(path, f"bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise ArtifactVersionSkew(
                path,
                f"format version {version} (this build reads "
                f"{FORMAT_VERSION})",
            )
        hashed = view[_PRELUDE.size :]
        if header_len > len(hashed):
            raise ArtifactCorrupt(
                path,
                f"header length {header_len} exceeds file "
                f"({len(hashed)} bytes past prelude)",
            )
        verify(path, stored, hashed)
        try:
            self.header: dict[str, Any] = json.loads(
                bytes(hashed[:header_len])
            )
        except ValueError as exc:
            raise ArtifactCorrupt(path, f"undecodable header: {exc}") from exc
        self._payload = hashed[header_len:]
        for name in ("schema", "memos", "samples"):
            entry = self.header.get("sections", {}).get(name)
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or entry[0] + entry[1] > len(self._payload)
            ):
                raise ArtifactCorrupt(
                    path, f"missing or out-of-range section {name!r}"
                )

    # -- keying --------------------------------------------------------
    @property
    def schema_fingerprint(self) -> str:
        return str(self.header["schema_fingerprint"])

    @property
    def data_version(self) -> int:
        return int(self.header["data_version"])

    @property
    def config_digest(self) -> str:
        return str(self.header["config_digest"])

    def check_key(
        self,
        schema_fingerprint: str,
        data_version: int,
        config: TranslatorConfig,
    ) -> None:
        """Raise :class:`ArtifactKeyMismatch` unless this file was built
        for exactly the live backend's (schema, data epoch, config)."""
        if self.schema_fingerprint != schema_fingerprint:
            raise ArtifactKeyMismatch(
                self.path,
                f"schema fingerprint {self.schema_fingerprint[:12]}… does "
                f"not match live catalog {schema_fingerprint[:12]}…",
            )
        if self.data_version != data_version:
            raise ArtifactKeyMismatch(
                self.path,
                f"built at data_version {self.data_version}, backend is at "
                f"{data_version}",
            )
        live = config_digest(config)
        if self.config_digest != live:
            raise ArtifactKeyMismatch(
                self.path,
                f"config digest {self.config_digest[:12]}… does not match "
                f"live config {live[:12]}…",
            )

    # -- sections ------------------------------------------------------
    def section_bytes(self, name: str, offset: int = 0, length: int = -1) -> bytes:
        start, size = self.header["sections"][name]
        if length < 0:
            length = size
        if offset + length > size:
            raise ArtifactCorrupt(
                self.path, f"out-of-range read in section {name!r}"
            )
        return bytes(self._payload[start + offset : start + offset + length])

    def schema_state(self, catalog: Catalog) -> ContextSchemaState:
        """Decode the buildable half against the live *catalog*."""
        try:
            state = _loads(self.section_bytes("schema"), catalog=catalog)
        except (ArtifactCorrupt, ArtifactKeyMismatch):
            raise
        except SchemaError as exc:
            # a relation tag that the live catalog cannot resolve means
            # the file belongs to a different schema than its header
            # claims — corrupt, not merely mismatched
            raise ArtifactCorrupt(
                self.path, f"schema section references {exc}"
            ) from exc
        except Exception as exc:  # re-raises as a typed ArtifactError
            raise ArtifactCorrupt(
                self.path, f"undecodable schema section: {exc}"
            ) from exc
        if not isinstance(state, ContextSchemaState):
            raise ArtifactCorrupt(
                self.path,
                f"schema section decoded to {type(state).__name__}",
            )
        return state

    def memo_state(
        self, context: TranslationContext, evaluator: SimilarityEvaluator
    ) -> ContextMemoState:
        """Decode the memo snapshot against the freshly-attached
        *context* (memoized view graphs reference it)."""
        try:
            memos = _loads(
                self.section_bytes("memos"),
                catalog=context.database.catalog,
                context=context,
                evaluator=evaluator,
            )
        except (ArtifactCorrupt, ArtifactKeyMismatch):
            raise
        except Exception as exc:  # re-raises as a typed ArtifactError
            raise ArtifactCorrupt(
                self.path, f"undecodable memo section: {exc}"
            ) from exc
        if not isinstance(memos, ContextMemoState):
            raise ArtifactCorrupt(
                self.path,
                f"memo section decoded to {type(memos).__name__}",
            )
        return memos

    def sample_table(self) -> LazySampleTable:
        try:
            return LazySampleTable(self)
        except ArtifactCorrupt:
            raise
        except Exception as exc:  # re-raises as a typed ArtifactError
            raise ArtifactCorrupt(
                self.path, f"malformed sample index: {exc}"
            ) from exc

    def close(self) -> None:
        """Release the mapping (safe only once no LazySampleTable handed
        out by this reader will be used again)."""
        if isinstance(self._buffer, mmap.mmap):
            self._payload = b""
            self._buffer.close()
