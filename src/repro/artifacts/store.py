"""Content-addressed on-disk artifact store with an LRU disk budget.

Layout: one flat directory, one ``<key>.rpra`` file per artifact, where
the key is a digest over (schema fingerprint, data_version, format
version, config digest).  Addressing by content key gives the rescache
invalidation contract for free — a ``data_version`` bump or a schema
change produces a *different* key, so stale artifacts are never loaded,
only left behind to be garbage-collected.

Publication is atomic: the image is written to a same-directory temp
file, fsynced, then ``os.replace``d into place, so a reader never
observes a half-written artifact and concurrent builders of the same
key converge on identical bytes (last rename wins, both files valid).

:meth:`ArtifactStore.gc` enforces a byte budget by deleting the
least-recently-*used* files first — every :meth:`get` hit re-touches
the file's mtime, so hot artifacts survive and abandoned epochs age
out.  GC runs opportunistically after every :meth:`put`.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass

from ..core.config import TranslatorConfig
from .format import FORMAT_VERSION, config_digest

#: artifact file suffix (repro artifact)
SUFFIX = ".rpra"

#: default disk budget: generous for the bundled datasets (each
#: artifact is single-digit MB) while still bounding a long-lived
#: artifact directory shared by many schema epochs
DEFAULT_DISK_BUDGET = 256 << 20


def artifact_key(
    schema_fingerprint: str, data_version: int, config: TranslatorConfig
) -> str:
    """The content-address of one (schema, data epoch, config) triple."""
    material = (
        f"{schema_fingerprint}\n{data_version}\n{FORMAT_VERSION}\n"
        f"{config_digest(config)}"
    )
    return hashlib.sha256(material.encode()).hexdigest()[:40]


@dataclass(frozen=True)
class StoredArtifact:
    """One directory entry, as reported by :meth:`ArtifactStore.list`."""

    key: str
    path: str
    size: int
    mtime: float


class ArtifactStore:
    """A directory of published artifacts plus its byte budget."""

    def __init__(
        self, directory: str, max_bytes: int = DEFAULT_DISK_BUDGET
    ) -> None:
        self.directory = directory
        self.max_bytes = max_bytes
        os.makedirs(directory, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, key + SUFFIX)

    def get(self, key: str) -> str | None:
        """The published path for *key*, or None; a hit re-touches the
        file so the LRU sweep sees it as recently used."""
        path = self.path_for(key)
        if not os.path.exists(path):
            return None
        try:
            os.utime(path)
        except OSError:
            # a concurrent GC may have deleted it between the checks;
            # treat as a miss rather than racing the sweep
            return None if not os.path.exists(path) else path
        return path

    def put(self, key: str, image: bytes) -> str:
        """Atomically publish *image* under *key*; returns the path."""
        path = self.path_for(key)
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-" + key[:12], suffix=SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(image)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return path

    def list(self) -> list[StoredArtifact]:
        """Published artifacts, most recently used first."""
        entries: list[StoredArtifact] = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(SUFFIX) or name.startswith(".tmp-"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append(
                StoredArtifact(
                    key=name[: -len(SUFFIX)],
                    path=path,
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                )
            )
        entries.sort(key=lambda entry: entry.mtime, reverse=True)
        return entries

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.list())

    def gc(self, max_bytes: int | None = None) -> list[StoredArtifact]:
        """Delete least-recently-used artifacts until the directory fits
        the byte budget; returns what was evicted."""
        budget = self.max_bytes if max_bytes is None else max_bytes
        entries = self.list()
        total = sum(entry.size for entry in entries)
        evicted: list[StoredArtifact] = []
        while total > budget and entries:
            victim = entries.pop()  # oldest mtime last
            try:
                os.unlink(victim.path)
            except OSError:
                continue
            total -= victim.size
            evicted.append(victim)
        return evicted
