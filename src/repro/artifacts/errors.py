"""Typed failure taxonomy for the artifact subsystem.

Every way an on-disk artifact can disappoint a loader maps to one
subclass of :class:`ArtifactError`, and every subclass carries a
:class:`~repro.errors.Diagnostic` naming the file and the reason.  The
contract (docs/ARTIFACTS.md) is that these errors are **advisory**: the
loading tiers (`QueryService`, the serving workers, the CLI) catch
``ArtifactError``, record the diagnostic, and fall back to building the
context fresh from the backend — a bad artifact can cost a cold start,
never a wrong answer and never a failed query.
"""

from __future__ import annotations

from ..errors import Diagnostic, ReproError


def _diagnostic(path: str, reason: str) -> Diagnostic:
    return Diagnostic(
        stage="artifact",
        message=reason,
        detail={
            "artifact": path,
            "recovery": "fresh context build (automatic); delete the "
            "file or rebuild with `repro artifacts build`",
        },
    )


class ArtifactError(ReproError):
    """Root of the artifact failure taxonomy (always recoverable)."""

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(
            f"{reason} ({path})", diagnostic=_diagnostic(path, reason)
        )
        self.path = path
        self.reason = reason


class ArtifactCorrupt(ArtifactError):
    """Truncated file, bad magic, checksum mismatch, or undecodable
    section — the bytes cannot be trusted."""


class ArtifactVersionSkew(ArtifactError):
    """The file's format version differs from this build's
    :data:`~repro.artifacts.format.FORMAT_VERSION`; the layout may have
    changed, so nothing past the header is interpreted."""


class ArtifactKeyMismatch(ArtifactError):
    """The artifact is intact but keyed to a different (schema
    fingerprint, data_version, config digest) than the live backend —
    the rescache invalidation contract applied to disk: a bumped
    ``data_version`` or changed schema simply misses."""
