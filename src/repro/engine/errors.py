"""Execution-engine error types."""

from ..errors import ReproError


class EngineError(ReproError, RuntimeError):
    """Base class for execution errors."""


class NameResolutionError(EngineError):
    """An identifier could not be resolved, or was ambiguous."""


class ExecutionError(EngineError):
    """A query failed during evaluation (type error, bad aggregate, ...)."""


class IntegrityError(EngineError):
    """A tuple violated a primary-key or foreign-key constraint."""
