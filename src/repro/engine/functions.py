"""Scalar and aggregate SQL functions for the execution engine.

NULL handling follows the SQL standard: scalar functions return NULL when
any required argument is NULL (except COALESCE / IFNULL); aggregates skip
NULL inputs, with COUNT(*) counting rows and empty-input SUM/AVG/MIN/MAX
returning NULL while COUNT returns 0.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Optional, Sequence

from .errors import ExecutionError

# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _null_if_none(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapper


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _substr(value: str, start: int, length: Optional[int] = None) -> str:
    # SQL substr is 1-based
    begin = max(start - 1, 0)
    if length is None:
        return value[begin:]
    return value[begin : begin + length]


def _round(value: float, digits: int = 0) -> float:
    return round(value, digits)


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "upper": _null_if_none(lambda s: s.upper()),
    "lower": _null_if_none(lambda s: s.lower()),
    "length": _null_if_none(len),
    "abs": _null_if_none(abs),
    "round": _null_if_none(_round),
    "floor": _null_if_none(math.floor),
    "ceil": _null_if_none(math.ceil),
    "sqrt": _null_if_none(math.sqrt),
    "substr": _null_if_none(_substr),
    "substring": _null_if_none(_substr),
    "trim": _null_if_none(lambda s: s.strip()),
    "concat": _null_if_none(lambda *parts: "".join(str(p) for p in parts)),
    "coalesce": _coalesce,
    "ifnull": _coalesce,
    "nullif": _null_if_none(lambda a, b: None if a == b else a),
}


def call_scalar(name: str, args: Sequence[Any]) -> Any:
    try:
        fn = SCALAR_FUNCTIONS[name]
    except KeyError:
        raise ExecutionError(f"unknown function {name!r}") from None
    try:
        return fn(*args)
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"{name}() failed: {exc}") from exc


# ---------------------------------------------------------------------------
# aggregate functions
# ---------------------------------------------------------------------------

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def is_aggregate(name: str) -> bool:
    return name in AGGREGATE_NAMES


def aggregate(name: str, values: Iterable[Any], distinct: bool = False) -> Any:
    """Compute aggregate *name* over *values* (NULLs already included).

    For ``count`` the caller passes a sentinel non-None value per row when
    counting rows (``COUNT(*)``), or column values when counting a column.
    """
    present = [v for v in values if v is not None]
    if distinct:
        present = list(dict.fromkeys(present))
    if name == "count":
        return len(present)
    if not present:
        return None
    if name == "sum":
        return sum(present)
    if name == "avg":
        return sum(present) / len(present)
    if name == "min":
        return min(present)
    if name == "max":
        return max(present)
    raise ExecutionError(f"unknown aggregate {name!r}")  # pragma: no cover
