"""In-memory relational execution engine (the RDBMS substrate)."""

from .database import Database
from .errors import EngineError, ExecutionError, IntegrityError, NameResolutionError
from .evaluator import Evaluator, Scope, compare, like_match
from .executor import Executor, Result
from .functions import AGGREGATE_NAMES, SCALAR_FUNCTIONS, aggregate, is_aggregate
from .io import (
    catalog_from_dict,
    catalog_to_dict,
    export_to_sqlite,
    load_database,
    save_database,
)

__all__ = [
    "AGGREGATE_NAMES",
    "Database",
    "EngineError",
    "Evaluator",
    "ExecutionError",
    "Executor",
    "IntegrityError",
    "NameResolutionError",
    "Result",
    "SCALAR_FUNCTIONS",
    "Scope",
    "aggregate",
    "catalog_from_dict",
    "catalog_to_dict",
    "export_to_sqlite",
    "load_database",
    "save_database",
    "compare",
    "is_aggregate",
    "like_match",
]
