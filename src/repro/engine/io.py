"""Saving and loading databases as portable JSON.

A saved database is a directory with one ``schema.json`` (relations,
attributes, keys) and one ``<relation>.jsonl`` per relation (one JSON
array per row, in declaration order).  DATE values are stored as ISO
strings.  This is how a downstream user points the translator at their
own data:

    from repro.engine.io import load_database, save_database

    save_database(db, "my_dump/")
    db2 = load_database("my_dump/")
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Union

from ..catalog import Attribute, Catalog, DataType
from .database import Database

SCHEMA_FILE = "schema.json"


def catalog_to_dict(catalog: Catalog) -> dict:
    """JSON-serialisable description of a catalog."""
    return {
        "name": catalog.name,
        "relations": [
            {
                "name": relation.name,
                "primary_key": list(relation.primary_key),
                "attributes": [
                    {
                        "name": attribute.name,
                        "type": attribute.data_type.value,
                        "nullable": attribute.nullable,
                    }
                    for attribute in relation.attributes
                ],
            }
            for relation in catalog
        ],
        "foreign_keys": [
            {
                "source_relation": fk.source_relation,
                "source_attribute": fk.source_attribute,
                "target_relation": fk.target_relation,
                "target_attribute": fk.target_attribute,
            }
            for fk in catalog.foreign_keys
        ],
    }


def catalog_from_dict(data: dict) -> Catalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output."""
    catalog = Catalog(data.get("name", "db"))
    for relation in data["relations"]:
        attributes = [
            Attribute(
                attribute["name"],
                DataType(attribute["type"]),
                attribute.get("nullable", True),
            )
            for attribute in relation["attributes"]
        ]
        catalog.create_relation(
            relation["name"], attributes, relation.get("primary_key", ())
        )
    for fk in data.get("foreign_keys", ()):
        catalog.add_foreign_key(
            fk["source_relation"],
            fk["source_attribute"],
            fk["target_relation"],
            fk["target_attribute"],
        )
    return catalog


def _encode(value):
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def save_database(db: Database, directory: Union[str, Path]) -> Path:
    """Write the database to *directory* (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / SCHEMA_FILE, "w", encoding="utf-8") as handle:
        json.dump(catalog_to_dict(db.catalog), handle, indent=2)
    for relation in db.catalog:
        path = directory / f"{relation.key}.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for row in db.rows(relation.name):
                values = [_encode(row[a.key]) for a in relation.attributes]
                handle.write(json.dumps(values) + "\n")
    return directory


def load_database(
    directory: Union[str, Path], enforce_foreign_keys: bool = False
) -> Database:
    """Load a database previously written by :func:`save_database`.

    FK enforcement defaults to off so rows can load in any file order;
    pass ``enforce_foreign_keys=True`` to validate after the fact via
    re-insertion order (files are loaded in schema declaration order, so
    dumps produced by this module with valid data always pass).
    """
    directory = Path(directory)
    with open(directory / SCHEMA_FILE, encoding="utf-8") as handle:
        catalog = catalog_from_dict(json.load(handle))
    db = Database(catalog, enforce_foreign_keys=enforce_foreign_keys)
    for relation in catalog:
        path = directory / f"{relation.key}.jsonl"
        if not path.exists():
            continue
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    db.insert(relation.name, json.loads(line))
    return db
