"""Saving and loading databases as portable JSON.

A saved database is a directory with one ``schema.json`` (relations,
attributes, keys) and one ``<relation>.jsonl`` per relation (one JSON
array per row, in declaration order).  DATE values are stored as ISO
strings.  This is how a downstream user points the translator at their
own data:

    from repro.engine.io import load_database, save_database

    save_database(db, "my_dump/")
    db2 = load_database("my_dump/")
"""

from __future__ import annotations

import datetime
import json
import sqlite3
from pathlib import Path
from typing import Union

from ..catalog import Attribute, Catalog, DataType, Relation
from .database import Database

SCHEMA_FILE = "schema.json"

#: Declared SQLite column types per engine type.  BOOLEAN and DATE keep
#: their literal names so catalog reflection (repro.backends.sqlite)
#: recovers the engine type instead of SQLite's integer/text affinity.
_SQLITE_TYPES = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.TEXT: "TEXT",
    DataType.BOOLEAN: "BOOLEAN",
    DataType.DATE: "DATE",
}


def catalog_to_dict(catalog: Catalog) -> dict:
    """JSON-serialisable description of a catalog."""
    return {
        "name": catalog.name,
        "relations": [
            {
                "name": relation.name,
                "primary_key": list(relation.primary_key),
                "attributes": [
                    {
                        "name": attribute.name,
                        "type": attribute.data_type.value,
                        "nullable": attribute.nullable,
                    }
                    for attribute in relation.attributes
                ],
            }
            for relation in catalog
        ],
        "foreign_keys": [
            {
                "source_relation": fk.source_relation,
                "source_attribute": fk.source_attribute,
                "target_relation": fk.target_relation,
                "target_attribute": fk.target_attribute,
            }
            for fk in catalog.foreign_keys
        ],
    }


def catalog_from_dict(data: dict) -> Catalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output."""
    catalog = Catalog(data.get("name", "db"))
    for relation in data["relations"]:
        attributes = [
            Attribute(
                attribute["name"],
                DataType(attribute["type"]),
                attribute.get("nullable", True),
            )
            for attribute in relation["attributes"]
        ]
        catalog.create_relation(
            relation["name"], attributes, relation.get("primary_key", ())
        )
    for fk in data.get("foreign_keys", ()):
        catalog.add_foreign_key(
            fk["source_relation"],
            fk["source_attribute"],
            fk["target_relation"],
            fk["target_attribute"],
        )
    return catalog


def _encode(value):
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def save_database(db: Database, directory: Union[str, Path]) -> Path:
    """Write the database to *directory* (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / SCHEMA_FILE, "w", encoding="utf-8") as handle:
        json.dump(catalog_to_dict(db.catalog), handle, indent=2)
    for relation in db.catalog:
        path = directory / f"{relation.key}.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for row in db.rows(relation.name):
                values = [_encode(row[a.key]) for a in relation.attributes]
                handle.write(json.dumps(values) + "\n")
    return directory


def load_database(
    directory: Union[str, Path], enforce_foreign_keys: bool = False
) -> Database:
    """Load a database previously written by :func:`save_database`.

    FK enforcement defaults to off so rows can load in any file order;
    pass ``enforce_foreign_keys=True`` to validate after the fact via
    re-insertion order (files are loaded in schema declaration order, so
    dumps produced by this module with valid data always pass).
    """
    directory = Path(directory)
    with open(directory / SCHEMA_FILE, encoding="utf-8") as handle:
        catalog = catalog_from_dict(json.load(handle))
    db = Database(catalog, enforce_foreign_keys=enforce_foreign_keys)
    for relation in catalog:
        path = directory / f"{relation.key}.jsonl"
        if not path.exists():
            continue
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    db.insert(relation.name, json.loads(line))
    return db


def _create_table_sql(relation: Relation, catalog: Catalog) -> str:
    from ..sqlkit.render import render_identifier

    columns = []
    for attribute in relation.attributes:
        column = (
            f"{render_identifier(attribute.name)} "
            f"{_SQLITE_TYPES[attribute.data_type]}"
        )
        if not attribute.nullable:
            column += " NOT NULL"
        columns.append(column)
    if relation.primary_key:
        pk = ", ".join(render_identifier(c) for c in relation.primary_key)
        columns.append(f"PRIMARY KEY ({pk})")
    for fk in catalog.foreign_keys:
        if fk.source_relation != relation.name:
            continue
        columns.append(
            f"FOREIGN KEY ({render_identifier(fk.source_attribute)}) "
            f"REFERENCES {render_identifier(fk.target_relation)} "
            f"({render_identifier(fk.target_attribute)})"
        )
    body = ", ".join(columns)
    return f"CREATE TABLE {render_identifier(relation.name)} ({body})"


def export_to_sqlite(
    db: Database, target: Union[str, Path, sqlite3.Connection]
) -> sqlite3.Connection:
    """Materialise *db* as a SQLite database and return the connection.

    *target* is a filesystem path (an existing file is replaced),
    ``":memory:"``, or an already-open connection.  Schema fidelity is
    what catalog reflection needs to round-trip: declared types keep the
    engine type names (BOOLEAN/DATE), NOT NULL and PRIMARY KEY survive,
    and each single-column FK becomes a ``FOREIGN KEY ... REFERENCES``
    clause.  DATE values are stored as ISO text, booleans as 0/1.
    """
    from ..sqlkit.render import render_identifier

    if isinstance(target, sqlite3.Connection):
        connection = target
    else:
        path = Path(target)
        if str(target) != ":memory:" and path.exists():
            path.unlink()
        connection = sqlite3.connect(str(target), check_same_thread=False)
    for relation in db.catalog:
        connection.execute(_create_table_sql(relation, db.catalog))
        placeholders = ", ".join("?" for _ in relation.attributes)
        insert_sql = (
            f"INSERT INTO {render_identifier(relation.name)} "
            f"VALUES ({placeholders})"
        )
        rows = [
            tuple(_encode(row[a.key]) for a in relation.attributes)
            for row in db.rows(relation.name)
        ]
        if rows:
            connection.executemany(insert_sql, rows)
    connection.commit()
    return connection
