"""Expression evaluation with SQL three-valued logic.

Rows are dictionaries keyed by lower-cased attribute name; a scope maps
lower-cased binding names (table name or alias) to one row each.  Scopes
chain outward so correlated sub-queries resolve free variables against
their enclosing query block, as required by the paper's block-at-a-time
nested-query processing (§2.2.5).

Unknown truth values are represented as ``None``; WHERE and HAVING keep a
row only when the condition evaluates to ``True``.
"""

from __future__ import annotations

import datetime
import re
from typing import Any, Callable, Optional

from ..sqlkit import ast
from .errors import ExecutionError, NameResolutionError
from .functions import call_scalar, is_aggregate

Row = dict[str, Any]


class Scope:
    """One level of name bindings: binding name -> current row."""

    def __init__(self, bindings: dict[str, Row], parent: Optional["Scope"] = None):
        self.bindings = bindings
        self.parent = parent

    def child(self, bindings: dict[str, Row]) -> "Scope":
        return Scope(bindings, parent=self)

    # ------------------------------------------------------------------
    def resolve(self, relation: Optional[str], attribute: str) -> Any:
        """Resolve ``[relation.]attribute`` through the scope chain."""
        attribute = attribute.lower()
        scope: Optional[Scope] = self
        while scope is not None:
            if relation is not None:
                row = scope.bindings.get(relation.lower())
                if row is not None:
                    if attribute in row:
                        return row[attribute]
                    raise NameResolutionError(
                        f"binding {relation!r} has no column {attribute!r}"
                    )
            else:
                matches = [
                    row for row in scope.bindings.values() if attribute in row
                ]
                if len(matches) > 1:
                    raise NameResolutionError(
                        f"ambiguous column {attribute!r}"
                    )
                if matches:
                    return matches[0][attribute]
            scope = scope.parent
        target = f"{relation}.{attribute}" if relation else attribute
        raise NameResolutionError(f"cannot resolve column {target!r}")


#: Signature of the callback used to run nested sub-queries.  It receives
#: the sub-query AST and the scope active at the point of reference and
#: returns the result rows as a list of tuples.
SubqueryRunner = Callable[[ast.Node, Scope], list[tuple]]


class Evaluator:
    """Evaluates expression ASTs against a :class:`Scope`."""

    def __init__(self, run_subquery: Optional[SubqueryRunner] = None) -> None:
        self._run_subquery = run_subquery

    # ------------------------------------------------------------------
    def evaluate(self, node: ast.Node, scope: Scope) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(node).__name__}")
        return method(node, scope)

    def is_true(self, node: ast.Node, scope: Scope) -> bool:
        """Three-valued condition check: only True passes."""
        return self.evaluate(node, scope) is True

    # -- leaves ---------------------------------------------------------
    def _eval_literal(self, node: ast.Literal, scope: Scope) -> Any:
        return node.value

    def _eval_columnref(self, node: ast.ColumnRef, scope: Scope) -> Any:
        relation = node.relation.text if node.relation is not None else None
        return scope.resolve(relation, node.attribute.text)

    # -- operators -------------------------------------------------------
    def _eval_unaryop(self, node: ast.UnaryOp, scope: Scope) -> Any:
        value = self.evaluate(node.operand, scope)
        if node.op == "not":
            return None if value is None else (not value)
        if value is None:
            return None
        if node.op == "-":
            return -value
        return +value

    def _eval_binaryop(self, node: ast.BinaryOp, scope: Scope) -> Any:
        op = node.op
        if op == "and":
            left = self.evaluate(node.left, scope)
            if left is False:
                return False
            right = self.evaluate(node.right, scope)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "or":
            left = self.evaluate(node.left, scope)
            if left is True:
                return True
            right = self.evaluate(node.right, scope)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(node.left, scope)
        right = self.evaluate(node.right, scope)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return compare(op, left, right)
        if left is None or right is None:
            return None
        if op == "||":
            return f"{left}{right}"
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise ExecutionError("division by zero")
                result = left / right
                if isinstance(left, int) and isinstance(right, int):
                    return left // right if left % right == 0 else result
                return result
            if op == "%":
                if right == 0:
                    raise ExecutionError("modulo by zero")
                return left % right
        except TypeError as exc:
            raise ExecutionError(f"bad operands for {op!r}: {exc}") from exc
        raise ExecutionError(f"unknown operator {op!r}")  # pragma: no cover

    # -- predicates -------------------------------------------------------
    def _eval_between(self, node: ast.Between, scope: Scope) -> Any:
        value = self.evaluate(node.expr, scope)
        low = self.evaluate(node.low, scope)
        high = self.evaluate(node.high, scope)
        result = _and3(compare(">=", value, low), compare("<=", value, high))
        return _not3(result) if node.negated else result

    def _eval_inlist(self, node: ast.InList, scope: Scope) -> Any:
        value = self.evaluate(node.expr, scope)
        if value is None:
            return None
        saw_null = False
        for item in node.items:
            candidate = self.evaluate(item, scope)
            if candidate is None:
                saw_null = True
            elif compare("=", value, candidate) is True:
                return False if node.negated else True
        if saw_null:
            return None
        return True if node.negated else False

    def _eval_like(self, node: ast.Like, scope: Scope) -> Any:
        value = self.evaluate(node.expr, scope)
        pattern = self.evaluate(node.pattern, scope)
        if value is None or pattern is None:
            return None
        matched = like_match(str(value), str(pattern))
        return (not matched) if node.negated else matched

    def _eval_isnull(self, node: ast.IsNull, scope: Scope) -> Any:
        value = self.evaluate(node.expr, scope)
        is_null = value is None
        return (not is_null) if node.negated else is_null

    def _eval_case(self, node: ast.Case, scope: Scope) -> Any:
        if node.operand is not None:
            operand = self.evaluate(node.operand, scope)
            for condition, result in node.whens:
                if compare("=", operand, self.evaluate(condition, scope)) is True:
                    return self.evaluate(result, scope)
        else:
            for condition, result in node.whens:
                if self.evaluate(condition, scope) is True:
                    return self.evaluate(result, scope)
        if node.default is not None:
            return self.evaluate(node.default, scope)
        return None

    def _eval_funccall(self, node: ast.FuncCall, scope: Scope) -> Any:
        if is_aggregate(node.name):
            raise ExecutionError(
                f"aggregate {node.name}() used outside GROUP BY context"
            )
        args = [self.evaluate(arg, scope) for arg in node.args]
        return call_scalar(node.name, args)

    # -- sub-queries -------------------------------------------------------
    def _subquery_rows(self, query: ast.Node, scope: Scope) -> list[tuple]:
        if self._run_subquery is None:
            raise ExecutionError("sub-queries are not available in this context")
        return self._run_subquery(query, scope)

    def _eval_scalarsubquery(self, node: ast.ScalarSubquery, scope: Scope) -> Any:
        rows = self._subquery_rows(node.query, scope)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar sub-query returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar sub-query returned more than one column")
        return rows[0][0]

    def _eval_exists(self, node: ast.Exists, scope: Scope) -> Any:
        rows = self._subquery_rows(node.query, scope)
        found = bool(rows)
        return (not found) if node.negated else found

    def _eval_insubquery(self, node: ast.InSubquery, scope: Scope) -> Any:
        value = self.evaluate(node.expr, scope)
        if value is None:
            return None
        saw_null = False
        for row in self._subquery_rows(node.query, scope):
            candidate = row[0]
            if candidate is None:
                saw_null = True
            elif compare("=", value, candidate) is True:
                return False if node.negated else True
        if saw_null:
            return None
        return True if node.negated else False

    def _eval_quantifiedcompare(
        self, node: ast.QuantifiedCompare, scope: Scope
    ) -> Any:
        value = self.evaluate(node.expr, scope)
        results = [
            compare(node.op, value, row[0])
            for row in self._subquery_rows(node.query, scope)
        ]
        if node.quantifier == "any":
            if any(r is True for r in results):
                return True
            if any(r is None for r in results):
                return None
            return False
        # ALL
        if any(r is False for r in results):
            return False
        if any(r is None for r in results):
            return None
        return True


# ---------------------------------------------------------------------------
# comparison helpers
# ---------------------------------------------------------------------------


def _not3(value: Any) -> Any:
    return None if value is None else (not value)


def _and3(left: Any, right: Any) -> Any:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _comparable(left: Any, right: Any) -> Optional[tuple[Any, Any]]:
    """Coerce *left*, *right* to a comparable pair, or None if incompatible."""
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return left, right
        return None
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    if isinstance(left, datetime.date) or isinstance(right, datetime.date):
        try:
            if isinstance(left, str):
                left = datetime.date.fromisoformat(left)
            if isinstance(right, str):
                right = datetime.date.fromisoformat(right)
        except ValueError:
            return None
        if isinstance(left, datetime.date) and isinstance(right, datetime.date):
            return left, right
    return None


def compare(op: str, left: Any, right: Any) -> Any:
    """SQL comparison with NULL propagation and type mismatch handling.

    Mismatched types compare unequal under ``=``/``<>`` (like most engines
    after failed coercion) and raise for ordering comparisons, which the
    similarity layer treats as "condition not satisfied".
    """
    if left is None or right is None:
        return None
    pair = _comparable(left, right)
    if pair is None:
        if op == "=":
            return False
        if op == "<>":
            return True
        raise ExecutionError(
            f"cannot order-compare {type(left).__name__} and {type(right).__name__}"
        )
    left, right = pair
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison {op!r}")  # pragma: no cover


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards, case-sensitive."""
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None
