"""Query execution: FROM assembly, join optimization, grouping, ordering.

Translated Schema-free SQL queries routinely join seven or more relations
(the paper's running example joins 7), so a naive cross-product evaluator
is unusable.  The executor therefore:

1. flattens the FROM clause into *units* (single tables or explicit-JOIN
   groups),
2. pushes single-unit WHERE conjuncts down as early filters,
3. assembles units greedily with hash joins over equality conjuncts,
   starting from the smallest unit, and
4. applies the remaining (complex / correlated) conjuncts last.

Grouping, HAVING, DISTINCT, ORDER BY and LIMIT are applied on top, and
sub-queries re-enter the executor with the referencing row's scope so
correlated references resolve naturally.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional, Sequence

from ..sqlkit import ast, render
from .errors import ExecutionError, NameResolutionError
from .evaluator import Evaluator, Row, Scope
from .functions import aggregate, is_aggregate


class Result:
    """Materialised query output: named columns and a list of row tuples."""

    def __init__(self, columns: list[str], rows: list[tuple]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Result):
            return self.rows == other.rows
        return NotImplemented

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Result({self.columns}, {len(self.rows)} rows)"


class _Unit:
    """A joinable block: a set of bindings with their assembled rows."""

    __slots__ = ("bindings", "rows")

    def __init__(self, bindings: set[str], rows: list[dict[str, Row]]) -> None:
        self.bindings = bindings
        self.rows = rows


class Executor:
    """Executes query ASTs against a database's tables."""

    def __init__(self, database: "Database") -> None:  # noqa: F821
        self.database = database
        self.evaluator = Evaluator(run_subquery=self._run_subquery)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: ast.Node, scope: Optional[Scope] = None) -> Result:
        if isinstance(query, ast.SetOp):
            left = self.execute(query.left, scope)
            right = self.execute(query.right, scope)
            if len(left.columns) != len(right.columns):
                raise ExecutionError("UNION operands have different arity")
            rows = left.rows + right.rows
            if not query.all:
                rows = list(dict.fromkeys(rows))
            return Result(left.columns, rows)
        if isinstance(query, ast.Select):
            return self._execute_select(query, scope)
        raise ExecutionError(f"not a query: {type(query).__name__}")

    def _run_subquery(self, query: ast.Node, scope: Scope) -> list[tuple]:
        return self.execute(query, scope).rows

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------
    def _execute_select(self, select: ast.Select, outer: Optional[Scope]) -> Result:
        _reject_untranslated(select)
        schemas = self._binding_schemas(select.from_items)
        conjuncts = _conjuncts(select.where)
        early, join_edges, late = _classify(conjuncts, schemas)
        tuples = self._assemble(select.from_items, schemas, early, join_edges, outer)
        if late:
            kept = []
            for scope_rows in tuples:
                scope = Scope(scope_rows, parent=outer)
                if all(self.evaluator.is_true(c, scope) for c in late):
                    kept.append(scope_rows)
            tuples = kept
        return self._project(select, schemas, tuples, outer)

    # -- FROM resolution -------------------------------------------------
    def _binding_schemas(
        self, from_items: Sequence[ast.Node]
    ) -> dict[str, list[str]]:
        """Map binding name -> lower-cased column names, in FROM order."""
        schemas: dict[str, list[str]] = {}
        for table in _table_refs(from_items):
            binding = table.binding.lower()
            if binding in schemas:
                raise ExecutionError(f"duplicate FROM binding {table.binding!r}")
            relation = self.database.catalog.relation(table.name.text)
            schemas[binding] = [a.key for a in relation.attributes]
        return schemas

    def _table_rows(self, table: ast.TableRef) -> list[Row]:
        return self.database.rows(table.name.text)

    # -- join assembly -----------------------------------------------------
    def _assemble(
        self,
        from_items: Sequence[ast.Node],
        schemas: dict[str, list[str]],
        early: dict[str, list[ast.Node]],
        join_edges: list[tuple[str, ast.Node, str, ast.Node]],
        outer: Optional[Scope],
    ) -> list[dict[str, Row]]:
        if not from_items:
            # SELECT without FROM: a single empty tuple (constant queries)
            return [{}]
        units: list[_Unit] = []
        for item in from_items:
            units.append(self._unit_for(item, early, outer))
        if not units:
            return [{}]
        # greedy hash-join assembly
        units.sort(key=lambda u: len(u.rows))
        current = units.pop(0)
        remaining = units
        edges = list(join_edges)
        while remaining:
            chosen_index = None
            chosen_edges: list[tuple[str, ast.Node, str, ast.Node]] = []
            for index, unit in enumerate(remaining):
                applicable = [
                    e for e in edges if _edge_connects(e, current.bindings, unit.bindings)
                ]
                if applicable and (
                    chosen_index is None
                    or len(unit.rows) < len(remaining[chosen_index].rows)
                ):
                    chosen_index = index
                    chosen_edges = applicable
            if chosen_index is None:
                # no connecting edge: cross product with the smallest unit
                chosen_index = min(
                    range(len(remaining)), key=lambda i: len(remaining[i].rows)
                )
                chosen_edges = []
            unit = remaining.pop(chosen_index)
            current = self._join_units(current, unit, chosen_edges, outer)
            edges = [e for e in edges if not _edge_within(e, current.bindings)]
        return current.rows

    def _unit_for(
        self,
        item: ast.Node,
        early: dict[str, list[ast.Node]],
        outer: Optional[Scope],
    ) -> _Unit:
        if isinstance(item, ast.TableRef):
            binding = item.binding.lower()
            rows = [{binding: row} for row in self._table_rows(item)]
            for conjunct in early.get(binding, ()):
                rows = [
                    r
                    for r in rows
                    if self.evaluator.is_true(conjunct, Scope(r, parent=outer))
                ]
            return _Unit({binding}, rows)
        if isinstance(item, ast.Join):
            left = self._unit_for(item.left, early, outer)
            right = self._unit_for(item.right, early, outer)
            return self._explicit_join(left, right, item, outer)
        raise ExecutionError(f"unsupported FROM item {type(item).__name__}")

    def _join_units(
        self,
        left: _Unit,
        right: _Unit,
        edges: list[tuple[str, ast.Node, str, ast.Node]],
        outer: Optional[Scope],
    ) -> _Unit:
        bindings = left.bindings | right.bindings
        if not edges:
            rows = [
                {**l, **r} for l, r in itertools.product(left.rows, right.rows)
            ]
            return _Unit(bindings, rows)
        # hash join on all edge keys simultaneously
        left_keys, right_keys = [], []
        for binding_a, expr_a, binding_b, expr_b in edges:
            if binding_a in left.bindings:
                left_keys.append(expr_a)
                right_keys.append(expr_b)
            else:
                left_keys.append(expr_b)
                right_keys.append(expr_a)
        table: dict[tuple, list[dict[str, Row]]] = {}
        for row in right.rows:
            key = self._key_for(right_keys, row, outer)
            if key is None:
                continue
            table.setdefault(key, []).append(row)
        rows = []
        for row in left.rows:
            key = self._key_for(left_keys, row, outer)
            if key is None:
                continue
            for match in table.get(key, ()):
                rows.append({**row, **match})
        return _Unit(bindings, rows)

    def _key_for(
        self,
        exprs: Sequence[ast.Node],
        scope_rows: dict[str, Row],
        outer: Optional[Scope],
    ) -> Optional[tuple]:
        scope = Scope(scope_rows, parent=outer)
        key = []
        for expr in exprs:
            value = self.evaluator.evaluate(expr, scope)
            if value is None:
                return None  # NULL never joins
            if isinstance(value, float) and value.is_integer():
                value = int(value)  # 1 and 1.0 hash-join together
            key.append(value)
        return tuple(key)

    def _explicit_join(
        self, left: _Unit, right: _Unit, join: ast.Join, outer: Optional[Scope]
    ) -> _Unit:
        bindings = left.bindings | right.bindings
        condition = join.condition

        def matches(l: dict[str, Row], r: dict[str, Row]) -> bool:
            if condition is None:
                return True
            scope = Scope({**l, **r}, parent=outer)
            return self.evaluator.is_true(condition, scope)

        rows: list[dict[str, Row]] = []
        if join.kind in ("inner", "cross"):
            for l, r in itertools.product(left.rows, right.rows):
                if matches(l, r):
                    rows.append({**l, **r})
        elif join.kind == "left":
            null_right = _null_rows(right)
            for l in left.rows:
                matched = False
                for r in right.rows:
                    if matches(l, r):
                        rows.append({**l, **r})
                        matched = True
                if not matched:
                    rows.append({**l, **null_right})
        elif join.kind == "right":
            null_left = _null_rows(left)
            for r in right.rows:
                matched = False
                for l in left.rows:
                    if matches(l, r):
                        rows.append({**l, **r})
                        matched = True
                if not matched:
                    rows.append({**null_left, **r})
        else:  # pragma: no cover - parser restricts kinds
            raise ExecutionError(f"unsupported join kind {join.kind!r}")
        return _Unit(bindings, rows)

    # -- projection / grouping ----------------------------------------------
    def _project(
        self,
        select: ast.Select,
        schemas: dict[str, list[str]],
        tuples: list[dict[str, Row]],
        outer: Optional[Scope],
    ) -> Result:
        items = self._expand_stars(select.items, schemas)
        columns = [_column_name(item, index) for index, item in enumerate(items)]
        grouped = bool(select.group_by) or _has_aggregate(items, select)

        output: list[tuple] = []
        order_contexts: list[Scope] = []
        if grouped:
            groups = self._group(select, tuples, outer)
            for group_rows, key_scope in groups:
                scope = _GroupScope(group_rows, key_scope, outer)
                if select.having is not None and not self._agg_true(
                    select.having, group_rows, scope, outer
                ):
                    continue
                row = tuple(
                    self._agg_eval(item.expr, group_rows, scope, outer)
                    for item in items
                )
                output.append(row)
                order_contexts.append(scope)
        else:
            if select.having is not None:
                raise ExecutionError("HAVING without GROUP BY or aggregates")
            for scope_rows in tuples:
                scope = Scope(scope_rows, parent=outer)
                row = tuple(
                    self.evaluator.evaluate(item.expr, scope) for item in items
                )
                output.append(row)
                order_contexts.append(scope)

        if select.distinct:
            seen: dict[tuple, int] = {}
            deduped, contexts = [], []
            for row, context in zip(output, order_contexts):
                if row not in seen:
                    seen[row] = 1
                    deduped.append(row)
                    contexts.append(context)
            output, order_contexts = deduped, contexts

        if select.order_by:
            output = self._order(
                select, items, columns, output, order_contexts, grouped, outer
            )
        if select.offset is not None:
            output = output[select.offset :]
        if select.limit is not None:
            output = output[: select.limit]
        return Result(columns, output)

    def _expand_stars(
        self, items: Sequence[ast.SelectItem], schemas: dict[str, list[str]]
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                star = item.expr
                bindings = (
                    [star.qualifier.text.lower()]
                    if star.qualifier is not None
                    else list(schemas)
                )
                for binding in bindings:
                    if binding not in schemas:
                        raise NameResolutionError(
                            f"unknown binding {binding!r} in star expansion"
                        )
                    for column in schemas[binding]:
                        expanded.append(
                            ast.SelectItem(
                                ast.ColumnRef(
                                    ast.exact(column), ast.exact(binding)
                                ),
                                alias=column,
                            )
                        )
            else:
                expanded.append(item)
        return expanded

    def _group(
        self,
        select: ast.Select,
        tuples: list[dict[str, Row]],
        outer: Optional[Scope],
    ) -> list[tuple[list[dict[str, Row]], Optional[Scope]]]:
        if not select.group_by:
            return [(tuples, None)]
        groups: dict[tuple, list[dict[str, Row]]] = {}
        representatives: dict[tuple, Scope] = {}
        for scope_rows in tuples:
            scope = Scope(scope_rows, parent=outer)
            key = tuple(
                _hashable(self.evaluator.evaluate(expr, scope))
                for expr in select.group_by
            )
            groups.setdefault(key, []).append(scope_rows)
            representatives.setdefault(key, scope)
        return [(rows, representatives[key]) for key, rows in groups.items()]

    # -- aggregate-aware evaluation ------------------------------------------
    def _agg_eval(
        self,
        expr: ast.Node,
        group_rows: list[dict[str, Row]],
        scope: Scope,
        outer: Optional[Scope],
    ) -> Any:
        if isinstance(expr, ast.FuncCall) and is_aggregate(expr.name):
            return self._compute_aggregate(expr, group_rows, outer)
        if isinstance(expr, (ast.Literal,)):
            return expr.value
        if isinstance(expr, ast.BinaryOp):
            left = self._agg_eval(expr.left, group_rows, scope, outer)
            right = self._agg_eval(expr.right, group_rows, scope, outer)
            return self.evaluator.evaluate(
                ast.BinaryOp(expr.op, ast.Literal(left), ast.Literal(right)),
                scope,
            )
        if isinstance(expr, ast.UnaryOp):
            operand = self._agg_eval(expr.operand, group_rows, scope, outer)
            return self.evaluator.evaluate(
                ast.UnaryOp(expr.op, ast.Literal(operand)), scope
            )
        if isinstance(expr, ast.FuncCall):
            args = tuple(
                ast.Literal(self._agg_eval(a, group_rows, scope, outer))
                for a in expr.args
            )
            return self.evaluator.evaluate(
                ast.FuncCall(expr.name, args, expr.distinct), scope
            )
        # plain column / other expression: evaluate on the group's scope
        return self.evaluator.evaluate(expr, scope)

    def _agg_true(
        self,
        expr: ast.Node,
        group_rows: list[dict[str, Row]],
        scope: Scope,
        outer: Optional[Scope],
    ) -> bool:
        if isinstance(expr, ast.BinaryOp) and expr.op in ("and", "or"):
            left = self._agg_true(expr.left, group_rows, scope, outer)
            right = self._agg_true(expr.right, group_rows, scope, outer)
            return (left and right) if expr.op == "and" else (left or right)
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            return not self._agg_true(expr.operand, group_rows, scope, outer)
        if isinstance(expr, ast.BinaryOp):
            left = self._agg_eval(expr.left, group_rows, scope, outer)
            right = self._agg_eval(expr.right, group_rows, scope, outer)
            return (
                self.evaluator.evaluate(
                    ast.BinaryOp(expr.op, ast.Literal(left), ast.Literal(right)),
                    scope,
                )
                is True
            )
        return self._agg_eval(expr, group_rows, scope, outer) is True

    def _compute_aggregate(
        self,
        call: ast.FuncCall,
        group_rows: list[dict[str, Row]],
        outer: Optional[Scope],
    ) -> Any:
        if call.args and isinstance(call.args[0], ast.Star):
            values: Iterable[Any] = (1 for _ in group_rows)
            return aggregate(call.name, values, distinct=False)
        if len(call.args) != 1:
            raise ExecutionError(f"{call.name}() takes exactly one argument")
        arg = call.args[0]
        values = [
            self.evaluator.evaluate(arg, Scope(rows, parent=outer))
            for rows in group_rows
        ]
        return aggregate(call.name, values, distinct=call.distinct)

    # -- ordering --------------------------------------------------------------
    def _order(
        self,
        select: ast.Select,
        items: list[ast.SelectItem],
        columns: list[str],
        output: list[tuple],
        contexts: list[Scope],
        grouped: bool,
        outer: Optional[Scope],
    ) -> list[tuple]:
        alias_index = {
            (item.alias or "").lower(): index
            for index, item in enumerate(items)
            if item.alias
        }
        expr_index = {item.expr: index for index, item in enumerate(items)}

        def key_value(order_item: ast.OrderItem, row: tuple, context: Any) -> Any:
            expr = order_item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value - 1
                if not 0 <= position < len(row):
                    raise ExecutionError(f"ORDER BY position {expr.value} out of range")
                return row[position]
            if isinstance(expr, ast.ColumnRef) and expr.relation is None:
                name = expr.attribute.text.lower()
                if name in alias_index:
                    return row[alias_index[name]]
            if expr in expr_index:
                return row[expr_index[expr]]
            if grouped:
                scope: _GroupScope = context
                return self._agg_eval(expr, scope.group_rows, scope, outer)
            return self.evaluator.evaluate(expr, context)

        decorated = list(zip(output, contexts))
        for order_item in reversed(select.order_by):
            decorated.sort(
                key=lambda pair: _sort_key(
                    key_value(order_item, pair[0], pair[1])
                ),
                reverse=not order_item.ascending,
            )
        return [row for row, _ in decorated]


class _GroupScope(Scope):
    """Scope for aggregate evaluation: resolves plain columns against a
    representative row of the group (valid for GROUP BY keys)."""

    def __init__(
        self,
        group_rows: list[dict[str, Row]],
        representative: Optional[Scope],
        outer: Optional[Scope],
    ) -> None:
        bindings = {}
        if representative is not None:
            bindings = representative.bindings
        elif group_rows:
            bindings = group_rows[0]
        super().__init__(bindings, parent=outer)
        self.group_rows = group_rows


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _reject_untranslated(select: ast.Select) -> None:
    """The engine only runs full SQL; schema-free markers must be resolved
    by the translator first."""
    for node in _walk_local_select(select):
        if isinstance(node, ast.TableRef) and node.name.certainty is not ast.Certainty.EXACT:
            raise ExecutionError(
                f"untranslated schema-free relation {node.name.render()!r}"
            )
        if isinstance(node, ast.ColumnRef):
            uncertain = node.attribute.certainty is not ast.Certainty.EXACT or (
                node.relation is not None
                and node.relation.certainty is not ast.Certainty.EXACT
            )
            if uncertain:
                raise ExecutionError(
                    f"untranslated schema-free column {node.render()!r}"
                )


def _walk_local_select(select: ast.Select):
    """Walk a select block without descending into nested sub-queries
    (those are validated when they themselves execute)."""
    yield select
    for child in select.children():
        yield from _walk_local(child)


def _table_refs(from_items: Iterable[ast.Node]) -> Iterable[ast.TableRef]:
    for item in from_items:
        if isinstance(item, ast.TableRef):
            yield item
        elif isinstance(item, ast.Join):
            yield from _table_refs((item.left, item.right))
        else:
            raise ExecutionError(f"unsupported FROM item {type(item).__name__}")


def _conjuncts(expr: Optional[ast.Node]) -> list[ast.Node]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _bindings_of(
    expr: ast.Node, schemas: dict[str, list[str]]
) -> Optional[set[str]]:
    """Bindings referenced by *expr*, or None when the expression cannot be
    pushed down (contains a sub-query, or a column we cannot attribute to a
    unique local binding, e.g. a correlated outer reference)."""
    bindings: set[str] = set()
    for node in expr.walk():
        if isinstance(node, (ast.Select, ast.SetOp)):
            return None
        if isinstance(node, ast.ColumnRef):
            if node.relation is not None:
                binding = node.relation.text.lower()
                if binding not in schemas:
                    return None  # outer/unknown reference
                bindings.add(binding)
            else:
                name = node.attribute.text.lower()
                owners = [b for b, cols in schemas.items() if name in cols]
                if len(owners) != 1:
                    return None
                bindings.add(owners[0])
    return bindings


def _classify(
    conjuncts: list[ast.Node], schemas: dict[str, list[str]]
) -> tuple[
    dict[str, list[ast.Node]],
    list[tuple[str, ast.Node, str, ast.Node]],
    list[ast.Node],
]:
    """Split WHERE conjuncts into early filters, hash-join edges and the
    rest (applied after assembly)."""
    early: dict[str, list[ast.Node]] = {}
    edges: list[tuple[str, ast.Node, str, ast.Node]] = []
    late: list[ast.Node] = []
    for conjunct in conjuncts:
        bindings = _bindings_of(conjunct, schemas)
        if bindings is None:
            late.append(conjunct)
            continue
        if len(bindings) <= 1:
            if bindings:
                early.setdefault(next(iter(bindings)), []).append(conjunct)
            else:
                late.append(conjunct)  # constant condition
            continue
        if (
            len(bindings) == 2
            and isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
        ):
            left_bindings = _bindings_of(conjunct.left, schemas)
            right_bindings = _bindings_of(conjunct.right, schemas)
            if (
                left_bindings is not None
                and right_bindings is not None
                and len(left_bindings) == 1
                and len(right_bindings) == 1
                and left_bindings != right_bindings
            ):
                edges.append(
                    (
                        next(iter(left_bindings)),
                        conjunct.left,
                        next(iter(right_bindings)),
                        conjunct.right,
                    )
                )
                continue
        late.append(conjunct)
    return early, edges, late


def _edge_connects(
    edge: tuple[str, ast.Node, str, ast.Node],
    left_bindings: set[str],
    right_bindings: set[str],
) -> bool:
    a, _, b, _ = edge
    return (a in left_bindings and b in right_bindings) or (
        b in left_bindings and a in right_bindings
    )


def _edge_within(
    edge: tuple[str, ast.Node, str, ast.Node], bindings: set[str]
) -> bool:
    return edge[0] in bindings and edge[2] in bindings


def _null_rows(unit: _Unit) -> dict[str, Row]:
    """All-NULL rows for each binding of *unit* (outer-join padding)."""
    padded: dict[str, Row] = {}
    template_source = unit.rows[0] if unit.rows else {}
    for binding in unit.bindings:
        columns = template_source.get(binding, {})
        padded[binding] = {column: None for column in columns}
    return padded


def _has_aggregate(items: Sequence[ast.SelectItem], select: ast.Select) -> bool:
    roots: list[ast.Node] = [item.expr for item in items]
    if select.having is not None:
        roots.append(select.having)
    for root in roots:
        for node in _walk_local(root):
            if isinstance(node, ast.FuncCall) and is_aggregate(node.name):
                return True
    return False


def _walk_local(node: ast.Node):
    """Walk an expression without descending into sub-queries."""
    yield node
    if isinstance(node, (ast.Select, ast.SetOp)):
        return
    for child in node.children():
        if isinstance(child, (ast.Select, ast.SetOp)):
            continue
        yield from _walk_local(child)


def _column_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.attribute.text
    if isinstance(expr, ast.FuncCall):
        return render(expr)
    return render(expr) if not isinstance(expr, ast.Star) else "*"


def _hashable(value: Any) -> Any:
    return value


_TYPE_RANK = {bool: 0, int: 1, float: 1, str: 2}


def _sort_key(value: Any) -> tuple:
    """Total order over mixed values: NULLs last, then by type family."""
    if value is None:
        return (2, 0, 0)
    rank = _TYPE_RANK.get(type(value), 3)
    if rank == 3:
        return (1, 3, str(value))
    return (1, rank, value)
