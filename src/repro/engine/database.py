"""In-memory relational database: catalog-validated storage plus SQL.

This is the substrate standing in for the RDBMS the paper ran translated
queries against.  It stores rows as dictionaries keyed by lower-cased
attribute name, enforces primary-key uniqueness and (optionally) foreign-
key integrity, executes full SQL, and exposes the column-content probes
the Relation Tree Mapper needs (paper §4.3: "conditions ... satisfied by
the tuples in the attribute").
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from ..catalog import Catalog, DataType, Relation, coerce, normalize
from ..sqlkit import ast, parse
from .errors import IntegrityError
from .evaluator import Row
from .executor import Executor, Result


class Database:
    """A catalog plus table contents plus a SQL executor."""

    def __init__(self, catalog: Catalog, enforce_foreign_keys: bool = True) -> None:
        catalog.validate()
        self.catalog = catalog
        self.enforce_foreign_keys = enforce_foreign_keys
        self._tables: dict[str, list[Row]] = {
            relation.key: [] for relation in catalog
        }
        self._pk_index: dict[str, set[tuple]] = {
            relation.key: set() for relation in catalog
        }
        # value sets for every column that some foreign key points at,
        # maintained on insert so FK checks are O(1)
        self._fk_target_index: dict[tuple[str, str], set] = {
            (normalize(fk.target_relation), normalize(fk.target_attribute)): set()
            for fk in catalog.foreign_keys
        }
        self._executor = Executor(self)
        self._data_version = 0
        #: serialises mutations: PK/FK index updates, the row append and
        #: the data_version bump are one atomic step, so concurrent
        #: readers (and TranslationContext.ensure_current) never observe
        #: a row without its version bump or a half-updated index
        self._write_lock = threading.RLock()

    @property
    def data_version(self) -> int:
        """Monotone counter bumped on every mutation.

        Consumers that derive state from table contents (notably
        :class:`repro.core.context.TranslationContext`, which caches
        column samples and condition-satisfaction results) compare this
        against the version they were built at and invalidate when it
        moved.
        """
        return self._data_version

    # ------------------------------------------------------------------
    # data loading
    # ------------------------------------------------------------------
    def insert(
        self,
        relation_name: str,
        values: Union[Mapping[str, Any], Sequence[Any]],
    ) -> Row:
        """Insert one tuple, given as a mapping or a positional sequence.

        Thread-safe: the whole constraint-check/append/version-bump
        sequence runs under the database's write lock.
        """
        relation = self.catalog.relation(relation_name)
        row = self._build_row(relation, values)
        with self._write_lock:
            self._check_primary_key(relation, row)
            if self.enforce_foreign_keys:
                self._check_foreign_keys(relation, row)
            self._tables[relation.key].append(row)
            for (target_rel, target_attr), values in self._fk_target_index.items():
                if target_rel == relation.key:
                    value = row[target_attr]
                    if value is not None:
                        values.add(value)
            self._data_version += 1
        return row

    def insert_many(
        self,
        relation_name: str,
        rows: Iterable[Union[Mapping[str, Any], Sequence[Any]]],
    ) -> int:
        count = 0
        for values in rows:
            self.insert(relation_name, values)
            count += 1
        return count

    def _build_row(
        self, relation: Relation, values: Union[Mapping[str, Any], Sequence[Any]]
    ) -> Row:
        row: Row = {}
        if isinstance(values, Mapping):
            provided = {normalize(k): v for k, v in values.items()}
            for attribute in relation.attributes:
                row[attribute.key] = coerce(
                    provided.pop(attribute.key, None), attribute.data_type
                )
            if provided:
                unknown = ", ".join(sorted(provided))
                raise IntegrityError(
                    f"unknown columns for {relation.name!r}: {unknown}"
                )
        else:
            values = list(values)
            if len(values) != len(relation):
                raise IntegrityError(
                    f"{relation.name!r} expects {len(relation)} values, "
                    f"got {len(values)}"
                )
            for attribute, value in zip(relation.attributes, values):
                row[attribute.key] = coerce(value, attribute.data_type)
        for attribute in relation.attributes:
            if not attribute.nullable and row[attribute.key] is None:
                raise IntegrityError(
                    f"{relation.name}.{attribute.name} may not be NULL"
                )
        return row

    def _check_primary_key(self, relation: Relation, row: Row) -> None:
        if not relation.primary_key:
            return
        key = tuple(row[normalize(c)] for c in relation.primary_key)
        if any(part is None for part in key):
            raise IntegrityError(
                f"NULL in primary key of {relation.name!r}: {key}"
            )
        index = self._pk_index[relation.key]
        if key in index:
            raise IntegrityError(
                f"duplicate primary key in {relation.name!r}: {key}"
            )
        index.add(key)

    def _check_foreign_keys(self, relation: Relation, row: Row) -> None:
        for fk in self.catalog.foreign_keys:
            if normalize(fk.source_relation) != relation.key:
                continue
            value = row[normalize(fk.source_attribute)]
            if value is None:
                continue
            index = self._fk_target_index[
                (normalize(fk.target_relation), normalize(fk.target_attribute))
            ]
            if value not in index:
                raise IntegrityError(
                    f"foreign key violation: {fk} has no target for {value!r}"
                )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def rows(self, relation_name: str) -> list[Row]:
        """All rows of a relation (live list; treat as read-only)."""
        return self._tables[self.catalog.relation(relation_name).key]

    def count(self, relation_name: str) -> int:
        return len(self.rows(relation_name))

    def column_values(self, relation_name: str, attribute_name: str) -> list[Any]:
        """All values of one column — used by the similarity layer to check
        whether a user-written value condition is satisfied by a column."""
        relation = self.catalog.relation(relation_name)
        attribute = relation.attribute(attribute_name)
        return [row[attribute.key] for row in self._tables[relation.key]]

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def execute(self, query: Union[str, ast.Node]) -> Result:
        """Execute full SQL (text or AST) and return a Result."""
        if isinstance(query, str):
            query = parse(query)
        return self._executor.execute(query)

    def explainable_executor(self) -> Executor:
        """The underlying executor (exposed for the translator's probes)."""
        return self._executor
