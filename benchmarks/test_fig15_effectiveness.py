"""Figure 15: translation effectiveness with and without the view graph.

Regenerates the paper's table — top-1 and top-10 correct translations per
join-size bucket (2-4 / 5 / 6-10 relations), on the 53-relation schema
and on the alternative 21-relation redesign (parenthesised in the paper)
— and asserts its qualitative findings: quality degrades with query
complexity on the bare schema graph, and the view graph recovers most of
the loss, with the largest gains on the 6-10 bucket.
"""

import pytest

from repro.experiments import run_effectiveness
from repro.workloads import COURSE_QUERIES

BUCKETS = ("2-4", "5", "6-10")


@pytest.fixture(scope="module")
def reports(course_db, course_alt_db):
    return {
        ("53", False): run_effectiveness(course_db, course_db, COURSE_QUERIES),
        ("53", True): run_effectiveness(
            course_db, course_db, COURSE_QUERIES, use_views=True
        ),
        ("21", False): run_effectiveness(
            course_alt_db, course_db, COURSE_QUERIES
        ),
        ("21", True): run_effectiveness(
            course_alt_db, course_db, COURSE_QUERIES, use_views=True
        ),
    }


def test_fig15_effectiveness(benchmark, course_db, course_alt_db, reports):
    # time one representative condition; the table below uses all four
    benchmark.pedantic(
        run_effectiveness,
        args=(course_db, course_db, COURSE_QUERIES),
        rounds=1,
        iterations=1,
    )

    print("\nFigure 15 — correct translations (21-relation schema in parens)")
    header = f"{'relations':>10} {'Top 1':>14} {'Top 10':>14} "
    header += f"{'Top 1 +views':>14} {'Top 10 +views':>14}"
    print(header)
    for bucket in BUCKETS:
        cells = []
        for use_views in (False, True):
            b53 = reports[("53", use_views)].per_bucket()[bucket]
            b21 = reports[("21", use_views)].per_bucket()[bucket]
            cells.append(f"{b53[0]}/{b53[2]} ({b21[0]}/{b21[2]})")
            cells.append(f"{b53[1]}/{b53[2]} ({b21[1]}/{b21[2]})")
        print(
            f"{bucket:>10} {cells[0]:>14} {cells[1]:>14} "
            f"{cells[2]:>14} {cells[3]:>14}"
        )
    benchmark.extra_info["fig15"] = {
        f"{schema}{'_views' if views else ''}": reports[
            (schema, views)
        ].per_bucket()
        for (schema, views) in reports
    }

    plain = reports[("53", False)].per_bucket()
    viewed = reports[("53", True)].per_bucket()
    # small queries translate well even without views
    assert plain["2-4"][0] >= 7
    # quality degrades sharply for 6-10 relation queries (paper: 5/11)
    assert plain["6-10"][0] <= plain["2-4"][0]
    # the view graph significantly improves the hardest bucket (paper:
    # 5/11 -> 10/11 top-1, 5/11 -> 11/11 top-10)
    assert viewed["6-10"][0] > plain["6-10"][0]
    assert viewed["6-10"][1] >= plain["6-10"][1]
    # top-10 dominates top-1 everywhere
    for report in reports.values():
        for top1, topk, _total in report.per_bucket().values():
            assert topk >= top1
